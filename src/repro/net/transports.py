"""Push and pull update transports (the propagation phase).

UpKit is agnostic to how images are distributed (Sect. IV-B): the same
agent FSM sits behind a **push** front-end (a smartphone forwards the
image over BLE GATT, Fig. 2) or a **pull** front-end (the device
fetches it over CoAP through a border router).  Both transports here
drive a :class:`repro.sim.SimulatedDevice`, metering radio time onto
its clock, and return a structured outcome with the phase breakdown of
Fig. 8a.

An optional *interceptor* models an on-path adversary or a compromised
proxy: it may rewrite the envelope/payload in transit.  UpKit's claim
is that such a proxy can only cause a (detected) failure, never a
successful installation of tampered or stale software.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core import (
    FeedStatus,
    UpdateError,
    UpdateImage,
    UpdateServer,
)
from ..sim.device import SimulatedDevice
from .link import BLE_GATT, COAP_6LOWPAN, Link, LinkProfile

__all__ = ["UpdateOutcome", "Interceptor", "PushTransport", "PullTransport"]

#: (envelope_bytes, payload_bytes) -> possibly rewritten pair.
Interceptor = Callable[[bytes, bytes], Tuple[bytes, bytes]]

_REQUEST_PACKETS = 2  # request/response exchange for control messages


@dataclass
class UpdateOutcome:
    """What one update attempt produced."""

    success: bool
    error: Optional[UpdateError]
    phases: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    energy_mj: Dict[str, float] = field(default_factory=dict)
    bytes_over_air: int = 0
    booted_version: int = 0
    rebooted: bool = False

    @property
    def total_energy_mj(self) -> float:
        return sum(self.energy_mj.values())


class _TransportBase:
    """Common drive logic for both approaches."""

    direction_payload = "rx"  # the device receives the image

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 link: Link, interceptor: Optional[Interceptor] = None,
                 reboot_on_success: bool = True) -> None:
        self.device = device
        self.server = server
        self.link = link
        self.interceptor = interceptor
        self.reboot_on_success = reboot_on_success
        self.bytes_over_air = 0

    # -- helpers -----------------------------------------------------------------

    def _control_exchange(self, payload_bytes: int) -> None:
        """A small request/response on the device link (token, announce)."""
        report = self.link.transfer(payload_bytes)
        extra = (_REQUEST_PACKETS - 1) * self.link.profile.packet_interval
        self.device.account_radio(report.seconds / 2 + extra, "tx")
        self.device.account_radio(report.seconds / 2, "rx")
        self.bytes_over_air += payload_bytes

    def _stream_to_device(self, data: bytes) -> FeedStatus:
        """Send ``data`` chunk-by-chunk; agent errors propagate."""
        status = FeedStatus.NEED_MORE
        for chunk in self.link.chunks(data):
            report = self.link.transfer(len(chunk))
            self.device.account_radio(report.seconds, self.direction_payload)
            self.bytes_over_air += len(chunk)
            status = self.device.feed(chunk)
        return status

    def _finish(self, start_clock: float, error: Optional[UpdateError],
                completed: bool) -> UpdateOutcome:
        device = self.device
        success = completed and error is None
        rebooted = False
        booted_version = device.installed_version()
        if success and self.reboot_on_success:
            result = device.reboot()
            booted_version = result.version
            rebooted = True
        phases = device.phase_breakdown()
        return UpdateOutcome(
            success=success,
            error=error,
            phases=phases,
            total_seconds=device.clock.now - start_clock,
            energy_mj=device.meter.breakdown_mj(),
            bytes_over_air=self.bytes_over_air,
            booted_version=booted_version,
            rebooted=rebooted,
        )

    def _apply_interceptor(self, image: UpdateImage) -> Tuple[bytes, bytes]:
        envelope = image.envelope.pack()
        payload = image.payload
        if self.interceptor is not None:
            envelope, payload = self.interceptor(envelope, payload)
        return envelope, payload

    def run_update(self) -> UpdateOutcome:
        """Execute the full propagation (+ verification + loading) flow."""
        start = self.device.clock.now
        self.bytes_over_air = 0
        error: Optional[UpdateError] = None
        completed = False
        try:
            completed = self._propagate()
        except UpdateError as exc:
            error = exc
            # The failure may have struck between token issuance and the
            # manifest (e.g. a dropping gateway): reset the FSM so the
            # next attempt can request a fresh token.
            self.device.agent.cancel()
        return self._finish(start, error, completed)

    def _propagate(self) -> bool:
        """Run the transfer; True only when the agent accepted everything."""
        raise NotImplementedError


class PushTransport(_TransportBase):
    """Smartphone-forwarded update over BLE GATT (Fig. 2's flow).

    The phone is a *passive* component: it fetches the image from the
    update server over the Internet (modeled as free — the phone is not
    the constrained party) and forwards bytes over BLE.
    """

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 link: Optional[Link] = None,
                 interceptor: Optional[Interceptor] = None,
                 reboot_on_success: bool = True,
                 link_profile: LinkProfile = BLE_GATT) -> None:
        super().__init__(device, server,
                         link or Link(link_profile),
                         interceptor, reboot_on_success)

    def _propagate(self) -> bool:
        # Steps 4-5: the phone requests the device token over BLE.
        token = self.device.request_token()
        self._control_exchange(len(token.pack()))

        # Step 6: the phone fetches the signed image from the server.
        image = self.server.prepare_update(token)
        envelope, payload = self._apply_interceptor(image)

        # Steps 8-10: forward the manifest first; early verification.
        status = self._stream_to_device(envelope)
        if status is not FeedStatus.MANIFEST_VERIFIED:
            # Short write (e.g. truncating attacker): the agent is still
            # waiting; cancel so the FSM cleans up.
            self.device.agent.cancel()
            return False

        # Steps 11-14: firmware transfer through the pipeline.
        status = self._stream_to_device(payload)
        if status is not FeedStatus.FIRMWARE_COMPLETE:
            self.device.agent.cancel()
            return False
        return True


class PullTransport(_TransportBase):
    """Device-initiated update over CoAP/6LoWPAN through a border router.

    The device polls the server for announcements, generates its token
    locally and requests the image directly — no proxy exists, but the
    interceptor hook still allows modeling a compromised border router.
    """

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 link: Optional[Link] = None,
                 interceptor: Optional[Interceptor] = None,
                 reboot_on_success: bool = True,
                 link_profile: LinkProfile = COAP_6LOWPAN) -> None:
        super().__init__(device, server,
                         link or Link(link_profile),
                         interceptor, reboot_on_success)

    def poll_announcement(self) -> int:
        """CoAP GET of the server's announcement resource."""
        announcement = self.server.announce()
        self._control_exchange(16)
        return announcement["latest_version"]

    def _propagate(self) -> bool:
        latest = self.poll_announcement()
        if latest <= self.device.installed_version():
            return False

        token = self.device.request_token()
        # The token rides in the CoAP request to the server.
        self._control_exchange(len(token.pack()))

        image = self.server.prepare_update(token)
        envelope, payload = self._apply_interceptor(image)

        status = self._stream_to_device(envelope)
        if status is not FeedStatus.MANIFEST_VERIFIED:
            self.device.agent.cancel()
            return False
        status = self._stream_to_device(payload)
        if status is not FeedStatus.FIRMWARE_COMPLETE:
            self.device.agent.cancel()
            return False
        return True
