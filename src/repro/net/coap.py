"""CoAP message codec and blockwise transfer (RFC 7252 / RFC 7959).

The paper's pull approach downloads images over CoAP (Zoap, libcoap or
er-coap depending on the OS).  This module implements the wire format
those stacks speak — header, token, option delta/extended encoding,
payload marker — plus the Block2 option used for firmware-sized
resources, and a tiny resource server/client pair that runs UpKit's
pull flow over *actual messages* (see
:class:`repro.net.sessions.CoapPullSession`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CoapType",
    "CoapCode",
    "CoapOption",
    "CoapMessage",
    "CoapError",
    "Block",
    "CoapResourceServer",
    "blockwise_get",
]

VERSION = 1
PAYLOAD_MARKER = 0xFF


class CoapError(ValueError):
    """Malformed CoAP message or protocol violation."""


class CoapType(enum.IntEnum):
    """Message types (RFC 7252 §3)."""

    CON = 0
    NON = 1
    ACK = 2
    RST = 3


class CoapCode(enum.IntEnum):
    """Request methods and response codes (RFC 7252 §12.1)."""

    EMPTY = 0x00
    GET = 0x01
    POST = 0x02
    PUT = 0x03
    DELETE = 0x04
    CREATED = 0x41        # 2.01
    CONTENT = 0x45        # 2.05
    CHANGED = 0x44        # 2.04
    BAD_REQUEST = 0x80    # 4.00
    NOT_FOUND = 0x84      # 4.04
    FORBIDDEN = 0x83      # 4.03
    CONFLICT = 0x89       # 4.09 (RFC 8132; the service faces map
                          # HTTP 409 onto it)
    INTERNAL_SERVER_ERROR = 0xA0  # 5.00


class CoapOption(enum.IntEnum):
    """Option numbers this codec understands (RFC 7252/7959/7641)."""

    OBSERVE = 6
    URI_PATH = 11
    CONTENT_FORMAT = 12
    URI_QUERY = 15
    BLOCK2 = 23
    BLOCK1 = 27
    SIZE2 = 28
    #: W3C traceparent carried as a CoAP option: experimental-use
    #: number (RFC 7252 §12.2), even → elective, so a stack that does
    #: not trace silently ignores it instead of rejecting the request.
    TRACEPARENT = 65000


@dataclass(frozen=True)
class Block:
    """A Block1/Block2 option value (RFC 7959)."""

    num: int        # block number
    more: bool      # more blocks follow
    size: int       # block size in bytes (power of two, 16..1024)

    def __post_init__(self) -> None:
        if self.size not in (16, 32, 64, 128, 256, 512, 1024):
            raise CoapError("block size %d not a valid SZX" % self.size)
        if self.num < 0 or self.num >= 1 << 20:
            raise CoapError("block number out of range")

    @property
    def szx(self) -> int:
        return self.size.bit_length() - 5  # 16 -> 0 ... 1024 -> 6

    def encode(self) -> bytes:
        value = (self.num << 4) | (0x08 if self.more else 0) | self.szx
        if value == 0:
            return b""
        length = (value.bit_length() + 7) // 8
        return value.to_bytes(length, "big")

    @classmethod
    def decode(cls, data: bytes) -> "Block":
        value = int.from_bytes(data, "big") if data else 0
        szx = value & 0x07
        if szx == 7:
            raise CoapError("reserved SZX value 7")
        return cls(num=value >> 4, more=bool(value & 0x08),
                   size=1 << (szx + 4))


@dataclass
class CoapMessage:
    """One CoAP message with encode/decode."""

    mtype: CoapType
    code: CoapCode
    message_id: int
    token: bytes = b""
    options: List[Tuple[int, bytes]] = field(default_factory=list)
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not (0 <= self.message_id < 0x10000):
            raise CoapError("message ID must fit 16 bits")
        if len(self.token) > 8:
            raise CoapError("token longer than 8 bytes")

    # -- option helpers -------------------------------------------------------

    def add_option(self, number: int, value: bytes) -> "CoapMessage":
        self.options.append((int(number), bytes(value)))
        return self

    def option(self, number: int) -> Optional[bytes]:
        for opt_number, value in self.options:
            if opt_number == number:
                return value
        return None

    def uri_path(self) -> str:
        return "/".join(
            value.decode("utf-8")
            for number, value in self.options
            if number == CoapOption.URI_PATH
        )

    def block2(self) -> Optional[Block]:
        raw = self.option(CoapOption.BLOCK2)
        return Block.decode(raw) if raw is not None else None

    # -- wire format ---------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        out.append((VERSION << 6) | (self.mtype << 4) | len(self.token))
        out.append(self.code)
        out.extend(self.message_id.to_bytes(2, "big"))
        out.extend(self.token)

        previous = 0
        for number, value in sorted(self.options, key=lambda o: o[0]):
            delta = number - previous
            previous = number
            delta_nibble, delta_ext = _split_option_value(delta)
            length_nibble, length_ext = _split_option_value(len(value))
            out.append((delta_nibble << 4) | length_nibble)
            out.extend(delta_ext)
            out.extend(length_ext)
            out.extend(value)

        if self.payload:
            out.append(PAYLOAD_MARKER)
            out.extend(self.payload)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "CoapMessage":
        if len(data) < 4:
            raise CoapError("message shorter than the fixed header")
        if data[0] >> 6 != VERSION:
            raise CoapError("unsupported CoAP version %d" % (data[0] >> 6))
        mtype = CoapType((data[0] >> 4) & 0x03)
        token_length = data[0] & 0x0F
        if token_length > 8:
            raise CoapError("token length nibble > 8")
        try:
            code = CoapCode(data[1])
        except ValueError:
            raise CoapError("unknown CoAP code 0x%02X" % data[1]) from None
        message_id = int.from_bytes(data[2:4], "big")
        offset = 4
        token = data[offset:offset + token_length]
        if len(token) != token_length:
            raise CoapError("truncated token")
        offset += token_length

        options: List[Tuple[int, bytes]] = []
        number = 0
        while offset < len(data):
            if data[offset] == PAYLOAD_MARKER:
                offset += 1
                if offset == len(data):
                    raise CoapError("payload marker with empty payload")
                break
            delta_nibble = data[offset] >> 4
            length_nibble = data[offset] & 0x0F
            offset += 1
            delta, offset = _read_option_value(data, offset, delta_nibble)
            length, offset = _read_option_value(data, offset,
                                                length_nibble)
            number += delta
            value = data[offset:offset + length]
            if len(value) != length:
                raise CoapError("truncated option value")
            offset += length
            options.append((number, value))

        return cls(mtype=mtype, code=code, message_id=message_id,
                   token=token, options=options, payload=data[offset:])


def _split_option_value(value: int) -> Tuple[int, bytes]:
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes([value - 13])
    if value < 65805:
        return 14, (value - 269).to_bytes(2, "big")
    raise CoapError("option delta/length too large")


def _read_option_value(data: bytes, offset: int,
                       nibble: int) -> Tuple[int, int]:
    if nibble < 13:
        return nibble, offset
    if nibble == 13:
        if offset >= len(data):
            raise CoapError("truncated extended option byte")
        return data[offset] + 13, offset + 1
    if nibble == 14:
        if offset + 2 > len(data):
            raise CoapError("truncated extended option bytes")
        return int.from_bytes(data[offset:offset + 2], "big") + 269, \
            offset + 2
    raise CoapError("reserved option nibble 15")


class CoapResourceServer:
    """A minimal CoAP server: path → bytes, with Block2 slicing.

    Resources may be static bytes or callables (evaluated per request),
    which is how the update server exposes `/version`, `/token` and the
    per-request image resource.  Resources can also be **observed**
    (RFC 7641): a GET carrying Observe=0 registers the client, and
    :meth:`notify` produces the notification messages the server would
    push when the resource changes — how a pull device learns about a
    new firmware version without polling.
    """

    def __init__(self) -> None:
        self._resources: Dict[str, object] = {}
        self._observers: Dict[str, List[bytes]] = {}
        self._observe_seq = 0
        self._mid = 0

    def register(self, path: str, resource) -> None:
        """``resource``: bytes, or callable(query: bytes) -> bytes."""
        self._resources[path] = resource

    def unregister(self, path: str) -> None:
        self._resources.pop(path, None)
        self._observers.pop(path, None)

    # -- observe (RFC 7641) -------------------------------------------------

    def observers(self, path: str) -> List[bytes]:
        """Tokens currently observing ``path``."""
        return list(self._observers.get(path, []))

    def notify(self, path: str) -> List[bytes]:
        """Notification messages for every observer of ``path``."""
        resource = self._resources.get(path)
        if resource is None:
            return []
        body = resource(b"") if callable(resource) else bytes(resource)
        self._observe_seq += 1
        notifications = []
        for token in self._observers.get(path, []):
            message = CoapMessage(
                mtype=CoapType.NON, code=CoapCode.CONTENT,
                message_id=self._next_mid(), token=token,
                payload=body,
            )
            message.add_option(
                CoapOption.OBSERVE,
                self._observe_seq.to_bytes(3, "big").lstrip(b"\x00"))
            notifications.append(message.encode())
        return notifications

    def _next_mid(self) -> int:
        self._mid = (self._mid + 1) & 0xFFFF
        return self._mid

    def handle(self, request_bytes: bytes) -> bytes:
        """Process one encoded request, returning the encoded response."""
        request = CoapMessage.decode(request_bytes)
        if request.code != CoapCode.GET:
            return self._error(request, CoapCode.BAD_REQUEST)
        resource = self._resources.get(request.uri_path())
        if resource is None:
            return self._error(request, CoapCode.NOT_FOUND)

        query = request.option(CoapOption.URI_QUERY) or b""
        body = resource(query) if callable(resource) else bytes(resource)

        observe = request.option(CoapOption.OBSERVE)
        if observe is not None:
            registrations = self._observers.setdefault(
                request.uri_path(), [])
            if int.from_bytes(observe, "big") == 0:
                if request.token not in registrations:
                    registrations.append(request.token)
            else:  # Observe=1: deregister
                if request.token in registrations:
                    registrations.remove(request.token)

        block = request.block2() or Block(num=0, more=False, size=64)
        start = block.num * block.size
        if start > len(body):
            return self._error(request, CoapCode.BAD_REQUEST)
        chunk = body[start:start + block.size]
        more = start + block.size < len(body)

        response = CoapMessage(
            mtype=CoapType.ACK, code=CoapCode.CONTENT,
            message_id=request.message_id, token=request.token,
        )
        response.add_option(
            CoapOption.BLOCK2,
            Block(num=block.num, more=more, size=block.size).encode())
        response.add_option(CoapOption.SIZE2,
                            len(body).to_bytes(4, "big"))
        response.payload = chunk
        return response.encode()

    def _error(self, request: CoapMessage, code: CoapCode) -> bytes:
        return CoapMessage(mtype=CoapType.ACK, code=code,
                           message_id=request.message_id,
                           token=request.token).encode()


def blockwise_get(server: CoapResourceServer, path: str,
                  block_size: int = 64, query: bytes = b"",
                  on_exchange=None) -> bytes:
    """Fetch a resource with Block2 transfers; returns the full body.

    ``on_exchange(request_bytes, response_bytes)`` is invoked per
    round-trip so callers can meter radio cost.
    """
    body = bytearray()
    num = 0
    mid = 1
    token = b"\x42"
    while True:
        request = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                              message_id=mid, token=token)
        for segment in path.split("/"):
            request.add_option(CoapOption.URI_PATH,
                               segment.encode("utf-8"))
        if query:
            request.add_option(CoapOption.URI_QUERY, query)
        request.add_option(CoapOption.BLOCK2,
                           Block(num=num, more=False,
                                 size=block_size).encode())
        request_bytes = request.encode()
        response_bytes = server.handle(request_bytes)
        if on_exchange is not None:
            on_exchange(request_bytes, response_bytes)
        response = CoapMessage.decode(response_bytes)
        if response.code != CoapCode.CONTENT:
            raise CoapError("server answered %s for %s"
                            % (response.code.name, path))
        body.extend(response.payload)
        block = response.block2()
        if block is None or not block.more:
            return bytes(body)
        num += 1
        mid = (mid + 1) & 0xFFFF
