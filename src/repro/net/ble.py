"""BLE ATT/GATT framing for the push approach.

The paper's push front-end is a smartphone writing to a GATT service
over BLE (implemented on Zephyr's stack, driven by their iOS SDK).
This module defines the **UpKit GATT service** wire protocol that the
protocol-level push session speaks:

* a *control point* characteristic — commands framed as
  ``opcode | payload`` inside ATT Write Request values;
* a *data* characteristic — manifest/firmware chunks as ATT Write
  Without Response values (the throughput path);
* a *status* characteristic — device→phone notifications.

ATT packets are framed per the Bluetooth Core spec (opcode, handle,
value), with the default 23-byte ATT_MTU giving 20-byte values — the
number behind the 20 B/packet link profile of Fig. 8a.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

__all__ = [
    "AttOpcode",
    "AttPacket",
    "BleError",
    "Command",
    "Status",
    "ControlCommand",
    "StatusNotification",
    "Handle",
    "DEFAULT_ATT_MTU",
]

DEFAULT_ATT_MTU = 23  # value payload = MTU - 3 (opcode + handle)


class BleError(ValueError):
    """Malformed ATT packet or protocol violation."""


class AttOpcode(enum.IntEnum):
    """ATT PDU opcodes used by the UpKit GATT service."""

    WRITE_REQUEST = 0x12
    WRITE_RESPONSE = 0x13
    WRITE_COMMAND = 0x52          # write without response
    HANDLE_VALUE_NOTIFICATION = 0x1B


class Handle(enum.IntEnum):
    """Characteristic value handles of the UpKit GATT service."""

    CONTROL_POINT = 0x0010
    DATA = 0x0012
    STATUS = 0x0014


@dataclass(frozen=True)
class AttPacket:
    """One ATT PDU: opcode, attribute handle, value."""

    opcode: AttOpcode
    handle: int
    value: bytes = b""

    def encode(self) -> bytes:
        return struct.pack("<BH", self.opcode, self.handle) + self.value

    @classmethod
    def decode(cls, data: bytes) -> "AttPacket":
        if len(data) < 3:
            raise BleError("ATT PDU shorter than opcode + handle")
        opcode_raw, handle = struct.unpack("<BH", data[:3])
        try:
            opcode = AttOpcode(opcode_raw)
        except ValueError:
            raise BleError("unknown ATT opcode 0x%02X" % opcode_raw) \
                from None
        return cls(opcode=opcode, handle=handle, value=data[3:])

    def value_fits(self, att_mtu: int = DEFAULT_ATT_MTU) -> bool:
        return len(self.value) <= att_mtu - 3


class Command(enum.IntEnum):
    """Control-point opcodes (phone → device)."""

    REQUEST_TOKEN = 0x01
    BEGIN_MANIFEST = 0x02
    BEGIN_FIRMWARE = 0x03
    ABORT = 0x04


class Status(enum.IntEnum):
    """Status-notification opcodes (device → phone)."""

    TOKEN = 0x81
    MANIFEST_OK = 0x82
    UPDATE_COMPLETE = 0x83
    ERROR = 0xC0


@dataclass(frozen=True)
class ControlCommand:
    """A framed control-point value."""

    command: Command
    payload: bytes = b""

    def encode(self) -> bytes:
        return bytes([self.command]) + self.payload

    @classmethod
    def decode(cls, value: bytes) -> "ControlCommand":
        if not value:
            raise BleError("empty control-point value")
        try:
            command = Command(value[0])
        except ValueError:
            raise BleError("unknown command 0x%02X" % value[0]) from None
        return cls(command=command, payload=value[1:])


@dataclass(frozen=True)
class StatusNotification:
    """A framed status value."""

    status: Status
    payload: bytes = b""

    def encode(self) -> bytes:
        return bytes([self.status]) + self.payload

    @classmethod
    def decode(cls, value: bytes) -> "StatusNotification":
        if not value:
            raise BleError("empty status value")
        try:
            status = Status(value[0])
        except ValueError:
            raise BleError("unknown status 0x%02X" % value[0]) from None
        return cls(status=status, payload=value[1:])
