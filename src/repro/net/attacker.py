"""Adversary models: interceptors that rewrite updates in transit.

The paper's threat model (Sect. III): proxies (smartphones, gateways)
may be compromised; the transport may be untrusted; attackers may hold
*valid but outdated* images and try to reinstall them (the freshness
problem).  Each class below is an :data:`Interceptor` usable with both
transports; tests and the ablation benchmarks assert which of these
UpKit detects (all of them) versus what a mcumgr+mcuboot-style chain
detects (not the replay, and everything else only after reboot).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..core import ENVELOPE_SIZE, UpdateImage

__all__ = [
    "PassiveProxy",
    "PayloadBitFlipper",
    "ManifestTamperer",
    "TruncatingProxy",
    "ReplayAttacker",
    "PayloadSwapAttacker",
]


class PassiveProxy:
    """The honest case: forwards everything unchanged (control)."""

    def __call__(self, envelope: bytes, payload: bytes) -> Tuple[bytes, bytes]:
        return envelope, payload


class PayloadBitFlipper:
    """Flips bits in the firmware payload (tampering in transit).

    Caught by the agent's VERIFY_FIRMWARE digest check — after download
    but *before* any reboot.
    """

    def __init__(self, flips: int = 8, seed: int = 1) -> None:
        self.flips = flips
        self.seed = seed
        # Per-instance RNG (never the module-global ``random``): flip
        # positions are reproducible for a given seed and immune to
        # unrelated RNG draws, and repeated interceptions by the same
        # attacker mutate *different* positions — as a real on-path
        # tamperer would across retries.
        self._rng = random.Random(seed)

    def __call__(self, envelope: bytes, payload: bytes) -> Tuple[bytes, bytes]:
        if not payload:
            return envelope, payload
        rng = self._rng
        mutated = bytearray(payload)
        for _ in range(self.flips):
            index = rng.randrange(len(mutated))
            mutated[index] ^= 1 << rng.randrange(8)
        return envelope, bytes(mutated)


class ManifestTamperer:
    """Rewrites a manifest field (e.g. inflating the version number).

    Caught by the agent's VERIFY_MANIFEST signature check — before a
    single payload byte is downloaded.
    """

    def __init__(self, byte_offset: int = 6, xor_mask: int = 0xFF) -> None:
        if not (0 <= byte_offset < ENVELOPE_SIZE):
            raise ValueError("offset outside the envelope")
        self.byte_offset = byte_offset
        self.xor_mask = xor_mask

    def __call__(self, envelope: bytes, payload: bytes) -> Tuple[bytes, bytes]:
        mutated = bytearray(envelope)
        mutated[self.byte_offset] ^= self.xor_mask
        return bytes(mutated), payload


class TruncatingProxy:
    """Delivers only a prefix of the payload (crash / DoS attempt).

    The FSM never reaches RECEIVE_FIRMWARE completion; the slot is
    invalidated in CLEANING and the device keeps running the old image.
    """

    def __init__(self, keep_fraction: float = 0.5) -> None:
        if not (0.0 <= keep_fraction < 1.0):
            raise ValueError("keep_fraction must be in [0, 1)")
        self.keep_fraction = keep_fraction

    def __call__(self, envelope: bytes, payload: bytes) -> Tuple[bytes, bytes]:
        keep = int(len(payload) * self.keep_fraction)
        return envelope, payload[:keep]


class ReplayAttacker:
    """Replays a previously captured, *validly signed* old update.

    This is the freshness attack of Sect. II: both signatures on the
    captured image verify, but the manifest's nonce belongs to the old
    request — UpKit's token check rejects it in VERIFY_MANIFEST.
    Systems without the double signature (mcumgr + mcuboot) install it.
    """

    def __init__(self, captured: UpdateImage) -> None:
        self.captured = captured

    def __call__(self, envelope: bytes, payload: bytes) -> Tuple[bytes, bytes]:
        return self.captured.envelope.pack(), self.captured.payload


class PayloadSwapAttacker:
    """Keeps the valid envelope but substitutes the entire payload.

    Models a malicious proxy trying to ship its own firmware under a
    legitimate manifest; the digest check catches the mismatch.
    """

    def __init__(self, substitute: Optional[bytes] = None) -> None:
        self.substitute = substitute

    def __call__(self, envelope: bytes, payload: bytes) -> Tuple[bytes, bytes]:
        if self.substitute is not None:
            forged = self.substitute[:len(payload)].ljust(len(payload), b"\x90")
        else:
            forged = bytes((b ^ 0xA5) for b in payload)
        return envelope, forged
