"""Multi-hop forwarding chains: gateways and proxies between server
and device.

The paper's architecture explicitly tolerates intermediaries — "every
device in between these two, being it a smartphone or a gateway
(border router), is only in charge of forwarding the update image, and
has no active role in the update process" (Sect. III-B).  A
compromised hop can tamper (detected), replay (detected) or deny
service (a documented non-goal: "these attacks ... affect any update
system involving a device acting as proxy").

:class:`ForwardingChain` composes per-hop behaviours into a single
interceptor usable with both transports, and accounts the forwarding
latency the chain adds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core import UpdateError
from .transports import Interceptor

__all__ = ["Hop", "ForwardingChain", "GatewayDrop"]


class GatewayDrop(UpdateError):
    """A hop silently discarded the update (denial of service)."""


@dataclass
class Hop:
    """One forwarding element (border router, smartphone, cloud relay)."""

    name: str
    latency_seconds: float = 0.005
    interceptor: Optional[Interceptor] = None  # compromise model
    drop: bool = False                         # DoS: never forwards
    forwarded: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("latency must be non-negative")


class ForwardingChain:
    """An ordered chain of hops, itself usable as an interceptor."""

    def __init__(self, hops: List[Hop]) -> None:
        if not hops:
            raise ValueError("a chain needs at least one hop")
        self.hops = list(hops)
        self.accumulated_delay = 0.0

    @property
    def path(self) -> List[str]:
        return [hop.name for hop in self.hops]

    def __call__(self, envelope: bytes,
                 payload: bytes) -> Tuple[bytes, bytes]:
        for hop in self.hops:
            if hop.drop:
                raise GatewayDrop("hop %r dropped the update" % hop.name)
            hop.forwarded += 1
            self.accumulated_delay += hop.latency_seconds
            if hop.interceptor is not None:
                envelope, payload = hop.interceptor(envelope, payload)
        return envelope, payload

    def honest(self) -> bool:
        """True when no hop tampers or drops."""
        return all(hop.interceptor is None and not hop.drop
                   for hop in self.hops)
