"""Protocol-level update sessions: real messages end to end.

The transports in :mod:`repro.net.transports` model *cost* (packets ×
time); the sessions here additionally speak the *actual protocols* —
every byte between server and device is a CoAP message
(:mod:`repro.net.coap`) or an ATT PDU (:mod:`repro.net.ble`), encoded
and decoded on each side.  They exist to demonstrate (and test) that
UpKit's agent is genuinely transport-agnostic: the same FSM sits
behind both without modification, as Sect. IV-B claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import DeviceToken, FeedStatus, UpdateError, UpdateServer
from ..sim.device import SimulatedDevice
from .ble import (
    AttOpcode,
    AttPacket,
    Command,
    ControlCommand,
    DEFAULT_ATT_MTU,
    Handle,
    Status,
    StatusNotification,
)
from .coap import (
    Block,
    CoapCode,
    CoapMessage,
    CoapOption,
    CoapResourceServer,
    CoapType,
)
from .link import BLE_GATT, COAP_6LOWPAN, Link

__all__ = ["ProtocolOutcome", "CoapPullSession", "GattPeripheral",
           "BleGattPushSession"]


@dataclass
class ProtocolOutcome:
    """Result of a protocol-level session."""

    success: bool
    error: Optional[str] = None
    booted_version: int = 0
    messages: int = 0
    bytes_on_wire: int = 0
    phases: Dict[str, float] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Pull: CoAP
# ---------------------------------------------------------------------------


class CoapPullSession:
    """Device-initiated update over real CoAP messages.

    The update server is wrapped in a :class:`CoapResourceServer`
    exposing ``version`` (2-byte big-endian latest version) and
    ``image`` (per-request body selected by the device token carried in
    the URI query).
    """

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 block_size: int = 64,
                 link: Optional[Link] = None) -> None:
        self.device = device
        self.server = server
        self.block_size = block_size
        self.link = link or Link(COAP_6LOWPAN)
        self.resources = CoapResourceServer()
        self.resources.register("version", self._version_resource)
        self.resources.register("image", self._image_resource)
        self._image_cache: Dict[bytes, bytes] = {}
        self.outcome = ProtocolOutcome(success=False)

    # -- server-side resources ----------------------------------------------

    def _version_resource(self, query: bytes) -> bytes:
        return self.server.latest_version.to_bytes(2, "big")

    def _image_resource(self, query: bytes) -> bytes:
        token_bytes = bytes.fromhex(query.decode("ascii"))
        cached = self._image_cache.get(token_bytes)
        if cached is None:
            token = DeviceToken.unpack(token_bytes)
            cached = self.server.prepare_update(token).pack()
            self._image_cache[token_bytes] = cached
        return cached

    # -- client ----------------------------------------------------------------

    def run(self) -> ProtocolOutcome:
        try:
            self._run()
        except UpdateError as exc:
            self.device.agent.cancel()
            self.outcome.error = type(exc).__name__
        self.outcome.booted_version = self.device.installed_version()
        self.outcome.phases = self.device.phase_breakdown()
        return self.outcome

    def _run(self) -> None:
        latest = int.from_bytes(self._get("version"), "big")
        if latest <= self.device.installed_version():
            self.outcome.error = "nothing-newer"
            return

        token = self.device.request_token()
        query = token.pack().hex().encode("ascii")

        # Blockwise GET of the image; every block is fed to the agent as
        # it arrives — the device never buffers the image in RAM.
        num = 0
        mid = 1
        status = None
        while True:
            request = self._image_request(num, mid, query)
            response_bytes = self._exchange(request.encode())
            response = CoapMessage.decode(response_bytes)
            if response.code != CoapCode.CONTENT:
                raise UpdateError("server answered %s"
                                  % response.code.name)
            status = self.device.feed(response.payload)
            block = response.block2()
            if block is None or not block.more:
                break
            num += 1
            mid = (mid + 1) & 0xFFFF

        if status is not FeedStatus.FIRMWARE_COMPLETE:
            self.device.agent.cancel()
            self.outcome.error = "incomplete-transfer"
            return
        result = self.device.reboot()
        self.outcome.success = result.version == latest

    def _image_request(self, num: int, mid: int,
                       query: bytes) -> CoapMessage:
        request = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                              message_id=mid, token=b"\x42")
        request.add_option(CoapOption.URI_PATH, b"image")
        request.add_option(CoapOption.URI_QUERY, query)
        request.add_option(
            CoapOption.BLOCK2,
            Block(num=num, more=False, size=self.block_size).encode())
        return request

    # -- observe-driven updates (RFC 7641) -----------------------------------

    def subscribe(self) -> None:
        """Register as an observer of the version resource: the server
        will push notifications instead of the device polling."""
        request = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                              message_id=99, token=b"\x07")
        request.add_option(CoapOption.OBSERVE, b"")  # Observe=0
        request.add_option(CoapOption.URI_PATH, b"version")
        response = CoapMessage.decode(self._exchange(request.encode()))
        if response.code != CoapCode.CONTENT:
            raise UpdateError("observe registration failed: %s"
                              % response.code.name)

    def handle_notification(self, notification_bytes: bytes) -> bool:
        """React to a pushed version notification; True when an update
        ran and succeeded."""
        notification = CoapMessage.decode(notification_bytes)
        self.outcome.messages += 1
        self.outcome.bytes_on_wire += len(notification_bytes)
        self.device.account_radio(
            self.link.transfer(len(notification_bytes)).seconds, "rx")
        latest = int.from_bytes(notification.payload, "big")
        if latest <= self.device.installed_version():
            return False
        self.run()
        return self.outcome.success

    def _get(self, path: str) -> bytes:
        request = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                              message_id=0, token=b"\x01")
        request.add_option(CoapOption.URI_PATH, path.encode("utf-8"))
        response = CoapMessage.decode(self._exchange(request.encode()))
        if response.code != CoapCode.CONTENT:
            raise UpdateError("GET /%s -> %s" % (path,
                                                 response.code.name))
        return response.payload

    def _exchange(self, request_bytes: bytes) -> bytes:
        response_bytes = self.resources.handle(request_bytes)
        self.outcome.messages += 2
        self.outcome.bytes_on_wire += len(request_bytes) \
            + len(response_bytes)
        self.device.account_radio(
            self.link.transfer(len(request_bytes)).seconds, "tx")
        self.device.account_radio(
            self.link.transfer(len(response_bytes)).seconds, "rx")
        return response_bytes


# ---------------------------------------------------------------------------
# Push: BLE GATT
# ---------------------------------------------------------------------------


class GattPeripheral:
    """Device-side GATT service: ATT writes in, notifications out."""

    def __init__(self, device: SimulatedDevice) -> None:
        self.device = device

    def handle(self, packet_bytes: bytes) -> List[bytes]:
        """Process one ATT PDU; returns response/notification PDUs."""
        packet = AttPacket.decode(packet_bytes)
        replies: List[bytes] = []
        if packet.opcode == AttOpcode.WRITE_REQUEST:
            replies.append(AttPacket(AttOpcode.WRITE_RESPONSE,
                                     packet.handle).encode())
        if packet.handle == Handle.CONTROL_POINT:
            replies.extend(self._control(ControlCommand.decode(
                packet.value)))
        elif packet.handle == Handle.DATA:
            replies.extend(self._data(packet.value))
        return replies

    def _notify(self, status: Status, payload: bytes = b"") -> bytes:
        value = StatusNotification(status, payload).encode()
        return AttPacket(AttOpcode.HANDLE_VALUE_NOTIFICATION,
                         Handle.STATUS, value).encode()

    def _control(self, command: ControlCommand) -> List[bytes]:
        if command.command == Command.REQUEST_TOKEN:
            try:
                token = self.device.request_token()
            except UpdateError as exc:
                return [self._notify(Status.ERROR,
                                     type(exc).__name__.encode())]
            return [self._notify(Status.TOKEN, token.pack())]
        if command.command == Command.ABORT:
            self.device.agent.cancel()
            return []
        # BEGIN_MANIFEST / BEGIN_FIRMWARE are phase markers; the FSM
        # tracks its own state, so they need no action.
        return []

    def _data(self, value: bytes) -> List[bytes]:
        try:
            status = self.device.feed(value)
        except UpdateError as exc:
            return [self._notify(Status.ERROR,
                                 type(exc).__name__.encode())]
        if status is FeedStatus.MANIFEST_VERIFIED:
            return [self._notify(Status.MANIFEST_OK)]
        if status is FeedStatus.FIRMWARE_COMPLETE:
            return [self._notify(Status.UPDATE_COMPLETE)]
        return []


class BleGattPushSession:
    """Phone-side driver speaking the UpKit GATT service."""

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 att_mtu: int = DEFAULT_ATT_MTU,
                 link: Optional[Link] = None) -> None:
        self.device = device
        self.server = server
        self.peripheral = GattPeripheral(device)
        self.value_size = att_mtu - 3
        self.link = link or Link(BLE_GATT)
        self.outcome = ProtocolOutcome(success=False)

    def run(self) -> ProtocolOutcome:
        try:
            self._run()
        except UpdateError as exc:
            self.outcome.error = type(exc).__name__
        self.outcome.booted_version = self.device.installed_version()
        self.outcome.phases = self.device.phase_breakdown()
        return self.outcome

    def _run(self) -> None:
        # 1. request the device token via the control point.
        notifications = self._write_control(Command.REQUEST_TOKEN)
        token_note = self._expect(notifications, Status.TOKEN)
        token = DeviceToken.unpack(token_note.payload)

        # 2. fetch the double-signed image from the update server.
        image = self.server.prepare_update(token)
        blob = image.pack()
        envelope_len = len(image.envelope.pack())

        # 3. stream the manifest, then the firmware, as ATT writes.
        self._write_control(Command.BEGIN_MANIFEST)
        notes = self._write_data(blob[:envelope_len])
        self._expect(notes, Status.MANIFEST_OK)

        self._write_control(Command.BEGIN_FIRMWARE)
        notes = self._write_data(blob[envelope_len:])
        self._expect(notes, Status.UPDATE_COMPLETE)

        result = self.device.reboot()
        self.outcome.success = result.version \
            == image.manifest.version

    # -- ATT plumbing -----------------------------------------------------------

    def _write_control(self, command: Command,
                       payload: bytes = b"") -> List[StatusNotification]:
        packet = AttPacket(AttOpcode.WRITE_REQUEST, Handle.CONTROL_POINT,
                           ControlCommand(command, payload).encode())
        return self._send(packet)

    def _write_data(self, data: bytes) -> List[StatusNotification]:
        notifications: List[StatusNotification] = []
        for offset in range(0, len(data), self.value_size):
            packet = AttPacket(AttOpcode.WRITE_COMMAND, Handle.DATA,
                               data[offset:offset + self.value_size])
            notifications.extend(self._send(packet))
        return notifications

    def _send(self, packet: AttPacket) -> List[StatusNotification]:
        packet_bytes = packet.encode()
        self.outcome.messages += 1
        self.outcome.bytes_on_wire += len(packet_bytes)
        self.device.account_radio(
            self.link.transfer(len(packet.value)).seconds, "rx")
        notifications = []
        for reply_bytes in self.peripheral.handle(packet_bytes):
            self.outcome.messages += 1
            self.outcome.bytes_on_wire += len(reply_bytes)
            reply = AttPacket.decode(reply_bytes)
            if reply.opcode == AttOpcode.HANDLE_VALUE_NOTIFICATION:
                self.device.account_radio(
                    self.link.transfer(len(reply.value)).seconds, "tx")
                notifications.append(
                    StatusNotification.decode(reply.value))
        return notifications

    @staticmethod
    def _expect(notifications: List[StatusNotification],
                status: Status) -> StatusNotification:
        for note in notifications:
            if note.status == status:
                return note
            if note.status == Status.ERROR:
                raise UpdateError(
                    "device reported %s"
                    % note.payload.decode("ascii", "replace"))
        raise UpdateError("expected %s notification, got %r"
                          % (status.name,
                             [n.status.name for n in notifications]))
