"""Radio-link models: BLE GATT (push) and CoAP over 6LoWPAN (pull).

A link turns byte counts into time and packet counts.  The model is a
per-packet one — constrained radios are dominated by per-packet
overhead (connection events for BLE, block-wise request/response
round-trips for CoAP), not by raw PHY throughput:

``time = packets × packet_interval + bytes / raw_throughput``

with deterministic packet loss triggering retransmissions after a
timeout.  The two built-in profiles are calibrated so a 100 kB transfer
reproduces the paper's propagation times (47.7 s over BLE push, 41.7 s
over CoAP pull — Fig. 8a).

Beyond steady-state loss, a link can carry a *fault schedule*:

* :class:`Outage` — the link goes down once the cumulative delivered
  byte count reaches a threshold; the next N transfer attempts raise
  :class:`LinkDownError` (the transports' resume logic turns these into
  backoff + re-request instead of a failed update);
* :class:`LossBurst` — a window of elevated packet loss over a
  cumulative-byte range (a microwave oven, a passing truck);
* :class:`Slowdown` — per-packet costs multiply by a factor once a
  cumulative-byte threshold is crossed (a marginal radio at the edge of
  range: still delivering, just slowly — the *straggler* case the fleet
  telemetry plane detects).

Every random draw comes from a **per-link** ``random.Random(seed)``
(never the module-global ``random``), so one device's loss pattern is
reproducible in isolation and immune to unrelated RNG consumers — the
property the chaos sweep depends on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

__all__ = ["LinkProfile", "Link", "TransferReport", "Outage", "LossBurst",
           "Slowdown", "LinkDownError", "BLE_GATT", "COAP_6LOWPAN",
           "get_link_profile"]


class LinkDownError(Exception):
    """The link is (temporarily) down: this transfer attempt failed.

    Deliberately *not* an :class:`~repro.core.errors.UpdateError` — the
    transports decide whether to resume (backoff + retry from the last
    verified offset) or to abandon, and only the latter surfaces as an
    update failure.
    """


@dataclass(frozen=True)
class LinkProfile:
    """Static parameters of one radio transport."""

    name: str
    mtu: int                       # payload bytes per packet/block
    packet_interval: float         # seconds per delivered packet
    raw_throughput: float          # bytes/second on top of intervals
    retransmit_timeout: float      # extra delay per lost packet

    def packets_for(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.mtu)) if nbytes else 0


# 100 kB / 20 B = 5120 packets × 9.3 ms ≈ 47.7 s (Fig. 8a, push).
BLE_GATT = LinkProfile(
    name="ble-gatt",
    mtu=20,
    packet_interval=0.00930,
    raw_throughput=1_000_000.0,
    retransmit_timeout=0.030,
)

# 100 kB / 64 B = 1600 blocks × 26 ms ≈ 41.7 s (Fig. 8a, pull).
COAP_6LOWPAN = LinkProfile(
    name="coap-6lowpan",
    mtu=64,
    packet_interval=0.02600,
    raw_throughput=1_000_000.0,
    retransmit_timeout=0.250,
)

_PROFILES = {profile.name: profile for profile in (BLE_GATT, COAP_6LOWPAN)}


def get_link_profile(name: str) -> LinkProfile:
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise KeyError("unknown link %r (have: %s)"
                       % (name, ", ".join(sorted(_PROFILES)))) from None


@dataclass(frozen=True)
class TransferReport:
    """Cost of one transfer over a link."""

    payload_bytes: int
    packets: int
    retransmissions: int
    seconds: float


@dataclass(frozen=True)
class Outage:
    """The link drops once ``at_byte`` cumulative bytes were delivered.

    After firing, the next ``failures`` transfer attempts raise
    :class:`LinkDownError`; the link then recovers.  Attempt-counted
    (not wall-clock) so the schedule is deterministic regardless of how
    the caller paces its retries.
    """

    at_byte: int
    failures: int = 1

    def __post_init__(self) -> None:
        if self.at_byte < 0:
            raise ValueError("at_byte must be non-negative")
        if self.failures < 1:
            raise ValueError("failures must be at least 1")


@dataclass(frozen=True)
class LossBurst:
    """Elevated packet loss while cumulative bytes are in a window."""

    start_byte: int
    end_byte: int
    loss_rate: float

    def __post_init__(self) -> None:
        if not (0 <= self.start_byte < self.end_byte):
            raise ValueError("need 0 <= start_byte < end_byte")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")

    def covers(self, total_bytes: int) -> bool:
        return self.start_byte <= total_bytes < self.end_byte


@dataclass(frozen=True)
class Slowdown:
    """Per-packet costs multiply by ``factor`` from ``at_byte`` onwards.

    Unlike an :class:`Outage` the link keeps delivering — every packet
    just costs ``factor`` times the profile's interval (and retransmit
    timeout).  ``at_byte=0`` models a device that is slow from the
    start; a later threshold models a link that degrades mid-transfer.
    """

    at_byte: int
    factor: float

    def __post_init__(self) -> None:
        if self.at_byte < 0:
            raise ValueError("at_byte must be non-negative")
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")


class Link:
    """A lossy link instance with deterministic loss and fault schedule."""

    def __init__(self, profile: LinkProfile, loss_rate: float = 0.0,
                 seed: int = 0,
                 outages: Sequence[Outage] = (),
                 loss_bursts: Sequence[LossBurst] = (),
                 slowdowns: Sequence[Slowdown] = ()) -> None:
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        self.profile = profile
        self.loss_rate = loss_rate
        self.seed = seed
        #: Per-instance RNG: loss patterns replay exactly for a given
        #: (profile, seed, schedule) no matter what else draws randomness.
        self._rng = random.Random(seed)
        self.total_packets = 0
        self.total_retransmissions = 0
        self.total_bytes = 0
        self.down_events = 0
        self._outages: List[Outage] = sorted(outages,
                                             key=lambda o: o.at_byte)
        self._bursts: List[LossBurst] = list(loss_bursts)
        self._slowdowns: List[Slowdown] = sorted(slowdowns,
                                                 key=lambda s: s.at_byte)
        self._down_for = 0  # failures remaining in the active outage

    def _effective_loss_rate(self) -> float:
        for burst in self._bursts:
            if burst.covers(self.total_bytes):
                return burst.loss_rate
        return self.loss_rate

    def _slowdown_factor(self) -> float:
        factor = 1.0
        for slowdown in self._slowdowns:
            if self.total_bytes >= slowdown.at_byte:
                factor = max(factor, slowdown.factor)
        return factor

    def _check_outage(self) -> None:
        if self._down_for == 0 and self._outages \
                and self.total_bytes >= self._outages[0].at_byte:
            self._down_for = self._outages.pop(0).failures
        if self._down_for > 0:
            self._down_for -= 1
            self.down_events += 1
            raise LinkDownError(
                "%s link down (%d cumulative bytes delivered)"
                % (self.profile.name, self.total_bytes))

    def transfer(self, nbytes: int) -> TransferReport:
        """Model delivering ``nbytes`` of payload; returns the cost.

        Raises :class:`LinkDownError` — delivering nothing and charging
        nothing — while an :class:`Outage` is active.
        """
        self._check_outage()
        packets = self.profile.packets_for(nbytes)
        retransmissions = 0
        loss_rate = self._effective_loss_rate()
        if loss_rate:
            for _ in range(packets):
                while self._rng.random() < loss_rate:
                    retransmissions += 1
        factor = self._slowdown_factor()
        seconds = (
            (packets + retransmissions) * self.profile.packet_interval
            * factor
            + retransmissions * self.profile.retransmit_timeout * factor
            + nbytes / self.profile.raw_throughput
        )
        self.total_packets += packets + retransmissions
        self.total_retransmissions += retransmissions
        self.total_bytes += nbytes
        return TransferReport(nbytes, packets, retransmissions, seconds)

    def chunks(self, data: bytes) -> Iterator[bytes]:
        """Split ``data`` into MTU-sized wire chunks."""
        mtu = self.profile.mtu
        for offset in range(0, len(data), mtu):
            yield data[offset:offset + mtu]
