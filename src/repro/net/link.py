"""Radio-link models: BLE GATT (push) and CoAP over 6LoWPAN (pull).

A link turns byte counts into time and packet counts.  The model is a
per-packet one — constrained radios are dominated by per-packet
overhead (connection events for BLE, block-wise request/response
round-trips for CoAP), not by raw PHY throughput:

``time = packets × packet_interval + bytes / raw_throughput``

with deterministic packet loss triggering retransmissions after a
timeout.  The two built-in profiles are calibrated so a 100 kB transfer
reproduces the paper's propagation times (47.7 s over BLE push, 41.7 s
over CoAP pull — Fig. 8a).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

__all__ = ["LinkProfile", "Link", "TransferReport", "BLE_GATT",
           "COAP_6LOWPAN", "get_link_profile"]


@dataclass(frozen=True)
class LinkProfile:
    """Static parameters of one radio transport."""

    name: str
    mtu: int                       # payload bytes per packet/block
    packet_interval: float         # seconds per delivered packet
    raw_throughput: float          # bytes/second on top of intervals
    retransmit_timeout: float      # extra delay per lost packet

    def packets_for(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.mtu)) if nbytes else 0


# 100 kB / 20 B = 5120 packets × 9.3 ms ≈ 47.7 s (Fig. 8a, push).
BLE_GATT = LinkProfile(
    name="ble-gatt",
    mtu=20,
    packet_interval=0.00930,
    raw_throughput=1_000_000.0,
    retransmit_timeout=0.030,
)

# 100 kB / 64 B = 1600 blocks × 26 ms ≈ 41.7 s (Fig. 8a, pull).
COAP_6LOWPAN = LinkProfile(
    name="coap-6lowpan",
    mtu=64,
    packet_interval=0.02600,
    raw_throughput=1_000_000.0,
    retransmit_timeout=0.250,
)

_PROFILES = {profile.name: profile for profile in (BLE_GATT, COAP_6LOWPAN)}


def get_link_profile(name: str) -> LinkProfile:
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise KeyError("unknown link %r (have: %s)"
                       % (name, ", ".join(sorted(_PROFILES)))) from None


@dataclass(frozen=True)
class TransferReport:
    """Cost of one transfer over a link."""

    payload_bytes: int
    packets: int
    retransmissions: int
    seconds: float


class Link:
    """A lossy link instance with deterministic loss."""

    def __init__(self, profile: LinkProfile, loss_rate: float = 0.0,
                 seed: int = 0) -> None:
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        self.profile = profile
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self.total_packets = 0
        self.total_retransmissions = 0

    def transfer(self, nbytes: int) -> TransferReport:
        """Model delivering ``nbytes`` of payload; returns the cost."""
        packets = self.profile.packets_for(nbytes)
        retransmissions = 0
        if self.loss_rate:
            for _ in range(packets):
                while self._rng.random() < self.loss_rate:
                    retransmissions += 1
        seconds = (
            (packets + retransmissions) * self.profile.packet_interval
            + retransmissions * self.profile.retransmit_timeout
            + nbytes / self.profile.raw_throughput
        )
        self.total_packets += packets + retransmissions
        self.total_retransmissions += retransmissions
        return TransferReport(nbytes, packets, retransmissions, seconds)

    def chunks(self, data: bytes) -> Iterator[bytes]:
        """Split ``data`` into MTU-sized wire chunks."""
        mtu = self.profile.mtu
        for offset in range(0, len(data), mtu):
            yield data[offset:offset + mtu]
