"""Serial-shell transport: SLIP framing over UART.

mcumgr "allows downloading an update over Bluetooth Low Energy or a
serial interface" (paper footnote 2) — the serial path uses SLIP
(RFC 1055) framing over a UART.  This module implements the framing
codec and a UART link profile, and a small upload session that drives
any UpKit-compatible agent over serial frames; it is mostly exercised
with the mcumgr baseline, matching the real tool's deployment.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..core import FeedStatus, UpdateError, UpdateServer
from ..sim.device import SimulatedDevice
from .link import Link, LinkProfile

__all__ = ["slip_encode", "SlipDecoder", "SlipError", "SERIAL_UART",
           "SerialUploadSession"]

END = 0xC0
ESC = 0xDB
ESC_END = 0xDC
ESC_ESC = 0xDD


class SlipError(ValueError):
    """Malformed SLIP stream."""


def slip_encode(payload: bytes) -> bytes:
    """One SLIP frame: END payload(escaped) END."""
    out = bytearray([END])
    for byte in payload:
        if byte == END:
            out.extend((ESC, ESC_END))
        elif byte == ESC:
            out.extend((ESC, ESC_ESC))
        else:
            out.append(byte)
    out.append(END)
    return bytes(out)


class SlipDecoder:
    """Incremental SLIP decoder: feed UART bytes, collect frames."""

    def __init__(self) -> None:
        self._frame = bytearray()
        self._escaped = False
        self._in_frame = False

    def feed(self, data: bytes) -> List[bytes]:
        frames: List[bytes] = []
        for byte in data:
            if byte == END:
                if self._escaped:
                    raise SlipError("END inside escape sequence")
                if self._in_frame and self._frame:
                    frames.append(bytes(self._frame))
                self._frame.clear()
                self._in_frame = True
                continue
            if not self._in_frame:
                # Line noise before the first END is discarded, per the
                # RFC's recommendation.
                continue
            if self._escaped:
                if byte == ESC_END:
                    self._frame.append(END)
                elif byte == ESC_ESC:
                    self._frame.append(ESC)
                else:
                    raise SlipError("invalid escape 0x%02X" % byte)
                self._escaped = False
            elif byte == ESC:
                self._escaped = True
            else:
                self._frame.append(byte)
        return frames

    @property
    def partial(self) -> bool:
        """True when bytes of an unterminated frame are buffered."""
        return bool(self._frame) or self._escaped


# 115200 baud 8N1 ≈ 11 520 B/s; 128-byte frames with small per-frame
# turnaround (shell prompt handling).
SERIAL_UART = LinkProfile(
    name="serial-uart",
    mtu=128,
    packet_interval=0.004,
    raw_throughput=11_520.0,
    retransmit_timeout=0.050,
)


class SerialUploadSession:
    """Upload an image to a device agent over SLIP-framed serial."""

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 link: Optional[Link] = None) -> None:
        self.device = device
        self.server = server
        self.link = link or Link(SERIAL_UART)
        self.frames_sent = 0
        self.bytes_on_wire = 0

    def run(self) -> bool:
        """True when the agent accepted the complete image."""
        token = self.device.agent.request_token()
        image = self.server.prepare_update(token)
        decoder = SlipDecoder()
        status = None
        try:
            for frame in self._frames(image.pack()):
                wire = slip_encode(frame)
                self.frames_sent += 1
                self.bytes_on_wire += len(wire)
                self.device.account_radio(
                    self.link.transfer(len(wire)).seconds, "rx")
                # The device's UART ISR un-SLIPs and feeds the agent.
                for payload in decoder.feed(wire):
                    status = self.device.feed(payload)
        except UpdateError:
            self.device.agent.cancel()
            return False
        if status is not FeedStatus.FIRMWARE_COMPLETE:
            self.device.agent.cancel()
            return False
        return True

    def _frames(self, blob: bytes) -> Iterator[bytes]:
        for offset in range(0, len(blob), self.link.profile.mtu):
            yield blob[offset:offset + self.link.profile.mtu]
