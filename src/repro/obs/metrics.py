"""A small metrics registry: counters, gauges, fixed-bucket histograms.

One front door for every number the harnesses report: transports count
bytes and retries, the agent's pipeline accounts per-stage volume, the
campaign observes per-wave timings, and the existing bespoke stats
objects (crypto engine, update server, flash devices) are *surfaced*
through collector callbacks instead of being scraped ad hoc.

The registry is deliberately Prometheus-shaped (counter / gauge /
histogram with fixed upper bounds) but dependency-free and snapshot
oriented: :meth:`MetricsRegistry.snapshot` runs the registered
collectors, then returns a plain ``dict`` ready for JSON or a summary
table.  All mutation is lock-protected so the parallel wave executor
can share one registry across worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import is_dataclass, fields as dataclass_fields
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "UPDATE_LATENCY_BUCKETS",
    "WAVE_SECONDS_BUCKETS",
    "HOST_SECONDS_BUCKETS",
    "bind_engine",
    "bind_server",
    "bind_device",
]

#: End-to-end update latency in virtual seconds (a 100 kB BLE transfer
#: alone is ~48 s, so the grid reaches into the tens of minutes).
UPDATE_LATENCY_BUCKETS = (5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0,
                          1800.0)
#: Per-wave modeled duration (slowest device in the wave).
WAVE_SECONDS_BUCKETS = UPDATE_LATENCY_BUCKETS
#: Host wall-clock per wave (the executor's own cost).
HOST_SECONDS_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


class _Picklable:
    """Pickle support shared by the metric types.

    Locks cannot cross a process boundary; they are dropped on pickle
    and recreated fresh on restore.  Process-pool workers get their own
    locks — mutation never spans processes, merges happen explicitly.
    """

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(_Picklable):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help_text = help_text
        self.value = 0.0
        self._lock = lock or threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        with self._lock:
            self.value += amount

    def to_value(self) -> float:
        return self.value


class Gauge(_Picklable):
    """A value that can go anywhere (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help_text = help_text
        self.value = 0.0
        self._lock = lock or threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def to_value(self) -> float:
        return self.value


class Histogram(_Picklable):
    """Fixed-bucket histogram (cumulative counts, like Prometheus).

    ``buckets`` are inclusive upper bounds; one overflow bucket
    (``+Inf``) is implicit.  Bounds are fixed at creation — re-requesting
    the histogram with different bounds is a programming error.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 help_text: str = "",
                 lock: Optional[threading.Lock] = None) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help_text = help_text
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self._lock = lock or threading.Lock()

    def observe(self, value: float) -> None:
        """Record one value.

        Bucket bounds are *inclusive* upper bounds (Prometheus ``le``
        semantics): a value exactly on a boundary lands in that bucket,
        never the next one up.  ``+inf`` (and NaN, which compares false
        against every bound) lands in the implicit overflow bucket —
        :meth:`cumulative` keeps its ``+Inf`` count equal to ``count``
        either way, so the OpenMetrics export can never disagree with
        what ``observe`` recorded.
        """
        with self._lock:
            self.total += 1
            self.sum += value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def to_value(self) -> Dict[str, Any]:
        """JSON snapshot with *per-bucket* counts (``+Inf`` = overflow
        only).  The OpenMetrics export must not use these directly —
        that format wants :meth:`cumulative` counts."""
        buckets = {("%g" % bound): count
                   for bound, count in zip(self.bounds, self.counts)}
        buckets["+Inf"] = self.counts[-1]
        return {"count": self.total, "sum": round(self.sum, 6),
                "buckets": buckets}

    def cumulative(self) -> List[Tuple[str, int]]:
        """Cumulative ``(le_label, count)`` pairs, OpenMetrics-style.

        The running sum is taken under the lock from the same counts
        ``observe`` filled, so boundary values and overflow observations
        are consistent by construction: each ``le=B`` entry counts every
        observation ``<= B`` and the final ``+Inf`` entry always equals
        the histogram's total ``count``.
        """
        with self._lock:
            counts = list(self.counts)
            total = self.total
        running = 0
        out: List[Tuple[str, int]] = []
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append(("%g" % bound, running))
        out.append(("+Inf", total))
        return out


#: A collector mutates the registry (typically sets gauges) when a
#: snapshot is taken; it receives the registry itself.
Collector = Callable[["MetricsRegistry"], None]


class MetricsRegistry:
    """Named metrics plus pull-style collectors.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by name and
    raise on kind conflicts, so independent instrumentation sites can
    share a metric without coordination.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, Any]" = {}
        self._collectors: List[Collector] = []
        self._lock = threading.Lock()

    # -- get-or-create -------------------------------------------------------

    def _get(self, name: str, kind: str, factory: Callable[[], Any]):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise TypeError("metric %r is a %s, not a %s"
                                % (name, metric.kind, kind))
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(name, "counter",
                         lambda: Counter(name, help_text))

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help_text))

    def histogram(self, name: str, buckets: Sequence[float],
                  help_text: str = "") -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(name, buckets, help_text))

    # -- collectors ----------------------------------------------------------

    def add_collector(self, collector: Collector) -> None:
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in list(self._collectors):
            collector(self)

    # -- output --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Run collectors, then return ``{name: value}`` sorted by name."""
        self.collect()
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].to_value()
                for name in sorted(metrics)}

    def typed_metrics(self) -> List[Any]:
        """Run collectors, then return the metric *objects* sorted by
        name — the exposition formats (OpenMetrics) need each metric's
        kind and help text, which :meth:`snapshot` flattens away."""
        self.collect()
        with self._lock:
            metrics = dict(self._metrics)
        return [metrics[name] for name in sorted(metrics)]

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        # Collectors are local closures over live objects (devices,
        # engines, servers) — unpicklable by design.  Owners that
        # travel to a worker re-bind their collectors on restore (see
        # SimulatedDevice.__setstate__); the metric values themselves
        # survive the trip.
        state["_collectors"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def format_table(self, snapshot: Optional[Dict[str, Any]] = None) -> str:
        """Fixed-width summary table of a snapshot."""
        if snapshot is None:
            snapshot = self.snapshot()
        if not snapshot:
            return "(no metrics recorded)"
        width = max(len(name) for name in snapshot)
        lines = []
        for name, value in snapshot.items():
            if isinstance(value, dict):  # histogram
                rendered = "count=%d sum=%s" % (value["count"],
                                                value["sum"])
            elif float(value) == int(value):
                rendered = "%d" % int(value)
            else:
                rendered = "%.4f" % value
            lines.append("%-*s  %s" % (width, name, rendered))
        return "\n".join(lines)


# -- collectors for the existing bespoke stats objects -----------------------


def _bind_dataclass_stats(registry: MetricsRegistry, prefix: str,
                          stats_source: Callable[[], Any]) -> None:
    """Mirror a stats dataclass's numeric fields into prefixed gauges."""

    def collect(reg: MetricsRegistry) -> None:
        stats = stats_source()
        if stats is None or not is_dataclass(stats):
            return
        for field in dataclass_fields(stats):
            value = getattr(stats, field.name)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                reg.gauge("%s%s" % (prefix, field.name)).set(value)

    registry.add_collector(collect)


def bind_engine(registry: MetricsRegistry, engine: Any) -> None:
    """Surface a crypto engine's verify-cache and table counters.

    The fast engine's :class:`~repro.crypto.engine.EngineStats` become
    ``crypto.*`` gauges (``crypto.verify_calls``,
    ``crypto.verify_cache_hits``, ``crypto.key_tables_built``,
    ``crypto.key_tables_evicted``).  The reference engine keeps no
    stats; binding it is a no-op at collection time.
    """
    _bind_dataclass_stats(registry, "crypto.",
                          lambda: getattr(engine, "stats", None))


def bind_server(registry: MetricsRegistry, server: Any) -> None:
    """Surface :class:`~repro.core.server.ServerStats` as ``server.*``
    gauges (including ``server.delta_cache_hits`` and
    ``server.delta_cache_evictions``)."""
    _bind_dataclass_stats(registry, "server.",
                          lambda: getattr(server, "stats", None))


def bind_device(registry: MetricsRegistry, device: Any) -> None:
    """Surface one simulated device's agent/flash/clock/energy state.

    Registered automatically by :class:`~repro.sim.SimulatedDevice` on
    its own registry:

    * ``agent.*`` — the :class:`~repro.core.agent.AgentStats` counters;
    * ``flash.*`` — summed over the layout's distinct flash devices
      (writes, erases, wear);
    * ``time.<phase>_seconds`` — the virtual clock's phase breakdown;
    * ``energy.<component>_mj`` and ``energy.total_mj``.
    """
    _bind_dataclass_stats(registry, "agent.",
                          lambda: getattr(device.agent, "stats", None))

    def collect(reg: MetricsRegistry) -> None:
        totals = {"bytes_read": 0, "bytes_written": 0, "pages_erased": 0,
                  "write_calls": 0}
        max_wear = 0
        for flash in device._flash_devices():
            stats = flash.stats
            for key in totals:
                totals[key] += getattr(stats, key)
            max_wear = max(max_wear, stats.max_wear)
        for key, value in totals.items():
            reg.gauge("flash.%s" % key).set(value)
        reg.gauge("flash.max_wear").set(max_wear)
        for phase, seconds in device.clock.elapsed_by_label().items():
            reg.gauge("time.%s_seconds" % phase).set(round(seconds, 6))
        breakdown = device.meter.breakdown_mj()
        for component, energy in breakdown.items():
            reg.gauge("energy.%s_mj" % component).set(round(energy, 6))
        reg.gauge("energy.total_mj").set(
            round(sum(breakdown.values()), 6))

    registry.add_collector(collect)
