"""On-device black box: a flash-backed ring of lifecycle events.

When a chaos-sweep point kills a device mid-update, the question is
*where it was* when the lights went out.  RAM state (the agent FSM, the
event log) is gone after a power cycle; the black box persists a
bounded ring of fixed-size records on a small dedicated flash device —
the on-device equivalent of an aircraft flight recorder — and offers a
:meth:`BlackBox.post_mortem` that reconstructs the story afterwards.

Record format (32 bytes, big-endian)::

    u32   seq        monotonically increasing sequence number (from 1)
    f64   t          virtual-clock timestamp of the event
    u8    phase      lifecycle phase code (see PHASE_CODES)
    17s   label      event label, NUL-padded (truncated to 17 bytes)
    u16   crc        CRC-16/CCITT-FALSE over the first 30 bytes

Ring discipline follows NOR rules: records append at 32-byte offsets;
crossing into a page erases it first (reclaiming the oldest records,
one page at a time).  A record torn by power loss fails its CRC and is
skipped on read — the journal degrades, it never lies.

The backing flash is deliberately **not** part of the device's memory
layout: fault injection, chaos calibration and flash-cost accounting
all iterate layout slots, so the black box can never perturb the very
experiments it narrates.
"""

from __future__ import annotations

import math
import struct
from typing import Any, Callable, Dict, List, Optional

from ..memory import FlashMemory

__all__ = ["BlackBoxRecord", "BlackBox", "PHASE_CODES", "PHASE_OF_EVENT",
           "aggregate_post_mortems"]

RECORD_SIZE = 32
_RECORD = struct.Struct(">IdB17sH")
_LABEL_BYTES = 17

#: Lifecycle phases and their on-flash codes.
PHASE_CODES = {
    "unknown": 0,
    "propagation": 1,
    "verification": 2,
    "loading": 3,
    "running": 4,
}
_PHASE_NAMES = {code: name for name, code in PHASE_CODES.items()}

#: Phase the device is in *after* each lifecycle event fires.  Keyed by
#: :class:`~repro.core.events.EventKind` value (plus the synthetic
#: ``boot_attempt`` the simulated device records when entering the
#: bootloader).
PHASE_OF_EVENT = {
    "token_issued": "propagation",
    "manifest_verified": "propagation",
    "transfer_interrupted": "propagation",
    "transfer_resumed": "propagation",
    "firmware_verified": "verification",
    "ready_to_reboot": "loading",
    "boot_attempt": "loading",
    "swap_started": "loading",
    "swap_resumed": "loading",
    "rolled_back": "loading",
    "recovery_used": "loading",
    "boot_selected": "running",
    "update_rejected": "running",
    "update_abandoned": "running",
    "slot_cleaned": "running",
}

#: Labels after which a reboot is *expected*, not a power-loss symptom.
_EXPECTED_BEFORE_BOOT = ("ready_to_reboot", "boot_selected",
                         "update_abandoned", "update_rejected",
                         "slot_cleaned")


def _crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1) \
                & 0xFFFF
    return crc


class BlackBoxRecord:
    """One decoded ring entry."""

    __slots__ = ("seq", "t", "phase", "label")

    def __init__(self, seq: int, t: float, phase: str, label: str) -> None:
        self.seq = seq
        self.t = t
        self.phase = phase
        self.label = label

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "t": round(self.t, 6),
                "phase": self.phase, "label": self.label}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BlackBoxRecord(#%d %.3fs %s/%s)" % (
            self.seq, self.t, self.phase, self.label)


class BlackBox:
    """Bounded, power-loss-safe event journal on a dedicated flash.

    ``flash`` defaults to a small two-page device (256 records).  The
    same flash can be re-attached after a simulated power cycle — the
    constructor scans for the highest valid sequence number and resumes
    appending behind it, exactly like firmware mounting its journal at
    boot.
    """

    def __init__(self, flash: Optional[FlashMemory] = None,
                 now_fn: Optional[Callable[[], float]] = None) -> None:
        self.flash = flash if flash is not None else FlashMemory(
            2 * 4096, page_size=4096, name="blackbox")
        if self.flash.page_size % RECORD_SIZE:
            raise ValueError("page size must be a multiple of %d"
                             % RECORD_SIZE)
        self.now_fn = now_fn or (lambda: 0.0)
        self.capacity = self.flash.size // RECORD_SIZE
        self._next_seq, self._next_index = self._scan()

    def __getstate__(self) -> dict:
        # Same contract as Tracer: the owner rebinds now_fn on restore.
        state = self.__dict__.copy()
        state["now_fn"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.now_fn is None:
            self.now_fn = lambda: 0.0

    # -- mounting ------------------------------------------------------------

    def _decode(self, raw: bytes) -> Optional[BlackBoxRecord]:
        if len(raw) != RECORD_SIZE or all(b == 0xFF for b in raw):
            return None
        try:
            seq, t, phase_code, label_bytes, crc = _RECORD.unpack(raw)
        except struct.error:
            return None  # truncated slice (ring cut mid-record)
        if crc != _crc16(raw[:RECORD_SIZE - 2]) or seq == 0:
            return None  # torn or rotted record: skip, never guess
        if not math.isfinite(t) or t < 0.0:
            # A half-programmed float can survive an (unlucky) CRC
            # collision; a NaN/inf timestamp would poison every sort
            # and JSON dump downstream.  Skip, never guess.
            return None
        label = label_bytes.rstrip(b"\x00").decode("ascii", "replace")
        return BlackBoxRecord(seq, t,
                              _PHASE_NAMES.get(phase_code, "unknown"),
                              label)

    def _scan(self) -> "tuple[int, int]":
        """Find the resume point: one past the highest valid sequence."""
        best_seq = 0
        best_index = -1
        snapshot = self.flash.snapshot()
        for index in range(self.capacity):
            record = self._decode(snapshot[index * RECORD_SIZE:
                                           (index + 1) * RECORD_SIZE])
            if record is not None and record.seq > best_seq:
                best_seq = record.seq
                best_index = index
        if best_index < 0:
            return 1, 0
        return best_seq + 1, (best_index + 1) % self.capacity

    # -- writing -------------------------------------------------------------

    def record(self, label: str, phase: str = "unknown",
               t: Optional[float] = None) -> BlackBoxRecord:
        """Append one event record (erasing the next page on wrap)."""
        timestamp = self.now_fn() if t is None else t
        phase_code = PHASE_CODES.get(phase, 0)
        label_bytes = label.encode("ascii", "replace")[:_LABEL_BYTES]
        body = _RECORD.pack(self._next_seq, timestamp, phase_code,
                            label_bytes, 0)[:RECORD_SIZE - 2]
        raw = body + struct.pack(">H", _crc16(body))
        offset = self._next_index * RECORD_SIZE
        if offset % self.flash.page_size == 0 \
                and not self.flash.is_erased(offset, self.flash.page_size):
            self.flash.erase_page(offset // self.flash.page_size)
        self.flash.write(offset, raw)
        record = BlackBoxRecord(self._next_seq, timestamp,
                                _PHASE_NAMES.get(phase_code, "unknown"),
                                label_bytes.decode("ascii", "replace"))
        self._next_seq += 1
        self._next_index = (self._next_index + 1) % self.capacity
        return record

    # -- reading -------------------------------------------------------------

    def records(self) -> List[BlackBoxRecord]:
        """Every valid record, oldest first (by sequence number)."""
        snapshot = self.flash.snapshot()
        found = []
        for index in range(self.capacity):
            record = self._decode(snapshot[index * RECORD_SIZE:
                                           (index + 1) * RECORD_SIZE])
            if record is not None:
                found.append(record)
        found.sort(key=lambda record: record.seq)
        return found

    def __len__(self) -> int:
        return len(self.records())

    # -- post-mortem ---------------------------------------------------------

    def post_mortem(self, tail: int = 12) -> Dict[str, Any]:
        """Reconstruct the update story from the persisted ring.

        An **interruption** is a ``boot_attempt`` whose predecessor is
        not a clean hand-off point (``ready_to_reboot`` for an ordinary
        install, another boot, or a deliberate abandon/reject) — i.e.
        the device hit the bootloader while something was still in
        flight.  The predecessor's phase names what was interrupted.
        """
        records = self.records()
        interruptions: List[Dict[str, Any]] = []
        previous: Optional[BlackBoxRecord] = None
        for record in records:
            if record.label == "boot_attempt" and previous is not None \
                    and previous.label not in _EXPECTED_BEFORE_BOOT \
                    and previous.label != "boot_attempt":
                interruptions.append({
                    "t": round(record.t, 6),
                    "phase": previous.phase,
                    "after": previous.label,
                })
            previous = record
        return {
            "record_count": len(records),
            "first_seq": records[0].seq if records else 0,
            "last_seq": records[-1].seq if records else 0,
            "last_label": records[-1].label if records else None,
            "last_phase": records[-1].phase if records else None,
            "interruptions": interruptions,
            "interrupted_phase": (interruptions[-1]["phase"]
                                  if interruptions else None),
            "events": [record.to_dict() for record in records[-tail:]],
        }


def aggregate_post_mortems(post_mortems: "List[Dict[str, Any]]") \
        -> Dict[str, int]:
    """Fleet-wide interruption census: lifecycle phase -> count.

    Takes :meth:`BlackBox.post_mortem` dicts (one per device or chaos
    point) and tallies every recorded interruption by the phase it cut
    short — the one-line answer to "*where* does this fleet keep
    dying?".  Keys are sorted for deterministic reports.
    """
    totals: Dict[str, int] = {}
    for post_mortem in post_mortems:
        for interruption in post_mortem.get("interruptions", []):
            phase = interruption.get("phase", "unknown")
            totals[phase] = totals.get(phase, 0) + 1
    return {phase: totals[phase] for phase in sorted(totals)}
