"""Per-device health scores and fleet-level anomaly detection.

Single-device metrics say *what one device did*; a rollout operator
needs to know *which devices look wrong relative to the fleet*.  This
module turns one wave's worth of :class:`DeviceSample` s into:

* **anomalies** — stragglers (robust z-score on per-kilobyte transfer
  latency, so one marginal radio stands out against any fleet-wide
  baseline), retry storms (interruption counts per device and
  fleet-wide), energy-budget outliers (absolute budget and robust
  z-score), and crash loops (the same black-box post-mortem phase
  interrupted repeatedly);
* **health scores** — 0–100 per device, deductions for failure state,
  interruptions and each anomaly, so a wave table sorts worst-first.

Robust statistics throughout: median/MAD instead of mean/stddev, since
a single straggler must not drag the baseline toward itself (the
classic masking failure of plain z-scores on small fleets).  Everything
is deterministic — same samples, same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["DeviceSample", "Anomaly", "HealthThresholds", "HealthReport",
           "robust_zscores", "analyze_wave", "score_device"]

#: Scale factor making MAD consistent with the stddev of a normal
#: distribution (the conventional 0.6745 = Φ⁻¹(0.75)).
_MAD_SCALE = 0.6745


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_zscores(values: Sequence[float]) -> List[float]:
    """Modified z-scores via median/MAD (0.6745 · (x − med) / MAD).

    When the MAD degenerates to zero (most of the fleet identical — the
    common case in a deterministic simulation) the mean absolute
    deviation stands in, so a lone outlier among clones still scores;
    when *every* deviation is zero the scores are all zero.  Fewer than
    four samples yields all zeros: no robust baseline exists.
    """
    if len(values) < 4:
        return [0.0] * len(values)
    center = _median(values)
    deviations = [abs(value - center) for value in values]
    mad = _median(deviations)
    if mad == 0.0:
        mad = sum(deviations) / len(deviations)  # mean-abs fallback
    if mad == 0.0:
        return [0.0] * len(values)
    return [_MAD_SCALE * (value - center) / mad for value in values]


@dataclass
class DeviceSample:
    """One device's wave-level telemetry, flattened for analysis."""

    name: str
    wave: int
    state: str                      # DeviceState.value at sampling time
    update_seconds: float = 0.0
    bytes_over_air: int = 0
    energy_mj: float = 0.0
    interruptions: int = 0
    attempts: int = 1
    #: Black-box post-mortem: lifecycle phase -> interruption count.
    interrupted_phases: Dict[str, int] = field(default_factory=dict)

    @property
    def latency_per_kb(self) -> float:
        """Seconds per transferred kilobyte — the straggler axis."""
        if self.bytes_over_air <= 0:
            return 0.0
        return self.update_seconds / (self.bytes_over_air / 1024.0)

    @classmethod
    def from_record(cls, record: Any, wave: int) -> "DeviceSample":
        """Build from a :class:`~repro.fleet.campaign.DeviceRecord`.

        Reads the record's last outcome and the device's black box —
        pure reads, no virtual-clock side effects.
        """
        outcome = record.last_outcome
        phases: Dict[str, int] = {}
        blackbox = getattr(record.device, "blackbox", None)
        if blackbox is not None:
            for interruption in blackbox.post_mortem()["interruptions"]:
                phase = interruption["phase"]
                phases[phase] = phases.get(phase, 0) + 1
        return cls(
            name=record.name,
            wave=wave,
            state=record.state.value,
            update_seconds=(outcome.total_seconds if outcome else 0.0),
            bytes_over_air=(outcome.bytes_over_air if outcome else 0),
            energy_mj=(outcome.total_energy_mj if outcome else 0.0),
            interruptions=record.interruptions,
            attempts=record.attempts,
            interrupted_phases=phases,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wave": self.wave,
            "state": self.state,
            "update_seconds": round(self.update_seconds, 6),
            "bytes_over_air": self.bytes_over_air,
            "energy_mj": round(self.energy_mj, 6),
            "interruptions": self.interruptions,
            "attempts": self.attempts,
            "latency_per_kb": round(self.latency_per_kb, 6),
            "interrupted_phases": dict(self.interrupted_phases),
        }


@dataclass(frozen=True)
class HealthThresholds:
    """Detector knobs (defaults tuned for deterministic sim fleets)."""

    #: Robust z above which a device is a transfer-latency straggler.
    straggler_z: float = 3.5
    #: Per-device interruption count that flags a retry storm.
    device_interruptions: int = 3
    #: Fleet-mean interruptions per device that flags a fleet-wide storm.
    fleet_interruptions_per_device: float = 1.0
    #: Robust z above which a device is an energy outlier.
    energy_z: float = 3.5
    #: Absolute per-update energy budget (None = relative check only).
    energy_budget_mj: Optional[float] = None
    #: Same post-mortem phase interrupted this often = crash loop.
    repeated_phase_count: int = 2


@dataclass
class Anomaly:
    """One detector finding; ``device`` is None for fleet-wide ones."""

    kind: str                  # straggler | retry-storm | energy-outlier
    #                          # | crash-loop
    device: Optional[str]
    severity: float            # z-score, count, or ratio — kind-specific
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "device": self.device,
                "severity": round(self.severity, 3), "detail": self.detail}


@dataclass
class HealthReport:
    """One wave's health verdict: scores plus anomalies."""

    wave: int
    scores: Dict[str, float] = field(default_factory=dict)
    anomalies: List[Anomaly] = field(default_factory=list)

    @property
    def flagged(self) -> List[str]:
        """Devices named by at least one anomaly, sorted."""
        return sorted({anomaly.device for anomaly in self.anomalies
                       if anomaly.device is not None})

    def anomalies_for(self, device: str) -> List[Anomaly]:
        return [anomaly for anomaly in self.anomalies
                if anomaly.device == device]

    def kinds_for(self, device: str) -> List[str]:
        return sorted({anomaly.kind
                       for anomaly in self.anomalies_for(device)})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wave": self.wave,
            "scores": {name: self.scores[name]
                       for name in sorted(self.scores)},
            "anomalies": [anomaly.to_dict()
                          for anomaly in self.anomalies],
            "flagged": self.flagged,
        }


def score_device(sample: DeviceSample,
                 anomalies: Sequence[Anomaly]) -> float:
    """0–100 health score: state first, then behaviour, then anomalies."""
    score = 100.0
    if sample.state == "failed":
        score -= 50.0
    elif sample.state == "quarantined":
        score -= 70.0
    elif sample.state in ("skipped", "pending"):
        score -= 10.0
    score -= min(30.0, 10.0 * sample.interruptions)
    score -= min(10.0, 5.0 * max(0, sample.attempts - 1))
    score -= 15.0 * len({anomaly.kind for anomaly in anomalies})
    return round(max(0.0, score), 1)


def analyze_wave(samples: Sequence[DeviceSample],
                 thresholds: Optional[HealthThresholds] = None,
                 wave: int = 0) -> HealthReport:
    """Run every detector over one wave's samples."""
    thresholds = thresholds or HealthThresholds()
    report = HealthReport(wave=wave)
    if not samples:
        return report

    # -- stragglers: robust z on per-kB transfer latency ------------------
    transferred = [sample for sample in samples
                   if sample.bytes_over_air > 0]
    latencies = [sample.latency_per_kb for sample in transferred]
    for sample, z in zip(transferred, robust_zscores(latencies)):
        if z > thresholds.straggler_z:
            report.anomalies.append(Anomaly(
                kind="straggler", device=sample.name, severity=z,
                detail="%.3f s/kB vs fleet median %.3f s/kB (z=%.1f)"
                       % (sample.latency_per_kb, _median(latencies), z)))

    # -- retry storms: per-device and fleet-wide --------------------------
    for sample in samples:
        if sample.interruptions >= thresholds.device_interruptions:
            report.anomalies.append(Anomaly(
                kind="retry-storm", device=sample.name,
                severity=float(sample.interruptions),
                detail="%d transfer interruptions over %d attempt(s)"
                       % (sample.interruptions, sample.attempts)))
    mean_interruptions = (sum(s.interruptions for s in samples)
                          / len(samples))
    if mean_interruptions >= thresholds.fleet_interruptions_per_device:
        report.anomalies.append(Anomaly(
            kind="retry-storm", device=None,
            severity=mean_interruptions,
            detail="fleet-wide storm: %.2f interruptions/device"
                   % mean_interruptions))

    # -- energy outliers: absolute budget, then robust z ------------------
    energies = [sample.energy_mj for sample in transferred]
    budget = thresholds.energy_budget_mj
    energy_z = robust_zscores(energies)
    for sample, z in zip(transferred, energy_z):
        over_budget = budget is not None and sample.energy_mj > budget
        if over_budget or z > thresholds.energy_z:
            detail = ("%.1f mJ exceeds budget %.1f mJ"
                      % (sample.energy_mj, budget) if over_budget
                      else "%.1f mJ vs fleet median %.1f mJ (z=%.1f)"
                      % (sample.energy_mj, _median(energies), z))
            report.anomalies.append(Anomaly(
                kind="energy-outlier", device=sample.name,
                severity=(sample.energy_mj if over_budget else z),
                detail=detail))

    # -- crash loops: the same phase interrupted repeatedly ---------------
    for sample in samples:
        for phase, count in sorted(sample.interrupted_phases.items()):
            if count >= thresholds.repeated_phase_count:
                report.anomalies.append(Anomaly(
                    kind="crash-loop", device=sample.name,
                    severity=float(count),
                    detail="phase %r interrupted %d times"
                           % (phase, count)))

    for sample in samples:
        report.scores[sample.name] = score_device(
            sample, report.anomalies_for(sample.name))
    return report
