"""Per-device health scores and fleet-level anomaly detection.

Single-device metrics say *what one device did*; a rollout operator
needs to know *which devices look wrong relative to the fleet*.  This
module turns one wave's worth of :class:`DeviceSample` s into:

* **anomalies** — stragglers (robust z-score on per-kilobyte transfer
  latency, so one marginal radio stands out against any fleet-wide
  baseline), retry storms (interruption counts per device and
  fleet-wide), energy-budget outliers (absolute budget and robust
  z-score), and crash loops (the same black-box post-mortem phase
  interrupted repeatedly);
* **health scores** — 0–100 per device, deductions for failure state,
  interruptions and each anomaly, so a wave table sorts worst-first.

Robust statistics throughout: median/MAD instead of mean/stddev, since
a single straggler must not drag the baseline toward itself (the
classic masking failure of plain z-scores on small fleets).  Everything
is deterministic — same samples, same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

try:  # pragma: no cover - exercised by the no-numpy fallback path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["DeviceSample", "Anomaly", "HealthThresholds", "HealthReport",
           "robust_zscores", "analyze_wave", "score_device",
           "SAMPLE_STATE_CODES", "WaveArrays", "ColumnarHealth",
           "robust_zscores_array", "analyze_wave_columnar"]

#: Campaign state string -> columnar state code.  Must stay in sync
#: with ``repro.fleet.columnar.STATE_CODES`` (that module imports the
#: fleet enum; this one is string-keyed so obs never imports fleet).
SAMPLE_STATE_CODES: Dict[str, int] = {
    "pending": 0,
    "updated": 1,
    "failed": 2,
    "skipped": 3,
    "quarantined": 4,
}

#: Scale factor making MAD consistent with the stddev of a normal
#: distribution (the conventional 0.6745 = Φ⁻¹(0.75)).
_MAD_SCALE = 0.6745


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_zscores(values: Sequence[float]) -> List[float]:
    """Modified z-scores via median/MAD (0.6745 · (x − med) / MAD).

    When the MAD degenerates to zero (most of the fleet identical — the
    common case in a deterministic simulation) the mean absolute
    deviation stands in, so a lone outlier among clones still scores;
    when *every* deviation is zero the scores are all zero.  Fewer than
    four samples yields all zeros: no robust baseline exists.
    """
    if len(values) < 4:
        return [0.0] * len(values)
    center = _median(values)
    deviations = [abs(value - center) for value in values]
    mad = _median(deviations)
    if mad == 0.0:
        mad = sum(deviations) / len(deviations)  # mean-abs fallback
    if mad == 0.0:
        return [0.0] * len(values)
    return [_MAD_SCALE * (value - center) / mad for value in values]


@dataclass
class DeviceSample:
    """One device's wave-level telemetry, flattened for analysis."""

    name: str
    wave: int
    state: str                      # DeviceState.value at sampling time
    update_seconds: float = 0.0
    bytes_over_air: int = 0
    energy_mj: float = 0.0
    interruptions: int = 0
    attempts: int = 1
    #: Black-box post-mortem: lifecycle phase -> interruption count.
    interrupted_phases: Dict[str, int] = field(default_factory=dict)

    @property
    def latency_per_kb(self) -> float:
        """Seconds per transferred kilobyte — the straggler axis."""
        if self.bytes_over_air <= 0:
            return 0.0
        return self.update_seconds / (self.bytes_over_air / 1024.0)

    @classmethod
    def from_record(cls, record: Any, wave: int) -> "DeviceSample":
        """Build from a :class:`~repro.fleet.campaign.DeviceRecord`.

        Reads the record's last outcome and the device's black box —
        pure reads, no virtual-clock side effects.
        """
        outcome = record.last_outcome
        phases: Dict[str, int] = {}
        blackbox = getattr(record.device, "blackbox", None)
        if blackbox is not None:
            for interruption in blackbox.post_mortem()["interruptions"]:
                phase = interruption["phase"]
                phases[phase] = phases.get(phase, 0) + 1
        return cls(
            name=record.name,
            wave=wave,
            state=record.state.value,
            update_seconds=(outcome.total_seconds if outcome else 0.0),
            bytes_over_air=(outcome.bytes_over_air if outcome else 0),
            energy_mj=(outcome.total_energy_mj if outcome else 0.0),
            interruptions=record.interruptions,
            attempts=record.attempts,
            interrupted_phases=phases,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wave": self.wave,
            "state": self.state,
            "update_seconds": round(self.update_seconds, 6),
            "bytes_over_air": self.bytes_over_air,
            "energy_mj": round(self.energy_mj, 6),
            "interruptions": self.interruptions,
            "attempts": self.attempts,
            "latency_per_kb": round(self.latency_per_kb, 6),
            "interrupted_phases": dict(self.interrupted_phases),
        }


@dataclass(frozen=True)
class HealthThresholds:
    """Detector knobs (defaults tuned for deterministic sim fleets)."""

    #: Robust z above which a device is a transfer-latency straggler.
    straggler_z: float = 3.5
    #: Per-device interruption count that flags a retry storm.
    device_interruptions: int = 3
    #: Fleet-mean interruptions per device that flags a fleet-wide storm.
    fleet_interruptions_per_device: float = 1.0
    #: Robust z above which a device is an energy outlier.
    energy_z: float = 3.5
    #: Absolute per-update energy budget (None = relative check only).
    energy_budget_mj: Optional[float] = None
    #: Same post-mortem phase interrupted this often = crash loop.
    repeated_phase_count: int = 2


@dataclass
class Anomaly:
    """One detector finding; ``device`` is None for fleet-wide ones."""

    kind: str                  # straggler | retry-storm | energy-outlier
    #                          # | crash-loop
    device: Optional[str]
    severity: float            # z-score, count, or ratio — kind-specific
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "device": self.device,
                "severity": round(self.severity, 3), "detail": self.detail}


@dataclass
class HealthReport:
    """One wave's health verdict: scores plus anomalies."""

    wave: int
    scores: Dict[str, float] = field(default_factory=dict)
    anomalies: List[Anomaly] = field(default_factory=list)

    @property
    def flagged(self) -> List[str]:
        """Devices named by at least one anomaly, sorted."""
        return sorted({anomaly.device for anomaly in self.anomalies
                       if anomaly.device is not None})

    def anomalies_for(self, device: str) -> List[Anomaly]:
        return [anomaly for anomaly in self.anomalies
                if anomaly.device == device]

    def kinds_for(self, device: str) -> List[str]:
        return sorted({anomaly.kind
                       for anomaly in self.anomalies_for(device)})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wave": self.wave,
            "scores": {name: self.scores[name]
                       for name in sorted(self.scores)},
            "anomalies": [anomaly.to_dict()
                          for anomaly in self.anomalies],
            "flagged": self.flagged,
        }


def score_device(sample: DeviceSample,
                 anomalies: Sequence[Anomaly]) -> float:
    """0–100 health score: state first, then behaviour, then anomalies."""
    score = 100.0
    if sample.state == "failed":
        score -= 50.0
    elif sample.state == "quarantined":
        score -= 70.0
    elif sample.state in ("skipped", "pending"):
        score -= 10.0
    score -= min(30.0, 10.0 * sample.interruptions)
    score -= min(10.0, 5.0 * max(0, sample.attempts - 1))
    score -= 15.0 * len({anomaly.kind for anomaly in anomalies})
    return round(max(0.0, score), 1)


def analyze_wave(samples: Sequence[DeviceSample],
                 thresholds: Optional[HealthThresholds] = None,
                 wave: int = 0) -> HealthReport:
    """Run every detector over one wave's samples."""
    thresholds = thresholds or HealthThresholds()
    report = HealthReport(wave=wave)
    if not samples:
        return report

    # -- stragglers: robust z on per-kB transfer latency ------------------
    transferred = [sample for sample in samples
                   if sample.bytes_over_air > 0]
    latencies = [sample.latency_per_kb for sample in transferred]
    for sample, z in zip(transferred, robust_zscores(latencies)):
        if z > thresholds.straggler_z:
            report.anomalies.append(Anomaly(
                kind="straggler", device=sample.name, severity=z,
                detail="%.3f s/kB vs fleet median %.3f s/kB (z=%.1f)"
                       % (sample.latency_per_kb, _median(latencies), z)))

    # -- retry storms: per-device and fleet-wide --------------------------
    for sample in samples:
        if sample.interruptions >= thresholds.device_interruptions:
            report.anomalies.append(Anomaly(
                kind="retry-storm", device=sample.name,
                severity=float(sample.interruptions),
                detail="%d transfer interruptions over %d attempt(s)"
                       % (sample.interruptions, sample.attempts)))
    mean_interruptions = (sum(s.interruptions for s in samples)
                          / len(samples))
    if mean_interruptions >= thresholds.fleet_interruptions_per_device:
        report.anomalies.append(Anomaly(
            kind="retry-storm", device=None,
            severity=mean_interruptions,
            detail="fleet-wide storm: %.2f interruptions/device"
                   % mean_interruptions))

    # -- energy outliers: absolute budget, then robust z ------------------
    energies = [sample.energy_mj for sample in transferred]
    budget = thresholds.energy_budget_mj
    energy_z = robust_zscores(energies)
    for sample, z in zip(transferred, energy_z):
        over_budget = budget is not None and sample.energy_mj > budget
        if over_budget or z > thresholds.energy_z:
            detail = ("%.1f mJ exceeds budget %.1f mJ"
                      % (sample.energy_mj, budget) if over_budget
                      else "%.1f mJ vs fleet median %.1f mJ (z=%.1f)"
                      % (sample.energy_mj, _median(energies), z))
            report.anomalies.append(Anomaly(
                kind="energy-outlier", device=sample.name,
                severity=(sample.energy_mj if over_budget else z),
                detail=detail))

    # -- crash loops: the same phase interrupted repeatedly ---------------
    for sample in samples:
        for phase, count in sorted(sample.interrupted_phases.items()):
            if count >= thresholds.repeated_phase_count:
                report.anomalies.append(Anomaly(
                    kind="crash-loop", device=sample.name,
                    severity=float(count),
                    detail="phase %r interrupted %d times"
                           % (phase, count)))

    for sample in samples:
        report.scores[sample.name] = score_device(
            sample, report.anomalies_for(sample.name))
    return report


# -- columnar wave analysis ---------------------------------------------------
#
# The fleet-scale campaign keeps device state in numpy columns (see
# repro.fleet.columnar) and cannot afford one DeviceSample object per
# device.  The functions below run the same detectors over raw arrays
# with *bit-identical* float semantics: reductions that the sample path
# performs serially in python (the mean-abs fallback) stay serial
# python sums, per-element arithmetic vectorises (IEEE ops round the
# same scalar-by-scalar or array-wise), and medians/percentiles extract
# python floats from sorted arrays before interpolating.  Device names
# are materialised lazily — only for rows a detector actually flags.


def _median_sorted(ordered: Any) -> float:
    """Median of an already-sorted 1-D array, python-float arithmetic."""
    mid = int(ordered.size) // 2
    if ordered.size % 2:
        return float(ordered[mid])
    return (float(ordered[mid - 1]) + float(ordered[mid])) / 2.0


def robust_zscores_array(values: Any) -> Any:
    """Vectorised :func:`robust_zscores`; same bits, ndarray in/out."""
    if _np is None:
        raise RuntimeError("robust_zscores_array requires numpy")
    if values.size < 4:
        return _np.zeros(values.size, dtype=_np.float64)
    center = _median_sorted(_np.sort(values))
    deviations = _np.abs(values - center)
    mad = _median_sorted(_np.sort(deviations))
    if mad == 0.0:
        # Mean-abs fallback: the sample path sums serially in python;
        # np.sum is pairwise and rounds differently, so stay serial.
        mad = sum(deviations.tolist()) / int(values.size)
    if mad == 0.0:
        return _np.zeros(values.size, dtype=_np.float64)
    return _MAD_SCALE * (values - center) / mad


@dataclass
class WaveArrays:
    """One wave's telemetry as aligned columns, not sample objects.

    ``name_fn(position)`` resolves a row position (0..size-1, wave
    order) to its device name on demand.  ``interrupted_phases`` is
    sparse — only positions that were actually hydrated with a black
    box (in practice: unique-cohort devices, the only ones that can be
    interrupted) carry post-mortem phase counts.
    """

    wave: int
    name_fn: Callable[[int], str]
    states: Any            # uint8, SAMPLE_STATE_CODES values
    update_seconds: Any    # float64
    bytes_over_air: Any    # uint64
    energy_mj: Any         # float64
    interruptions: Any     # integer dtype
    attempts: Any          # integer dtype
    interrupted_phases: Dict[int, Dict[str, int]] = \
        field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.states.size)

    def state_mask(self, state: str) -> Any:
        return self.states == SAMPLE_STATE_CODES[state]


@dataclass
class ColumnarHealth:
    """:func:`analyze_wave_columnar`'s result bundle.

    ``scores`` stays an array (it feeds the fleet's ``health`` column);
    ``kinds_by_position`` indexes flagged rows without names so the
    telemetry plane's quarantine pass never materialises the fleet.
    """

    report: HealthReport
    scores: Any                              # float64, one per row
    kinds_by_position: Dict[int, List[str]]


def analyze_wave_columnar(arrays: WaveArrays,
                          thresholds: Optional[HealthThresholds] = None,
                          with_scores: bool = False) -> ColumnarHealth:
    """Columnar :func:`analyze_wave`: same detectors, same verdicts.

    The one intentional difference: crash-loop detection reads the
    sparse ``interrupted_phases`` map, so only hydrated rows can be
    flagged — which is exact, because a device that was never hydrated
    has no link to interrupt it.  ``with_scores=True`` additionally
    fills ``report.scores`` by name (small fleets / parity tests only;
    a million-row wave should read :attr:`ColumnarHealth.scores`).
    """
    if _np is None:
        raise RuntimeError("analyze_wave_columnar requires numpy")
    thresholds = thresholds or HealthThresholds()
    report = HealthReport(wave=arrays.wave)
    n = arrays.size
    empty = ColumnarHealth(report=report,
                           scores=_np.zeros(0, dtype=_np.float64),
                           kinds_by_position={})
    if n == 0:
        return empty
    kinds_by_position: Dict[int, List[str]] = {}
    names: Dict[int, str] = {}

    def flag(position: int, kind: str, severity: float,
             detail: str) -> None:
        name = names.get(position)
        if name is None:
            name = names[position] = arrays.name_fn(position)
        kinds = kinds_by_position.setdefault(position, [])
        if kind not in kinds:
            kinds.append(kind)
        report.anomalies.append(Anomaly(
            kind=kind, device=name, severity=severity, detail=detail))

    # -- stragglers: robust z on per-kB transfer latency ------------------
    transferred = _np.flatnonzero(arrays.bytes_over_air > 0)
    latencies = (arrays.update_seconds[transferred]
                 / (arrays.bytes_over_air[transferred] / 1024.0))
    zscores = robust_zscores_array(latencies)
    latency_median = (_median_sorted(_np.sort(latencies))
                      if latencies.size else 0.0)
    for slot in _np.flatnonzero(zscores > thresholds.straggler_z):
        position = int(transferred[slot])
        z = float(zscores[slot])
        flag(position, "straggler", z,
             "%.3f s/kB vs fleet median %.3f s/kB (z=%.1f)"
             % (float(latencies[slot]), latency_median, z))

    # -- retry storms: per-device and fleet-wide --------------------------
    stormy = _np.flatnonzero(
        arrays.interruptions >= thresholds.device_interruptions)
    for position in stormy:
        position = int(position)
        flag(position, "retry-storm",
             float(int(arrays.interruptions[position])),
             "%d transfer interruptions over %d attempt(s)"
             % (int(arrays.interruptions[position]),
                int(arrays.attempts[position])))
    mean_interruptions = (
        int(arrays.interruptions.sum(dtype=_np.int64)) / n)
    if mean_interruptions >= thresholds.fleet_interruptions_per_device:
        report.anomalies.append(Anomaly(
            kind="retry-storm", device=None,
            severity=mean_interruptions,
            detail="fleet-wide storm: %.2f interruptions/device"
                   % mean_interruptions))

    # -- energy outliers: absolute budget, then robust z ------------------
    energies = arrays.energy_mj[transferred]
    budget = thresholds.energy_budget_mj
    energy_z = robust_zscores_array(energies)
    energy_median = (_median_sorted(_np.sort(energies))
                     if energies.size else 0.0)
    over = energy_z > thresholds.energy_z
    if budget is not None:
        over = over | (energies > budget)
    for slot in _np.flatnonzero(over):
        position = int(transferred[slot])
        energy = float(energies[slot])
        z = float(energy_z[slot])
        over_budget = budget is not None and energy > budget
        detail = ("%.1f mJ exceeds budget %.1f mJ" % (energy, budget)
                  if over_budget
                  else "%.1f mJ vs fleet median %.1f mJ (z=%.1f)"
                  % (energy, energy_median, z))
        flag(position, "energy-outlier",
             energy if over_budget else z, detail)

    # -- crash loops: the same phase interrupted repeatedly ---------------
    for position in sorted(arrays.interrupted_phases):
        for phase, count in sorted(
                arrays.interrupted_phases[position].items()):
            if count >= thresholds.repeated_phase_count:
                flag(position, "crash-loop", float(count),
                     "phase %r interrupted %d times" % (phase, count))

    # -- scores, vectorised -----------------------------------------------
    scores = _np.full(n, 100.0, dtype=_np.float64)
    penalty = _np.zeros(n, dtype=_np.float64)
    penalty[arrays.state_mask("failed")] = 50.0
    penalty[arrays.state_mask("quarantined")] = 70.0
    penalty[arrays.state_mask("skipped")
            | arrays.state_mask("pending")] = 10.0
    scores -= penalty
    scores -= _np.minimum(
        30.0, 10.0 * arrays.interruptions.astype(_np.float64))
    extra_attempts = _np.maximum(
        0, arrays.attempts.astype(_np.int64) - 1)
    scores -= _np.minimum(10.0, 5.0 * extra_attempts.astype(_np.float64))
    for position, kinds in kinds_by_position.items():
        scores[position] -= 15.0 * len(kinds)
    scores = _np.round(_np.maximum(0.0, scores), 1)
    if with_scores:
        for position in range(n):
            name = names.get(position) or arrays.name_fn(position)
            report.scores[name] = float(scores[position])
    return ColumnarHealth(report=report, scores=scores,
                          kinds_by_position=kinds_by_position)
