"""Bounded virtual-clock time series: the fleet telemetry plane's store.

A campaign over thousands of devices produces far more samples than a
dashboard (or this simulation's memory budget) wants to keep.  This
module stores ``(virtual_time, value)`` points per named series with a
hard per-series bound: when a series overflows, it *downsamples* —
adjacent points are pairwise-merged (mean value, later timestamp), so
the series keeps its full time extent at half the resolution, exactly
like a fixed-size RRD.  Downsampling is deterministic: the same
appends always produce the same stored points.

Timestamps are **virtual-clock** seconds (each device's own
:class:`~repro.sim.clock.VirtualClock`), never host wall-clock: the
telemetry plane observes the simulation without being *of* it.  The
:class:`FleetScraper` is the bridge — it snapshots a device's
:class:`~repro.obs.metrics.MetricsRegistry` (a pure read: collectors
set gauges from existing stats objects, nothing advances any clock)
and lands each numeric value in a per-device series.  Campaigns stay
cycle-identical with or without a scraper attached; the tests assert
report equality byte for byte.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

__all__ = ["Point", "Series", "TimeSeriesStore", "FleetScraper",
           "DEFAULT_MAX_POINTS"]

#: Default per-series bound.  Must be even (pairwise downsampling) and
#: small enough that a million-device campaign's store stays flat.
DEFAULT_MAX_POINTS = 256


class Point(NamedTuple):
    """One sample: virtual-clock time and value."""

    t: float
    value: float


class Series:
    """One bounded series of :class:`Point` s with pairwise downsampling.

    ``resolution`` reports how many raw appends each stored point
    currently represents (1 until the first downsample, then 2, 4, …) —
    consumers can tell a raw series from a compacted one.
    """

    __slots__ = ("name", "max_points", "points", "resolution")

    def __init__(self, name: str,
                 max_points: int = DEFAULT_MAX_POINTS) -> None:
        if max_points < 8 or max_points % 2:
            raise ValueError("max_points must be an even number >= 8")
        self.name = name
        self.max_points = max_points
        self.points: List[Point] = []
        self.resolution = 1

    def append(self, t: float, value: float) -> None:
        """Add one sample; timestamps must not go backwards."""
        if self.points and t < self.points[-1].t:
            raise ValueError(
                "series %r: time went backwards (%.6f < %.6f)"
                % (self.name, t, self.points[-1].t))
        self.points.append(Point(float(t), float(value)))
        if len(self.points) > self.max_points:
            self._downsample()

    def _downsample(self) -> None:
        """Pairwise-merge: mean value, later timestamp; odd tail kept."""
        merged: List[Point] = []
        for index in range(0, len(self.points) - 1, 2):
            first, second = self.points[index], self.points[index + 1]
            merged.append(Point(second.t,
                                (first.value + second.value) / 2.0))
        if len(self.points) % 2:
            merged.append(self.points[-1])
        self.points = merged
        self.resolution *= 2

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    def latest(self) -> Optional[Point]:
        return self.points[-1] if self.points else None

    def values(self) -> List[float]:
        return [point.value for point in self.points]

    def window(self, t0: float, t1: float) -> List[Point]:
        """Points with ``t0 <= t < t1`` (already time-ordered)."""
        return [point for point in self.points if t0 <= point.t < t1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "resolution": self.resolution,
            "points": [[round(point.t, 6), round(point.value, 6)]
                       for point in self.points],
        }


class TimeSeriesStore:
    """Named, bounded series; get-or-create like the metrics registry.

    Mutation is lock-protected so the parallel wave executor's scrape
    hook can share one store across worker threads (in practice scrapes
    happen post-merge in wave order, but the store does not rely on it).
    """

    def __init__(self, max_points: int = DEFAULT_MAX_POINTS) -> None:
        self.max_points = max_points
        self._series: Dict[str, Series] = {}
        self._lock = threading.Lock()

    def series(self, name: str) -> Series:
        with self._lock:
            found = self._series.get(name)
            if found is None:
                found = Series(name, self.max_points)
                self._series[name] = found
            return found

    def record(self, name: str, t: float, value: float) -> None:
        series = self.series(name)
        with self._lock:
            series.append(t, value)

    def get(self, name: str) -> Optional[Series]:
        with self._lock:
            return self._series.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def total_points(self) -> int:
        with self._lock:
            return sum(len(series) for series in self._series.values())

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {name: self._series[name].to_dict()
                    for name in sorted(self._series)}


class FleetScraper:
    """Scrapes device metrics registries into per-device series.

    One scrape flattens a registry snapshot into ``<device>.<metric>``
    series at the device's *own* virtual-clock time: histograms land as
    ``.count`` / ``.sum`` pairs, counters and gauges as-is.  Scraping
    is read-only with respect to the simulation — no clock advances, no
    flash traffic, no energy — which is what keeps traced and untraced
    campaigns cycle-identical (the ``NULL_TRACER`` discipline).
    """

    def __init__(self, store: Optional[TimeSeriesStore] = None,
                 max_points: int = DEFAULT_MAX_POINTS) -> None:
        self.store = store if store is not None \
            else TimeSeriesStore(max_points)
        self.scrapes = 0

    def scrape(self, label: str, registry: Any, t: float) -> int:
        """Snapshot ``registry`` into ``label``-prefixed series at ``t``.

        Returns the number of points recorded.
        """
        recorded = 0
        for name, value in registry.snapshot().items():
            if isinstance(value, dict):  # histogram
                self.store.record("%s.%s.count" % (label, name), t,
                                  value["count"])
                self.store.record("%s.%s.sum" % (label, name), t,
                                  value["sum"])
                recorded += 2
            else:
                self.store.record("%s.%s" % (label, name), t, value)
                recorded += 1
        self.scrapes += 1
        return recorded

    def scrape_device(self, name: str, device: Any) -> int:
        """Scrape one simulated device at its current virtual time."""
        return self.scrape(name, device.metrics, device.clock.now)
