"""Exposition formats for the fleet telemetry plane.

Two consumers, two formats:

* **OpenMetrics text** (:func:`to_openmetrics`) — the Prometheus
  ecosystem's wire format, so a simulated fleet's metrics paste
  straight into real scrape tooling.  Every device registry becomes one
  ``device="<name>"`` label set under a shared ``upkit_``-prefixed
  metric family; counters get the mandatory ``_total`` suffix,
  histograms expose *cumulative* ``_bucket{le=...}`` samples (from
  :meth:`~repro.obs.metrics.Histogram.cumulative` — never the
  per-bucket JSON counts) plus ``_count``/``_sum``, and the document
  ends with the spec's ``# EOF`` terminator.
* **Schema-versioned JSON** (:func:`write_fleetview_report`) — the
  ``fleetview`` artifact, stamped and validated by
  :mod:`repro.tools.report` like bench/chaos/trace before it.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["OPENMETRICS_CONTENT_TYPE", "metric_name", "to_openmetrics",
           "write_openmetrics", "write_fleetview_report"]

#: The media type an HTTP exposition of :func:`to_openmetrics` MUST
#: carry (OpenMetrics spec §3): plain ``text/plain`` makes Prometheus
#: fall back to the legacy parser, which rejects the ``# EOF``
#: terminator.  The serve plane's ``/metrics`` endpoint sends this
#: verbatim.
OPENMETRICS_CONTENT_TYPE = \
    "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "upkit_") -> str:
    """Sanitize a registry metric name into an OpenMetrics family name
    (``net.bytes_over_air`` -> ``upkit_net_bytes_over_air``)."""
    cleaned = _NAME_RE.sub("_", name).strip("_")
    if not cleaned:
        raise ValueError("metric name %r sanitizes to nothing" % name)
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return prefix + cleaned


def _fmt(value: float) -> str:
    value = float(value)
    if value != value:          # NaN (an observed NaN poisons the sum)
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value):
        return "%d" % int(value)
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\"", "\\\"") \
        .replace("\n", "\\n")


def to_openmetrics(
        registries: Sequence[Tuple[str, Any]],
        prefix: str = "upkit_") -> str:
    """Render ``(device_label, MetricsRegistry)`` pairs as OpenMetrics.

    Metric families are grouped across devices (one ``# TYPE`` line,
    then every device's samples — the contiguity the spec requires) and
    sorted by family name; within a family, samples keep the caller's
    device order.  Registries disagreeing on a metric's kind is a
    programming error and raises.
    """
    # family name -> (kind, help_text, [(device, metric), ...])
    families: Dict[str, Tuple[str, str, List[Tuple[str, Any]]]] = {}
    for label, registry in registries:
        for metric in registry.typed_metrics():
            family = metric_name(metric.name, prefix)
            entry = families.get(family)
            if entry is None:
                families[family] = (metric.kind, metric.help_text,
                                    [(label, metric)])
            else:
                if entry[0] != metric.kind:
                    raise ValueError(
                        "metric family %r is a %s on one device and a "
                        "%s on another" % (family, entry[0], metric.kind))
                entry[2].append((label, metric))

    lines: List[str] = []
    for family in sorted(families):
        kind, help_text, samples = families[family]
        lines.append("# TYPE %s %s" % (family, kind))
        if help_text:
            lines.append("# HELP %s %s" % (family, help_text))
        for label, metric in samples:
            device = "device=\"%s\"" % _escape_label(label)
            if kind == "counter":
                lines.append("%s_total{%s} %s"
                             % (family, device, _fmt(metric.to_value())))
            elif kind == "histogram":
                for le, count in metric.cumulative():
                    lines.append("%s_bucket{%s,le=\"%s\"} %d"
                                 % (family, device, le, count))
                lines.append("%s_count{%s} %d"
                             % (family, device, metric.total))
                lines.append("%s_sum{%s} %s"
                             % (family, device, _fmt(metric.sum)))
            else:  # gauge
                lines.append("%s{%s} %s"
                             % (family, device, _fmt(metric.to_value())))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registries: Sequence[Tuple[str, Any]],
                      path: str, prefix: str = "upkit_") -> str:
    """Render :func:`to_openmetrics` and write it to ``path``."""
    text = to_openmetrics(registries, prefix)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path


def write_fleetview_report(data: Dict[str, Any], path: str) -> str:
    """Write the schema-versioned ``fleetview`` JSON artifact.

    Defers the :mod:`repro.tools.report` import so the obs package
    never depends on the tools layer at import time (same pattern the
    tools layer uses toward :mod:`repro.obs.trace`).
    """
    from ..tools.report import write_report
    return write_report(data, path, kind="fleetview")
