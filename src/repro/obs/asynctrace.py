"""Concurrent wall-clock tracing for the serve plane.

The PR 3 :class:`~repro.obs.trace.Tracer` nests spans with a single
stack, which is exactly right for one device on one virtual clock and
exactly wrong for an asyncio server where dozens of requests interleave
on one thread.  :class:`AsyncTracer` replaces the stack with a
:mod:`contextvars` context: each asyncio task (and each
``contextvars.copy_context()``-wrapped executor call) sees its own
"current span", so concurrent requests nest independently without ever
observing each other.

What carries over from the virtual-clock tracer, on purpose:

* **Zero perturbation when off.**  :data:`NULL_ASYNC_TRACER` answers
  :meth:`~AsyncTracer.span` with a shared null context and
  :meth:`~AsyncTracer.current_traceparent` with ``None``; the serve hot
  path pays one attribute check.
* **Explicit parentage.**  Exported spans carry ``span_id`` /
  ``parent_id`` / ``trace_id`` in ``args`` so
  :func:`~repro.obs.trace.containment_errors` can verify nesting and
  :mod:`repro.tools.report` can verify the cross-plane trace_id join.
* **Chrome-trace export.**  One ``tid`` lane per *root* span (i.e. per
  request or per device session), so Perfetto draws concurrent requests
  as parallel tracks instead of a false single stack.

What is new: every span belongs to a **trace** — a W3C-traceparent
style hex ``trace_id`` minted at the root and inherited by children.
:func:`format_traceparent` / :func:`parse_traceparent` move that
context across the wire (HTTP header, CoAP option), so a device-side
session span and the server-side request spans it caused merge into a
single trace.  Remote parentage is deliberately recorded as
``args["remote_parent_id"]`` rather than ``parent_id``: the parent
lives in another process's export (another ``pid``), and containment
checking stays local to a pid while the join is made on ``trace_id``.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple

from .trace import _NULL_CONTEXT, _US

__all__ = ["AsyncSpan", "AsyncTracer", "NULL_ASYNC_TRACER",
           "TRACEPARENT_HEADER", "new_trace_id", "format_traceparent",
           "parse_traceparent"]

#: Header (HTTP) / option payload prefix semantics follow W3C Trace
#: Context: ``00-<32 hex trace-id>-<16 hex parent-id>-01``.
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_VERSION = "00"
_HEX_DIGITS = frozenset("0123456789abcdef")


def new_trace_id() -> str:
    """Mint a 32-hex-digit W3C trace id."""
    return uuid.uuid4().hex


def format_traceparent(trace_id: str, span_id: int) -> str:
    """Render ``00-<trace_id>-<span_id as 16 hex>-01``."""
    return "%s-%s-%016x-01" % (_TRACEPARENT_VERSION, trace_id, span_id)


def parse_traceparent(value: str) -> Optional[Tuple[str, int]]:
    """Parse a traceparent into ``(trace_id, parent_span_id)``.

    Returns ``None`` for anything malformed — a bad header from a
    stranger must never fail a request, it just starts a fresh trace.
    """
    parts = value.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, parent_id, _flags = parts
    if version == "ff" or len(version) != 2:
        return None
    if len(trace_id) != 32 or not set(trace_id) <= _HEX_DIGITS:
        return None
    if len(parent_id) != 16 or not set(parent_id) <= _HEX_DIGITS:
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, int(parent_id, 16)


class AsyncSpan:
    """One closed wall-clock interval within a trace.

    ``lane`` is the export ``tid``: children inherit their root's lane
    so each request renders as one horizontal track.
    """

    __slots__ = ("name", "category", "start", "end", "span_id",
                 "parent_id", "trace_id", "lane", "args")

    def __init__(self, name: str, category: str, start: float,
                 span_id: int, parent_id: Optional[int], trace_id: str,
                 lane: int, args: Dict[str, Any]) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.end = start
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.lane = lane
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "AsyncSpan(%r, %.6f..%.6f, id=%d, parent=%r, trace=%s)" % (
            self.name, self.start, self.end, self.span_id,
            self.parent_id, self.trace_id[:8])


class _AsyncSpanContext:
    """Binds a span as the context's current span for the with-block."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "AsyncTracer", span: AsyncSpan) -> None:
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> AsyncSpan:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.args.setdefault("error", exc_type.__name__)
        if self._token is not None:
            self._tracer._current.reset(self._token)
            self._token = None
        self._tracer._close(self._span)
        return False


class AsyncTracer:
    """Span recorder safe for interleaved asyncio tasks.

    The current span lives in a :class:`contextvars.ContextVar`, so
    every task nests independently; the span *list* is shared and
    guarded by a lock because executor threads (campaign offloads)
    close spans too.  Timestamps default to :func:`time.perf_counter`
    — this tracer measures the host, not the virtual clock.
    """

    def __init__(self, now_fn: Optional[Callable[[], float]] = None,
                 enabled: bool = False,
                 trace_id_fn: Optional[Callable[[], str]] = None) -> None:
        self.now_fn = now_fn or time.perf_counter
        self.enabled = enabled
        self.trace_id_fn = trace_id_fn or new_trace_id
        self.spans: List[AsyncSpan] = []
        self.instants: List[Dict[str, Any]] = []
        self._current: "contextvars.ContextVar[Optional[AsyncSpan]]" = \
            contextvars.ContextVar("upkit_current_span", default=None)
        self._lock = threading.Lock()
        self._next_id = 1
        self._next_lane = 1

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "serve",
             start: Optional[float] = None,
             trace_id: Optional[str] = None,
             **args: Any) -> Any:
        """Open a span under the context's current span.

        ``start`` backdates the open (e.g. a request span opened only
        after its header was parsed); ``trace_id`` grafts the span into
        a remote trace (from a parsed traceparent) — both only make
        sense on roots, children always inherit the parent's trace and
        lane.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        parent: Optional[AsyncSpan] = self._current.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            if parent is not None:
                lane = parent.lane
            else:
                lane = self._next_lane
                self._next_lane += 1
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
            span_trace = parent.trace_id
        else:
            parent_id = None
            span_trace = trace_id or self.trace_id_fn()
        opened = self.now_fn() if start is None else start
        span = AsyncSpan(name, category, opened, span_id, parent_id,
                         span_trace, lane, args)
        return _AsyncSpanContext(self, span)

    def _close(self, span: AsyncSpan) -> None:
        span.end = self.now_fn()
        with self._lock:
            self.spans.append(span)

    def record_span(self, name: str, start: float, end: float,
                    category: str = "serve", **args: Any) -> None:
        """Record an already-closed child of the current span.

        For phases measured before their parent span existed — e.g.
        request parsing, timed before the traceparent header it yields
        is known.  The parent's backdated ``start`` keeps containment.
        """
        if not self.enabled:
            return
        parent: Optional[AsyncSpan] = self._current.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            if parent is not None:
                lane = parent.lane
            else:
                lane = self._next_lane
                self._next_lane += 1
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
            span_trace = parent.trace_id
        else:
            parent_id = None
            span_trace = self.trace_id_fn()
        span = AsyncSpan(name, category, start, span_id, parent_id,
                         span_trace, lane, args)
        span.end = end
        with self._lock:
            self.spans.append(span)

    def instant(self, name: str, category: str = "mark",
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a zero-duration mark in the current span's lane."""
        if not self.enabled:
            return
        parent: Optional[AsyncSpan] = self._current.get()
        with self._lock:
            lane = parent.lane if parent is not None else self._next_lane
        self.instants.append({
            "name": name,
            "category": category,
            "t": self.now_fn(),
            "parent_id": parent.span_id if parent is not None else None,
            "lane": lane,
            "args": dict(args) if args else {},
        })

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.instants.clear()
            self._next_id = 1
            self._next_lane = 1

    # -- context introspection ----------------------------------------------

    def current_span(self) -> Optional[AsyncSpan]:
        """The innermost open span of *this* context, or ``None``."""
        if not self.enabled:
            return None
        return self._current.get()

    def current_traceparent(self) -> Optional[str]:
        """Wire form of the current span, ready for a header/option."""
        span = self.current_span()
        if span is None:
            return None
        return format_traceparent(span.trace_id, span.span_id)

    def subtree(self, root: AsyncSpan) -> List[Dict[str, Any]]:
        """Closed spans of ``root``'s trace tree, for slow-request logs.

        Walks recorded spans by parentage starting at ``root`` (which
        may itself still be open); returns dicts sorted by start time.
        """
        with self._lock:
            recorded = list(self.spans)
        children: Dict[int, List[AsyncSpan]] = {}
        for span in recorded:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        tree: List[AsyncSpan] = []
        frontier = [root]
        while frontier:
            node = frontier.pop()
            if node is not root:
                tree.append(node)
            frontier.extend(children.get(node.span_id, ()))
        tree.sort(key=lambda s: (s.start, s.span_id))
        root_end = root.end if root.end > root.start else self.now_fn()
        out = [{"name": root.name, "span_id": root.span_id,
                "start": root.start, "duration_ms":
                round((root_end - root.start) * 1000.0, 3)}]
        out.extend({"name": span.name, "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start": span.start,
                    "duration_ms": round(span.duration * 1000.0, 3)}
                   for span in tree)
        return out

    # -- export -------------------------------------------------------------

    def to_chrome_trace(self, pid: int = 1,
                        process_name: Optional[str] = None
                        ) -> Dict[str, Any]:
        """Chrome-trace document; each root span owns a ``tid`` lane."""
        with self._lock:
            recorded = sorted(self.spans,
                              key=lambda s: (s.start, s.span_id))
            instants = list(self.instants)
        events: List[Dict[str, Any]] = []
        if process_name:
            events.append({
                "ph": "M", "pid": pid, "tid": 1,
                "name": "process_name",
                "args": {"name": process_name},
            })
        for span in recorded:
            args = dict(span.args)
            args["span_id"] = span.span_id
            args["parent_id"] = span.parent_id
            args["trace_id"] = span.trace_id
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start * _US, 3),
                "dur": round(span.duration * _US, 3),
                "pid": pid,
                "tid": span.lane,
                "args": args,
            })
        for instant in instants:
            events.append({
                "name": instant["name"],
                "cat": instant["category"],
                "ph": "i",
                "s": "t",
                "ts": round(instant["t"] * _US, 3),
                "pid": pid,
                "tid": instant["lane"],
                "args": dict(instant["args"],
                             parent_id=instant["parent_id"]),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Shared disabled tracer — the serve plane's default.
NULL_ASYNC_TRACER = AsyncTracer(enabled=False)
