"""Declarative SLOs and SLO-driven rollout control.

The telemetry plane's control loop: an operator declares service-level
objectives for a rollout — *p95 update time under two minutes, failure
rate under 20 %, no update costs more than N millijoules* — and the
campaign enforces them per wave.  Each :class:`SLO` names a fleet
metric, a threshold, and the :class:`Action` a breach triggers:

* ``SLOW``  — halve the next wave (blast-radius control);
* ``PAUSE`` — stop rolling, leave the remaining devices pending for an
  operator decision;
* ``ABORT`` — cancel the rollout, skip the remaining devices.

:class:`FleetTelemetry` is the object a
:class:`~repro.fleet.campaign.Campaign` consumes.  It owns the
scrape-fed :class:`~repro.obs.timeseries.TimeSeriesStore`, builds
:class:`~repro.obs.health.DeviceSample` s as devices finish, and closes
each wave with a :class:`WaveVerdict`: health report, SLO breaches, the
resulting action, and the devices to quarantine (failed devices flagged
by anomaly kinds in ``quarantine_kinds`` become
``QUARANTINED`` instead of ``FAILED`` — extending PR 2's RetryPolicy
quarantine to telemetry-driven flagging).  Everything here is pure
bookkeeping on already-spent virtual time: attaching telemetry never
changes what the campaign itself does unless an SLO actually breaches.

**Failure-rate semantics** (the double-counting trap): quarantined
devices are excluded from the failure rate entirely — neither failures
nor denominators.  A device the controller just quarantined must not
*also* count as a failure in the same wave's rate, or one flagged
radio would both be sidelined *and* still push the wave toward abort.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, \
    Sequence, Tuple

from .health import ColumnarHealth, DeviceSample, HealthReport, \
    HealthThresholds, SAMPLE_STATE_CODES, WaveArrays, analyze_wave, \
    analyze_wave_columnar
from .timeseries import FleetScraper, TimeSeriesStore

try:  # pragma: no cover - exercised by the no-numpy fallback path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["Action", "SLO", "SLOBreach", "WaveVerdict", "FleetTelemetry",
           "percentile", "fleet_metric", "FLEET_METRICS", "DEFAULT_SLOS",
           "fleet_metric_columnar", "FLEET_METRICS_COLUMNAR"]


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (q in [0, 100])."""
    if not values:
        return 0.0
    if not (0.0 <= q <= 100.0):
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class Action(enum.Enum):
    """What a breach does to the rollout, in escalating order."""

    CONTINUE = "continue"
    SLOW = "slow"
    PAUSE = "pause"
    ABORT = "abort"


_SEVERITY = {Action.CONTINUE: 0, Action.SLOW: 1, Action.PAUSE: 2,
             Action.ABORT: 3}


def _escalate(first: Action, second: Action) -> Action:
    return first if _SEVERITY[first] >= _SEVERITY[second] else second


# -- fleet metrics ------------------------------------------------------------

def _completed(samples: Sequence[DeviceSample]) -> List[DeviceSample]:
    """Samples that actually moved bytes and are not quarantined."""
    return [sample for sample in samples
            if sample.bytes_over_air > 0
            and sample.state != "quarantined"]


def _failure_rate(samples: Sequence[DeviceSample]) -> Optional[float]:
    updated = sum(1 for s in samples if s.state == "updated")
    failed = sum(1 for s in samples if s.state == "failed")
    done = updated + failed  # quarantined: in neither term, by design
    return failed / done if done else None


def _update_seconds(samples: Sequence[DeviceSample]) -> List[float]:
    return [sample.update_seconds for sample in _completed(samples)]


#: Fleet metric name -> function(samples) -> Optional[float].
FLEET_METRICS: Dict[str, Callable[[Sequence[DeviceSample]],
                                  Optional[float]]] = {
    "p50_update_seconds":
        lambda s: percentile(_update_seconds(s), 50.0)
        if _completed(s) else None,
    "p95_update_seconds":
        lambda s: percentile(_update_seconds(s), 95.0)
        if _completed(s) else None,
    "max_update_seconds":
        lambda s: max(_update_seconds(s)) if _completed(s) else None,
    "failure_rate": _failure_rate,
    "quarantine_rate":
        lambda s: (sum(1 for x in s if x.state == "quarantined")
                   / len(s)) if s else None,
    "max_energy_mj":
        lambda s: max(x.energy_mj for x in _completed(s))
        if _completed(s) else None,
    "p95_energy_mj":
        lambda s: percentile([x.energy_mj for x in _completed(s)], 95.0)
        if _completed(s) else None,
    "interruptions_per_device":
        lambda s: (sum(x.interruptions for x in s) / len(s))
        if s else None,
}


def fleet_metric(name: str,
                 samples: Sequence[DeviceSample]) -> Optional[float]:
    """Evaluate one named fleet metric (None = not measurable yet)."""
    try:
        return FLEET_METRICS[name](samples)
    except KeyError:
        raise KeyError("unknown fleet metric %r (have: %s)"
                       % (name, ", ".join(sorted(FLEET_METRICS)))) \
            from None


# -- columnar fleet metrics ---------------------------------------------------
#
# Array-shaped twins of FLEET_METRICS, bit-identical by construction:
# percentiles sort the same IEEE doubles and interpolate with python
# floats, counts are exact integers, and sums of integer columns are
# associative.  The fleet-scale campaign evaluates SLOs over a wave's
# columns without building one DeviceSample per device.


def _percentile_sorted(ordered: Any, q: float) -> float:
    """:func:`percentile` over an already-sorted ndarray."""
    n = int(ordered.size)
    if n == 0:
        return 0.0
    if n == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (n - 1)
    low = int(rank)
    high = min(low + 1, n - 1)
    fraction = rank - low
    return (float(ordered[low])
            + (float(ordered[high]) - float(ordered[low])) * fraction)


def _completed_mask(arrays: WaveArrays) -> Any:
    return ((arrays.bytes_over_air > 0)
            & (arrays.states != SAMPLE_STATE_CODES["quarantined"]))


def _completed_seconds(arrays: WaveArrays) -> Any:
    return _np.sort(arrays.update_seconds[_completed_mask(arrays)])


def _completed_energy(arrays: WaveArrays) -> Any:
    return _np.sort(arrays.energy_mj[_completed_mask(arrays)])


def _failure_rate_columnar(arrays: WaveArrays) -> Optional[float]:
    updated = int(arrays.state_mask("updated").sum())
    failed = int(arrays.state_mask("failed").sum())
    done = updated + failed  # quarantined: in neither term, by design
    return failed / done if done else None


def _percentile_metric(selector: Callable[[WaveArrays], Any],
                       q: float) -> Callable[[WaveArrays],
                                             Optional[float]]:
    def metric(arrays: WaveArrays) -> Optional[float]:
        ordered = selector(arrays)
        return _percentile_sorted(ordered, q) if ordered.size else None
    return metric


#: Fleet metric name -> function(WaveArrays) -> Optional[float].
FLEET_METRICS_COLUMNAR: Dict[str, Callable[[WaveArrays],
                                           Optional[float]]] = {
    "p50_update_seconds": _percentile_metric(_completed_seconds, 50.0),
    "p95_update_seconds": _percentile_metric(_completed_seconds, 95.0),
    "max_update_seconds":
        lambda a: (float(_np.max(a.update_seconds[_completed_mask(a)]))
                   if _completed_mask(a).any() else None),
    "failure_rate": _failure_rate_columnar,
    "quarantine_rate":
        lambda a: (int(a.state_mask("quarantined").sum()) / a.size
                   if a.size else None),
    "max_energy_mj":
        lambda a: (float(_np.max(a.energy_mj[_completed_mask(a)]))
                   if _completed_mask(a).any() else None),
    "p95_energy_mj": _percentile_metric(_completed_energy, 95.0),
    "interruptions_per_device":
        lambda a: (int(a.interruptions.sum(dtype=_np.int64)) / a.size
                   if a.size else None),
}


def fleet_metric_columnar(name: str,
                          arrays: WaveArrays) -> Optional[float]:
    """Columnar twin of :func:`fleet_metric`."""
    if _np is None:
        raise RuntimeError("fleet_metric_columnar requires numpy")
    try:
        return FLEET_METRICS_COLUMNAR[name](arrays)
    except KeyError:
        raise KeyError(
            "unknown fleet metric %r (have: %s)"
            % (name, ", ".join(sorted(FLEET_METRICS_COLUMNAR)))) \
            from None


@dataclass(frozen=True)
class SLO:
    """One declarative objective: ``metric`` must stay <= ``threshold``.

    All fleet metrics are "lower is better" (times, rates, energy), so
    a single comparison direction suffices; ``action`` is what a breach
    does to the rollout.
    """

    name: str
    metric: str
    threshold: float
    action: Action = Action.ABORT

    def __post_init__(self) -> None:
        if self.metric not in FLEET_METRICS:
            raise ValueError("unknown fleet metric %r (have: %s)"
                             % (self.metric,
                                ", ".join(sorted(FLEET_METRICS))))
        if self.action is Action.CONTINUE:
            raise ValueError("a breach must escalate: use SLOW, PAUSE "
                             "or ABORT")

    def evaluate(self, samples: Sequence[DeviceSample],
                 wave: int) -> Optional["SLOBreach"]:
        observed = fleet_metric(self.metric, samples)
        return self._breach(observed, wave)

    def evaluate_arrays(self, arrays: WaveArrays,
                        wave: int) -> Optional["SLOBreach"]:
        """Columnar twin of :meth:`evaluate` (same breach, same bits)."""
        return self._breach(fleet_metric_columnar(self.metric, arrays),
                            wave)

    def _breach(self, observed: Optional[float],
                wave: int) -> Optional["SLOBreach"]:
        if observed is None or observed <= self.threshold:
            return None
        return SLOBreach(name=self.name, metric=self.metric,
                         observed=observed, threshold=self.threshold,
                         wave=wave, action=self.action)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "metric": self.metric,
                "threshold": self.threshold,
                "action": self.action.value}


@dataclass
class SLOBreach:
    """One objective blown in one wave."""

    name: str
    metric: str
    observed: float
    threshold: float
    wave: int
    action: Action

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "metric": self.metric,
                "observed": round(self.observed, 6),
                "threshold": self.threshold, "wave": self.wave,
                "action": self.action.value}


#: A sane production default set: generous enough that a healthy fleet
#: passes, tight enough that a bad release trips before the main wave.
DEFAULT_SLOS: Tuple[SLO, ...] = (
    SLO("update-time-p95", "p95_update_seconds", 600.0, Action.PAUSE),
    SLO("failure-rate", "failure_rate", 0.2, Action.ABORT),
    SLO("energy-per-update", "max_energy_mj", 10_000.0, Action.SLOW),
)


@dataclass
class WaveVerdict:
    """What the telemetry plane decided about one finished wave."""

    wave: int
    action: Action
    health: HealthReport
    breaches: List[SLOBreach] = field(default_factory=list)
    #: Failed devices the campaign should re-file as quarantined.
    quarantine: List[str] = field(default_factory=list)
    metrics: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def breached(self) -> bool:
        return bool(self.breaches)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wave": self.wave,
            "action": self.action.value,
            "breaches": [breach.to_dict() for breach in self.breaches],
            "quarantine": list(self.quarantine),
            "health": self.health.to_dict(),
            "metrics": {name: (round(value, 6)
                               if value is not None else None)
                        for name, value in sorted(self.metrics.items())},
        }


class FleetTelemetry:
    """The fleet telemetry plane, as one campaign-attachable object.

    Lifecycle (driven by :class:`~repro.fleet.campaign.Campaign`):

    1. the wave executor calls :meth:`scrape_record` as each device
       finishes (wave order — deterministic);
    2. the campaign calls :meth:`observe_device` per merged record;
    3. the campaign calls :meth:`close_wave`, gets a
       :class:`WaveVerdict`, and applies its action/quarantine list.

    ``quarantine_kinds`` names the anomaly kinds that re-file a *failed*
    device as quarantined (default: retry storms and crash loops — a
    flaky radio or a crash-looping install is a device problem, not a
    release problem, and must not abort the fleet's rollout).
    """

    def __init__(self, slos: Sequence[SLO] = DEFAULT_SLOS,
                 thresholds: Optional[HealthThresholds] = None,
                 store: Optional[TimeSeriesStore] = None,
                 quarantine_kinds: FrozenSet[str] = frozenset(
                     {"retry-storm", "crash-loop"})) -> None:
        self.slos: Tuple[SLO, ...] = tuple(slos)
        self.thresholds = thresholds or HealthThresholds()
        self.store = store if store is not None else TimeSeriesStore()
        self.scraper = FleetScraper(self.store)
        self.quarantine_kinds = frozenset(quarantine_kinds)
        self.samples: List[DeviceSample] = []
        self.verdicts: List[WaveVerdict] = []
        #: Optional :class:`~repro.fleet.budget.RetryGovernor`: when a
        #: retry-storm anomaly fires, the affected device's fault
        #: domain (via ``domain_of``) gets its circuit breaker tripped
        #: — detection actuates instead of merely reporting.  Wired by
        #: the campaign; None keeps telemetry observation-only.
        self.governor: Optional[Any] = None
        self.domain_of: Optional[Any] = None

    # -- ingestion (campaign-driven) -----------------------------------------

    def scrape_record(self, record: Any) -> None:
        """Executor hook: scrape one finished device's registry."""
        self.scraper.scrape_device(record.name, record.device)

    def observe_device(self, record: Any, wave: int) -> DeviceSample:
        sample = DeviceSample.from_record(record, wave)
        self.samples.append(sample)
        return sample

    def observe_sample(self, sample: DeviceSample) -> DeviceSample:
        """Ingest a pre-built sample (a resumed campaign synthesizing
        journal-replayed members it never re-drove)."""
        self.samples.append(sample)
        return sample

    def close_wave(self, wave: int,
                   t: float = 0.0) -> WaveVerdict:
        """Analyze the wave, evaluate SLOs, and decide the action.

        Quarantine flagging happens *before* SLO evaluation: flagged
        failed devices are re-labelled quarantined in the samples, so
        the failure-rate metric never double-counts them (see module
        docstring).  ``t`` is the campaign's wall-clock so far, used to
        timestamp the fleet-level series.
        """
        wave_samples = [sample for sample in self.samples
                        if sample.wave == wave]
        health = analyze_wave(wave_samples, self.thresholds, wave=wave)
        if self.governor is not None:
            # Actuation: a retry-storm anomaly trips the breaker of
            # the device's fault domain (None = the fleet-wide one).
            for anomaly in health.anomalies:
                if anomaly.kind == "retry-storm":
                    domain = (self.domain_of(anomaly.device)
                              if self.domain_of is not None
                              and anomaly.device else None)
                    self.governor.note_retry_storm(domain, now=t)
        quarantine = [
            sample.name for sample in wave_samples
            if sample.state == "failed"
            and any(kind in self.quarantine_kinds
                    for kind in health.kinds_for(sample.name))
        ]
        for sample in wave_samples:
            if sample.name in quarantine:
                sample.state = "quarantined"

        breaches = []
        action = Action.CONTINUE
        for slo in self.slos:
            breach = slo.evaluate(wave_samples, wave)
            if breach is not None:
                breaches.append(breach)
                action = _escalate(action, breach.action)

        metrics = {name: fleet_metric(name, wave_samples)
                   for name in sorted(FLEET_METRICS)}
        for name, value in metrics.items():
            if value is not None:
                self.store.record("fleet.%s" % name, t, value)
        self.store.record("fleet.anomalies", t,
                          len(health.anomalies))

        verdict = WaveVerdict(wave=wave, action=action, health=health,
                              breaches=breaches, quarantine=quarantine,
                              metrics=metrics)
        self.verdicts.append(verdict)
        return verdict

    def close_wave_arrays(self, arrays: WaveArrays, t: float = 0.0,
                          with_scores: bool = False
                          ) -> Tuple[WaveVerdict, ColumnarHealth]:
        """Columnar :meth:`close_wave` for the fleet-scale campaign.

        Identical decision sequence — health detectors, quarantine
        re-labelling *before* SLO evaluation, escalation, fleet-series
        recording — over one wave's columns.  Mutates
        ``arrays.states`` in place for quarantined rows (the caller's
        columnar store sees the re-filing, exactly as the hydrated
        campaign sees mutated samples).  Returns the verdict plus the
        :class:`~repro.obs.health.ColumnarHealth` bundle whose
        ``scores`` array feeds the fleet's health column.
        """
        if _np is None:
            raise RuntimeError("close_wave_arrays requires numpy")
        wave = arrays.wave
        columnar = analyze_wave_columnar(arrays, self.thresholds,
                                         with_scores=with_scores)
        health = columnar.report
        failed_code = SAMPLE_STATE_CODES["failed"]
        quarantine_positions = [
            position for position in sorted(columnar.kinds_by_position)
            if int(arrays.states[position]) == failed_code
            and any(kind in self.quarantine_kinds
                    for kind in columnar.kinds_by_position[position])
        ]
        quarantine = [arrays.name_fn(position)
                      for position in quarantine_positions]
        if quarantine_positions:
            arrays.states[_np.asarray(quarantine_positions)] = \
                SAMPLE_STATE_CODES["quarantined"]

        breaches = []
        action = Action.CONTINUE
        for slo in self.slos:
            breach = slo.evaluate_arrays(arrays, wave)
            if breach is not None:
                breaches.append(breach)
                action = _escalate(action, breach.action)

        metrics = {name: fleet_metric_columnar(name, arrays)
                   for name in sorted(FLEET_METRICS_COLUMNAR)}
        for name, value in metrics.items():
            if value is not None:
                self.store.record("fleet.%s" % name, t, value)
        self.store.record("fleet.anomalies", t,
                          len(health.anomalies))

        verdict = WaveVerdict(wave=wave, action=action, health=health,
                              breaches=breaches, quarantine=quarantine,
                              metrics=metrics)
        self.verdicts.append(verdict)
        return verdict, columnar

    # -- reporting -----------------------------------------------------------

    @property
    def breached(self) -> bool:
        return any(verdict.breaches for verdict in self.verdicts)

    def verdict(self) -> str:
        """Overall SLO verdict for the whole campaign."""
        return "breached" if self.breached else "ok"

    def anomalies(self) -> List[Dict[str, Any]]:
        return [anomaly.to_dict()
                for verdict in self.verdicts
                for anomaly in verdict.health.anomalies]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict(),
            "slos": [slo.to_dict() for slo in self.slos],
            "waves": [verdict.to_dict() for verdict in self.verdicts],
            "anomalies": self.anomalies(),
            "samples": [sample.to_dict() for sample in self.samples],
            "timeseries": self.store.to_dict(),
        }
