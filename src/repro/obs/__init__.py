"""Observability: lifecycle tracing, metrics, and black-box logging.

The flight-recorder layer of the reproduction (the FOTA survey's
"campaign monitoring" requirement): :mod:`repro.obs.trace` records
virtual-clock spans exportable as Chrome-trace JSON,
:mod:`repro.obs.metrics` is a dependency-free counter/gauge/histogram
registry that also *surfaces* the existing bespoke stats objects, and
:mod:`repro.obs.blackbox` persists lifecycle events through simulated
flash so a chaos-sweep power cut leaves a readable post-mortem.
"""

from .blackbox import PHASE_OF_EVENT, BlackBox, BlackBoxRecord
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    UPDATE_LATENCY_BUCKETS,
    bind_device,
    bind_engine,
    bind_server,
)
from .trace import (
    NULL_TRACER,
    Span,
    Tracer,
    containment_errors,
    merge_chrome_traces,
)

__all__ = [
    "BlackBox",
    "BlackBoxRecord",
    "PHASE_OF_EVENT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "UPDATE_LATENCY_BUCKETS",
    "bind_device",
    "bind_engine",
    "bind_server",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "containment_errors",
    "merge_chrome_traces",
]
