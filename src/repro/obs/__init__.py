"""Observability: tracing, metrics, black boxes, and the telemetry plane.

The flight-recorder layer of the reproduction (the FOTA survey's
"campaign monitoring" requirement): :mod:`repro.obs.trace` records
virtual-clock spans exportable as Chrome-trace JSON,
:mod:`repro.obs.asynctrace` is its wall-clock sibling for the serve
plane (contextvars span context, W3C-style traceparent propagation),
:mod:`repro.obs.metrics` is a dependency-free counter/gauge/histogram
registry that also *surfaces* the existing bespoke stats objects, and
:mod:`repro.obs.blackbox` persists lifecycle events through simulated
flash so a chaos-sweep power cut leaves a readable post-mortem.

On top of those sit the fleet telemetry plane's modules:
:mod:`repro.obs.timeseries` (bounded virtual-clock series fed by
scrapes of each device's registry), :mod:`repro.obs.health`
(per-device health scores and fleet anomaly detectors),
:mod:`repro.obs.slo` (declarative SLOs whose breaches pause, slow or
abort a rollout) and :mod:`repro.obs.export` (OpenMetrics text and the
schema-versioned ``fleetview`` JSON artifact).
"""

from .blackbox import PHASE_OF_EVENT, BlackBox, BlackBoxRecord, \
    aggregate_post_mortems
from .export import OPENMETRICS_CONTENT_TYPE, to_openmetrics, \
    write_openmetrics
from .health import (
    Anomaly,
    DeviceSample,
    HealthReport,
    HealthThresholds,
    analyze_wave,
    robust_zscores,
    score_device,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    UPDATE_LATENCY_BUCKETS,
    bind_device,
    bind_engine,
    bind_server,
)
from .slo import (
    Action,
    DEFAULT_SLOS,
    FleetTelemetry,
    SLO,
    SLOBreach,
    WaveVerdict,
    percentile,
)
from .asynctrace import (
    AsyncSpan,
    AsyncTracer,
    NULL_ASYNC_TRACER,
    TRACEPARENT_HEADER,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from .timeseries import FleetScraper, Point, Series, TimeSeriesStore
from .trace import (
    NULL_TRACER,
    Span,
    Tracer,
    containment_errors,
    merge_chrome_traces,
)

__all__ = [
    "BlackBox",
    "BlackBoxRecord",
    "PHASE_OF_EVENT",
    "aggregate_post_mortems",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "UPDATE_LATENCY_BUCKETS",
    "bind_device",
    "bind_engine",
    "bind_server",
    "Point",
    "Series",
    "TimeSeriesStore",
    "FleetScraper",
    "Anomaly",
    "DeviceSample",
    "HealthReport",
    "HealthThresholds",
    "analyze_wave",
    "robust_zscores",
    "score_device",
    "Action",
    "SLO",
    "SLOBreach",
    "WaveVerdict",
    "FleetTelemetry",
    "DEFAULT_SLOS",
    "percentile",
    "OPENMETRICS_CONTENT_TYPE",
    "to_openmetrics",
    "write_openmetrics",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "containment_errors",
    "merge_chrome_traces",
    "AsyncSpan",
    "AsyncTracer",
    "NULL_ASYNC_TRACER",
    "TRACEPARENT_HEADER",
    "format_traceparent",
    "new_trace_id",
    "parse_traceparent",
]
