"""Update-lifecycle tracing on the virtual clock.

The evaluation's phase breakdowns (Fig. 8a) aggregate virtual time by
label, which answers *how much* but not *when* or *inside what*.  A
:class:`Tracer` records **spans** — named intervals on the device's
virtual clock, nested by a context-manager stack — and **instants**
(zero-duration marks, e.g. lifecycle events), and exports both as
Chrome-trace JSON loadable by ``chrome://tracing`` or Perfetto.

Design constraints:

* **Zero perturbation when off.**  A disabled tracer's :meth:`span`
  returns a shared null context and :meth:`instant` returns
  immediately, so the fleet/bench hot paths (which never enable
  tracing) pay only an attribute check.  Enabling a tracer never
  advances the clock — tracing reads time, it does not spend it.
* **Virtual timestamps.**  Spans open and close at ``now_fn()``
  (normally ``device.clock.now``); the exported ``ts``/``dur`` are in
  microseconds of *virtual* time, so the trace shows the modeled
  timeline, not host scheduling noise.
* **Explicit parentage.**  Every exported span carries ``span_id`` and
  ``parent_id`` in its ``args``, so a consumer can verify parent/child
  containment without reconstructing Chrome's implicit stack rules
  (``tests/test_obs_cli.py`` does exactly that).

A tracer is single-threaded by design: span nesting is a stack.  The
fleet executors never enable per-device tracers, so the parallel path
is unaffected.  The serve plane's interleaved asyncio requests need
the :mod:`repro.obs.asynctrace` tracer instead, whose span context is
a :mod:`contextvars` variable rather than a stack.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_TRACER", "merge_chrome_traces",
           "containment_errors"]

#: Virtual seconds → Chrome-trace microseconds.
_US = 1_000_000.0


class Span:
    """One closed interval on the virtual timeline."""

    __slots__ = ("name", "category", "start", "end", "span_id",
                 "parent_id", "args")

    def __init__(self, name: str, category: str, start: float,
                 span_id: int, parent_id: Optional[int],
                 args: Dict[str, Any]) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.end = start
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Span(%r, %.6f..%.6f, id=%d, parent=%r)" % (
            self.name, self.start, self.end, self.span_id, self.parent_id)


class _NullContext:
    """Context manager returned by a disabled tracer — does nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Opens a span on entry, closes it on exit (even on exceptions)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            # Record why the span ended early; the exception propagates.
            self._span.args.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Records spans and instants against a virtual clock.

    ``now_fn`` supplies timestamps (normally ``lambda: clock.now``).
    Disabled by default: every :class:`~repro.sim.SimulatedDevice`
    carries a tracer, but only explicit consumers (``cli trace``, the
    observability tests) flip ``enabled``.
    """

    def __init__(self, now_fn: Optional[Callable[[], float]] = None,
                 enabled: bool = False) -> None:
        self.now_fn = now_fn or (lambda: 0.0)
        self.enabled = enabled
        self.spans: List[Span] = []
        self.instants: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def __getstate__(self) -> dict:
        # now_fn is normally a closure over a live clock — unpicklable.
        # The owner (SimulatedDevice) re-points it at its clock on
        # restore; a bare restored tracer timestamps from zero.
        state = self.__dict__.copy()
        state["now_fn"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.now_fn is None:
            self.now_fn = lambda: 0.0

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "update",
             **args: Any) -> "_SpanContext | _NullContext":
        """Open a nested span; close it by exiting the ``with`` block."""
        if not self.enabled:
            return _NULL_CONTEXT
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(name, category, self.now_fn(), self._next_id,
                    parent_id, args)
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = self.now_fn()
        # Tolerate out-of-order closes (an exception unwinding through
        # several contexts closes inner-first, which pops cleanly).
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self.spans.append(span)

    def instant(self, name: str, category: str = "mark",
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a zero-duration mark at the current virtual time."""
        if not self.enabled:
            return
        parent_id = self._stack[-1].span_id if self._stack else None
        self.instants.append({
            "name": name,
            "category": category,
            "t": self.now_fn(),
            "parent_id": parent_id,
            "args": dict(args) if args else {},
        })

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()
        self._next_id = 1

    # -- export -------------------------------------------------------------

    def to_chrome_trace(self, pid: int = 1,
                        process_name: Optional[str] = None,
                        tid: int = 1) -> Dict[str, Any]:
        """Chrome-trace document: complete (``X``) + instant (``i``) events."""
        events: List[Dict[str, Any]] = []
        if process_name:
            events.append({
                "ph": "M", "pid": pid, "tid": tid,
                "name": "process_name",
                "args": {"name": process_name},
            })
        for span in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            args = dict(span.args)
            args["span_id"] = span.span_id
            args["parent_id"] = span.parent_id
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start * _US, 3),
                "dur": round(span.duration * _US, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        for instant in self.instants:
            events.append({
                "name": instant["name"],
                "cat": instant["category"],
                "ph": "i",
                "s": "t",
                "ts": round(instant["t"] * _US, 3),
                "pid": pid,
                "tid": tid,
                "args": dict(instant["args"],
                             parent_id=instant["parent_id"]),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Shared disabled tracer for call sites whose device lacks one.
NULL_TRACER = Tracer(enabled=False)


def merge_chrome_traces(documents: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Concatenate several Chrome-trace documents into one."""
    events: List[Dict[str, Any]] = []
    for document in documents:
        events.extend(document.get("traceEvents", []))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def containment_errors(trace_events: List[Dict[str, Any]],
                       tolerance_us: float = 0.5) -> List[str]:
    """Check parent/child containment of exported ``X`` spans.

    Every span naming a ``parent_id`` must lie within its parent's
    ``[ts, ts + dur]`` window, up to rounding tolerance.  Parents are
    resolved per ``pid`` but across ``tid`` lanes: the async tracer
    exports one lane per request/task, and concurrent siblings in
    different lanes legitimately share a parent (span ids are unique
    per exporting process, i.e. per pid).  Cross-process parentage is
    carried as ``args.remote_parent_id`` and deliberately *not*
    checked here — merged documents join on ``trace_id`` instead.
    Returns human-readable violations; empty means the trace nests.
    """
    errors: List[str] = []
    spans: List[tuple] = []
    by_id: Dict[tuple, Dict[str, Any]] = {}
    for event in trace_events:
        if event.get("ph") != "X":
            continue
        span_id = event.get("args", {}).get("span_id")
        if span_id is None:
            errors.append("X event %r lacks args.span_id"
                          % event.get("name"))
            continue
        spans.append((event["pid"], span_id, event))
        by_id[(event["pid"], span_id)] = event
    for pid, span_id, event in spans:
        parent_id = event["args"].get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get((pid, parent_id))
        if parent is None:
            errors.append("span %r (id %d) names missing parent %d"
                          % (event["name"], span_id, parent_id))
            continue
        start, end = event["ts"], event["ts"] + event["dur"]
        pstart = parent["ts"] - tolerance_us
        pend = parent["ts"] + parent["dur"] + tolerance_us
        if start < pstart or end > pend:
            errors.append(
                "span %r [%s, %s] escapes parent %r [%s, %s]"
                % (event["name"], start, end, parent["name"],
                   parent["ts"], parent["ts"] + parent["dur"]))
    return errors
