"""repro: a reproduction of UpKit (ICDCS 2019).

UpKit is an open-source, portable, lightweight software-update
framework for constrained IoT devices (Langiu, Boano, Schuß, Römer).
This package reimplements the complete system in Python — update
generation and double signing, the device-side update agent FSM with
its on-the-fly pipeline, the bootloader, and every substrate (crypto,
LZSS, bsdiff, simulated flash, radio links, device simulation) — plus
the baselines (mcuboot, mcumgr, LwM2M) and the evaluation harness for
every table and figure in the paper.

Quickstart::

    from repro import Testbed

    testbed = Testbed.create(initial_firmware=b"v1" * 512)
    testbed.release(b"v2" * 600, version=2)
    outcome = testbed.push_update()
    assert outcome.success and outcome.booted_version == 2
"""

from .core import (
    Bootloader,
    DeviceProfile,
    DeviceToken,
    Manifest,
    PayloadKind,
    SignedManifest,
    TrustAnchors,
    UpdateAgent,
    UpdateError,
    UpdateImage,
    UpdateServer,
    VendorServer,
    VerificationError,
    Verifier,
    make_test_identities,
)
from .sim import SimulatedDevice, Testbed

__version__ = "1.0.0"

__all__ = [
    "Bootloader",
    "DeviceProfile",
    "DeviceToken",
    "Manifest",
    "PayloadKind",
    "SignedManifest",
    "SimulatedDevice",
    "Testbed",
    "TrustAnchors",
    "UpdateAgent",
    "UpdateError",
    "UpdateImage",
    "UpdateServer",
    "VendorServer",
    "VerificationError",
    "Verifier",
    "__version__",
    "make_test_identities",
]
