"""Power-loss recovery: the journaled install in action.

Stages an update on a static-slot device, then cuts power in the
middle of the bootloader's slot swap.  On the next boot, the journal
in the status region replays the interrupted step and the install
completes — the device is never left without a bootable image.

Run:  python examples/power_loss_recovery.py
"""

from __future__ import annotations

from repro.core import Bootloader, ENVELOPE_SIZE
from repro.memory import PowerLossError, ResumableSwap
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 32 * 1024


def main() -> None:
    generator = FirmwareGenerator(seed=b"power-loss-demo")
    firmware_v1 = generator.firmware(IMAGE_SIZE, image_id=1)
    firmware_v2 = generator.os_version_change(firmware_v1, revision=2)

    testbed = Testbed.create(slot_configuration="b", slot_size=64 * 1024,
                             initial_firmware=firmware_v1,
                             supports_differential=False)
    testbed.release(firmware_v2, 2)

    # Download and verify v2; stop before rebooting.
    outcome = testbed.push_update(reboot_on_success=False)
    assert outcome.success
    testbed.device.agent.acknowledge_reboot()
    print("v2 downloaded, verified, and staged; rebooting to install...")

    # Cut power in the middle of the bootloader's swap.
    device = testbed.device
    internal = device.layout.get("a").flash
    internal.inject_power_loss(after_operations=17)
    try:
        device.bootloader.boot()
        raise AssertionError("expected the injected power loss")
    except PowerLossError as exc:
        print("POWER LOST mid-install: %s" % exc)
    internal.clear_fault()

    status = device.layout.status_slot
    pending = ResumableSwap.pending(status)
    assert pending is not None
    done = sum(pending.progress)
    print("journal found on next boot: %d/%d swap steps completed"
          % (done, len(pending.progress)))

    # Power restored: a fresh bootloader replays the journal and boots.
    bootloader = Bootloader(device.profile, device.layout,
                            testbed.anchors, device.backend)
    result = bootloader.boot()
    print("resumed install; booted version %d from slot %r"
          % (result.version, result.slot.name))
    assert result.version == 2
    stored = result.slot.read(ENVELOPE_SIZE, len(firmware_v2))
    assert stored == firmware_v2
    print("bootable slot holds v2 byte-for-byte; the old image survives "
          "in the staging slot for rollback.")


if __name__ == "__main__":
    main()
