"""Differential-update campaign across a long version history.

A device ships with v1 and the vendor releases versions 2..6 over its
lifetime: alternating OS upgrades (large deltas) and small application
fixes (tiny deltas).  The script updates step by step and reports, per
hop, the payload that actually crossed the radio vs. the full-image
cost — the efficiency argument of Sect. IV-C / Fig. 8b.

Run:  python examples/differential_campaign.py
"""

from __future__ import annotations

from repro.footprint import format_table
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 64 * 1024


def main() -> None:
    generator = FirmwareGenerator(seed=b"campaign")
    firmware = generator.firmware(IMAGE_SIZE, image_id=1)
    testbed = Testbed.create(initial_firmware=firmware,
                             slot_size=128 * 1024)

    # Build a five-release history: OS change, app fix, OS change, ...
    history = {1: firmware}
    for version in range(2, 7):
        if version % 2 == 0:
            firmware = generator.os_version_change(firmware,
                                                   revision=version)
            kind = "OS upgrade"
        else:
            firmware = generator.app_functionality_change(
                firmware, changed_bytes=1000, revision=version)
            kind = "app fix"
        history[version] = (firmware, kind)

    rows = []
    total_delta_bytes = 0
    total_full_bytes = 0
    for version in range(2, 7):
        firmware, kind = history[version]
        testbed.release(firmware, version)
        testbed.reset_meters()
        outcome = testbed.push_update()
        assert outcome.success and outcome.booted_version == version
        saving = 1 - outcome.bytes_over_air / len(firmware)
        total_delta_bytes += outcome.bytes_over_air
        total_full_bytes += len(firmware)
        rows.append((
            "v%d -> v%d" % (version - 1, version), kind,
            len(firmware), outcome.bytes_over_air,
            "%.0f%%" % (100 * saving),
            "%.1f" % outcome.total_seconds,
        ))

    print("Differential campaign: five releases over one device "
          "lifetime\n")
    print(format_table(
        ("hop", "release kind", "image(B)", "over-air(B)", "saved",
         "time(s)"),
        rows,
    ))
    overall = 1 - total_delta_bytes / total_full_bytes
    print("\ncampaign total: %d bytes over the air instead of %d "
          "(%.0f%% saved)" % (total_delta_bytes, total_full_bytes,
                              100 * overall))
    print("small app fixes are nearly free; even OS upgrades ship as a "
          "fraction\nof the image — with no extra flash slot, thanks to "
          "the streaming pipeline.")


if __name__ == "__main__":
    main()
