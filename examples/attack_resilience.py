"""Attack resilience: UpKit vs. an mcumgr+mcuboot-style baseline.

Replays the threat model of Sect. II/III against both architectures:
manifest tampering, payload bit-flips, payload substitution,
truncation, and the replay of a validly-signed old image (the
freshness attack).  For each, the script reports where the attack was
stopped and what it cost the device.

Run:  python examples/attack_resilience.py
"""

from __future__ import annotations

from repro.baselines import McubootBootloader, McumgrAgent
from repro.core import DeviceToken, FeedStatus, UpdateError
from repro.footprint import format_table
from repro.net import (
    ManifestTamperer,
    PayloadBitFlipper,
    PayloadSwapAttacker,
    TruncatingProxy,
)
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 48 * 1024
DEVICE_ID = 0x11223344


def make_testbed(generator: FirmwareGenerator, baseline: bool,
                 release_v2: bool = True) -> Testbed:
    base = generator.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=base, slot_configuration="b",
                         slot_size=96 * 1024, supports_differential=False)
    if baseline:
        device = bed.device
        device.agent = McumgrAgent(device.profile, device.layout)
        device.bootloader = McubootBootloader(
            device.profile, device.layout, bed.anchors, device.backend)
    if release_v2:
        bed.release(generator.firmware(IMAGE_SIZE, image_id=2), 2)
    return bed


def in_transit_attacks(generator: FirmwareGenerator):
    rows = []
    attacks = (
        ("manifest tamper", ManifestTamperer()),
        ("payload bit-flips", PayloadBitFlipper(flips=64)),
        ("payload substitution", PayloadSwapAttacker()),
        ("truncation", TruncatingProxy(0.6)),
    )
    for arch_name, baseline in (("upkit", False), ("baseline", True)):
        for attack_name, attack in attacks:
            bed = make_testbed(generator, baseline)
            outcome = bed.push_update(interceptor=attack)
            compromised = outcome.success and outcome.booted_version == 2
            rows.append((
                arch_name, attack_name,
                "compromised!" if compromised else "defended",
                "yes" if outcome.rebooted else "no",
                outcome.bytes_over_air,
                "%.0f" % outcome.total_energy_mj,
            ))
    return rows


def replay_attack(generator: FirmwareGenerator):
    rows = []
    for arch_name, baseline in (("upkit", False), ("baseline", True)):
        bed = make_testbed(generator, baseline, release_v2=False)
        # The attacker captures the v1 image while v1 is still current.
        captured = bed.server.prepare_update(
            DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0))
        bed.release(
            FirmwareGenerator(seed=b"attack-resilience").firmware(
                IMAGE_SIZE, image_id=2), 2)
        assert bed.push_update().booted_version == 2

        agent = bed.device.agent
        agent.request_token()
        try:
            status = agent.feed(captured.pack())
        except UpdateError as exc:
            rows.append((arch_name, "replay of old image",
                         "defended (%s)" % type(exc).__name__, "no", 2))
            agent.cancel()
            continue
        if status is FeedStatus.FIRMWARE_COMPLETE:
            version = bed.device.reboot().version
            verdict = ("DOWNGRADED to v%d" % version if version == 1
                       else "defended at boot")
            rows.append((arch_name, "replay of old image", verdict,
                         "yes", version))
    return rows


def main() -> None:
    generator = FirmwareGenerator(seed=b"attack-resilience")

    print("In-transit attacks (tampered by a compromised proxy):\n")
    print(format_table(
        ("architecture", "attack", "verdict", "rebooted", "bytes-o-a",
         "energy(mJ)"),
        in_transit_attacks(generator),
    ))

    print("\nFreshness attack (replay of a validly-signed old image):\n")
    print(format_table(
        ("architecture", "attack", "verdict", "rebooted",
         "running version"),
        replay_attack(generator),
    ))
    print(
        "\nUpKit stops every attack in the update agent — before a "
        "reboot,\nand for manifest-level attacks before the download. "
        "The baseline\nwastes a download and a reboot on each tampered "
        "image, and installs\nthe replayed downgrade outright."
    )


if __name__ == "__main__":
    main()
