"""Heterogeneous fleet update: UpKit's portability in one campaign.

Updates a small fleet spanning all three evaluated hardware platforms
(nRF52840, CC2650, CC2538), all three OSes (Zephyr, RIOT, Contiki) and
all three crypto backends (TinyDTLS, tinycrypt, CryptoAuthLib/HSM),
mixing push and pull transports and A/B vs. static slot layouts — the
heterogeneity argument of Sect. I/V.

Run:  python examples/heterogeneous_fleet.py
"""

from __future__ import annotations

from repro.footprint import format_table
from repro.platform import CC2538, CC2650, CONTIKI, NRF52840, RIOT, ZEPHYR
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

FLEET = [
    # (name, board, os, crypto, slots, transport)
    ("sensor-01", NRF52840, ZEPHYR, "tinycrypt", "a", "push"),
    ("sensor-02", NRF52840, ZEPHYR, "tinydtls", "b", "pull"),
    ("actuator-01", CC2538, RIOT, "tinydtls", "a", "pull"),
    ("actuator-02", CC2538, RIOT, "tinycrypt", "b", "pull"),
    ("lock-01", CC2650, CONTIKI, "cryptoauthlib", "b", "pull"),
]

IMAGE_SIZE = 40 * 1024


def main() -> None:
    generator = FirmwareGenerator(seed=b"fleet")
    firmware_v1 = generator.firmware(IMAGE_SIZE, image_id=1)
    firmware_v2 = generator.os_version_change(firmware_v1, revision=2)

    rows = []
    for index, (name, board, os_profile, crypto, slots,
                transport) in enumerate(FLEET):
        bed = Testbed.create(
            board=board, os_profile=os_profile, crypto_library=crypto,
            slot_configuration=slots, slot_size=64 * 1024,
            initial_firmware=firmware_v1, device_id=0x1000 + index,
        )
        bed.release(firmware_v2, 2)
        outcome = (bed.push_update() if transport == "push"
                   else bed.pull_update())
        assert outcome.success, "%s failed: %s" % (name, outcome.error)
        rows.append((
            name, board.name, os_profile.name, crypto,
            "A/B" if slots == "a" else "static", transport,
            outcome.booted_version,
            "delta" if outcome.bytes_over_air < IMAGE_SIZE // 2 else "full",
            outcome.bytes_over_air,
            "%.1f" % outcome.total_seconds,
            "%.0f" % outcome.total_energy_mj,
        ))

    print("Fleet campaign: v1 -> v2 across every platform/OS/crypto "
          "combination\n")
    print(format_table(
        ("device", "board", "os", "crypto", "slots", "transport",
         "version", "payload", "bytes", "time(s)", "energy(mJ)"),
        rows,
    ))
    print("\nEvery device accepted the same vendor release: only the "
          "platform-\nspecific modules of Fig. 3 differ between ports.")


if __name__ == "__main__":
    main()
