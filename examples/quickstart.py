"""Quickstart: one secure over-the-air update, end to end.

Builds a vendor + update server, provisions one simulated nRF52840
running Zephyr, releases a new firmware version and pushes it to the
device over BLE through a smartphone proxy — the exact flow of Fig. 2.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.sim import Testbed
from repro.workload import FirmwareGenerator


def main() -> None:
    generator = FirmwareGenerator(seed=b"quickstart")
    firmware_v1 = generator.firmware(48 * 1024, image_id=1)

    # One call assembles vendor server, update server and a provisioned
    # device (A/B slots on the nRF52840's internal flash, tinycrypt).
    testbed = Testbed.create(initial_firmware=firmware_v1,
                             slot_size=128 * 1024)
    print("device provisioned, running version %d"
          % testbed.device.installed_version())

    # The vendor ships version 2; the update server signs per request.
    firmware_v2 = generator.os_version_change(firmware_v1, revision=2)
    testbed.release(firmware_v2, version=2)
    print("vendor released version 2 (%d bytes)" % len(firmware_v2))

    # Push the update over BLE.  Because the device advertised its
    # current version in the device token, the server sent a bsdiff
    # delta instead of the full image.
    outcome = testbed.push_update()
    assert outcome.success, outcome.error

    print("\nupdate complete:")
    print("  booted version   : %d" % outcome.booted_version)
    print("  bytes over air   : %d (full image: %d)"
          % (outcome.bytes_over_air, len(firmware_v2)))
    print("  total time       : %.1f s" % outcome.total_seconds)
    for phase in ("propagation", "verification", "loading"):
        print("  %-16s : %.2f s" % (phase, outcome.phases.get(phase, 0.0)))
    print("  energy           : %.1f mJ" % outcome.total_energy_mj)
    for component, energy in sorted(outcome.energy_mj.items()):
        print("    %-14s : %.1f mJ" % (component, energy))


if __name__ == "__main__":
    main()
