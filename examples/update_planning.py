"""Update planning: battery-lifetime impact of update strategies.

Feeds the simulator's measured per-update energy into a battery model
and compares strategies an operator could pick: full vs. differential
payloads, push vs. pull transports, monthly vs. weekly cadence — the
energy-budget motivation of the paper, expressed in years of battery.

Run:  python examples/update_planning.py
"""

from __future__ import annotations

from repro.analysis import BatteryModel, UpdatePlan, compare_plans, \
    lifetime_years, updates_per_percent
from repro.footprint import format_table
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 100 * 1024


def measure(name: str, differential: bool, transport: str,
            generator: FirmwareGenerator) -> UpdatePlan:
    base = generator.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=base, slot_size=256 * 1024,
                         supports_differential=differential)
    bed.release(generator.os_version_change(base, revision=2), 2)
    outcome = (bed.push_update() if transport == "push"
               else bed.pull_update())
    assert outcome.success
    return UpdatePlan(name, outcome.total_energy_mj, updates_per_year=12)


def main() -> None:
    generator = FirmwareGenerator(seed=b"planning")
    battery = BatteryModel(capacity_mah=1500)
    sleep_ua = 10.0  # duty-cycled sensing application

    plans = [
        measure("monthly delta, push", True, "push", generator),
        measure("monthly delta, pull", True, "pull", generator),
        measure("monthly full, push", False, "push", generator),
        measure("monthly full, pull", False, "pull", generator),
    ]
    # A weekly cadence variant of the best and worst options.
    plans.append(UpdatePlan("weekly delta, push",
                            plans[0].energy_per_update_mj, 52))
    plans.append(UpdatePlan("weekly full, pull",
                            plans[3].energy_per_update_mj, 52))

    rows = []
    for entry in compare_plans(battery, sleep_ua, plans):
        rows.append((
            entry["name"],
            "%.0f" % entry["energy_per_update_mj"],
            "%.0f" % entry["updates_per_year"],
            "%.2f" % entry["lifetime_years"],
            "%.2f" % entry["lifetime_cost_years"],
            "%.1f%%" % (100 * entry["battery_fraction_for_updates"]),
        ))

    baseline = lifetime_years(battery, sleep_ua)
    print("Battery: 1500 mAh @ 3 V; application sleep floor 10 uA")
    print("Lifetime with no updates at all: %.2f years\n" % baseline)
    print(format_table(
        ("strategy", "mJ/update", "updates/yr", "lifetime(yr)",
         "cost(yr)", "battery for updates"),
        rows,
    ))
    best = compare_plans(battery, sleep_ua, plans)[0]
    print("\n1%% of this battery pays for %.0f updates of the best "
          "strategy." % updates_per_percent(
              battery, best["energy_per_update_mj"]))
    print("Differential updates keep even a weekly cadence close to the "
          "no-update\nlifetime; full-image pulls dominate the budget.")


if __name__ == "__main__":
    main()
