"""Host-side tooling: keygen → release → prepare → verify, on files.

Uses the ``upkit`` CLI (``repro.tools``) exactly as a vendor's release
pipeline would: generate the two key pairs, sign a firmware release,
bind it to a device token with the update server key, verify the
double signature — then install it into a *file-backed* slot, the
paper's "assign a Linux file to each slot ... test the modules without
the need of a simulator" (Sect. V).

Run:  python examples/host_tooling.py
"""

from __future__ import annotations

import os
import tempfile

from repro.core import ENVELOPE_SIZE, UpdateImage
from repro.memory import FileSlot, OpenMode
from repro.tools import main as upkit
from repro.workload import FirmwareGenerator


def main() -> None:
    generator = FirmwareGenerator(seed=b"host-tooling")
    firmware = generator.firmware(24 * 1024, image_id=1)

    with tempfile.TemporaryDirectory(prefix="upkit-demo-") as workdir:
        keys = os.path.join(workdir, "keys")
        fw_path = os.path.join(workdir, "firmware-v1.bin")
        release_path = os.path.join(workdir, "release-v1.bin")
        image_path = os.path.join(workdir, "device-image.bin")
        slot_path = os.path.join(workdir, "slot-a.bin")

        with open(fw_path, "wb") as fh:
            fh.write(firmware)

        print("== 1. key generation (vendor + update server)")
        upkit(["keygen", "--out", keys])

        print("\n== 2. vendor release (first signature)")
        upkit(["release", "--firmware", fw_path, "--version", "1",
               "--app-id", "0x55504B49", "--link-offset", "0x8000",
               "--vendor-key", os.path.join(keys, "vendor.key"),
               "--out", release_path])

        print("\n== 3. update server binds the device token "
              "(second signature)")
        upkit(["prepare", "--release", release_path,
               "--server-key", os.path.join(keys, "server.key"),
               "--device-id", "0x11223344", "--nonce", "0xCAFEBABE",
               "--out", image_path])

        print("\n== 4. verification (both signatures)")
        code = upkit(["verify", "--image", image_path,
                      "--vendor-pub", os.path.join(keys, "vendor.pub"),
                      "--server-pub", os.path.join(keys, "server.pub")])
        assert code == 0

        print("\n== 5. manifest contents")
        upkit(["inspect", "--image", image_path])

        print("\n== 6. install into a file-backed slot (host testing)")
        with open(image_path, "rb") as fh:
            image = UpdateImage.unpack(fh.read())
        slot = FileSlot(slot_path, size=64 * 1024, bootable=True)
        handle = slot.open(OpenMode.WRITE_ALL)
        handle.write(image.envelope.pack())
        handle.write(image.payload)
        handle.close()
        stored = slot.read(ENVELOPE_SIZE, len(firmware))
        assert stored == firmware
        print("slot file %s holds the verified image (%d bytes)"
              % (os.path.basename(slot_path),
                 ENVELOPE_SIZE + len(firmware)))


if __name__ == "__main__":
    main()
