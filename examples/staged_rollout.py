"""Staged rollout: canary waves protecting a fleet from a bad campaign.

Two campaigns over a 12-device fleet:

1. a *healthy* release — the canary wave succeeds and the rollout
   proceeds to everyone;
2. a campaign whose delivery path is compromised (a tampering proxy in
   front of every device) — the canaries detect it (UpKit's early
   verification), the failure rate trips the abort policy, and the
   remaining ten devices are never touched.

Run:  python examples/staged_rollout.py
"""

from __future__ import annotations

import json

from repro.core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.fleet import Campaign, DeviceRecord, RolloutPolicy
from repro.memory import MemoryLayout
from repro.net import ManifestTamperer
from repro.platform import NRF52840, ZEPHYR
from repro.sim import SimulatedDevice
from repro.workload import FirmwareGenerator

APP_ID = 0x55504B49
FLEET_SIZE = 12
IMAGE_SIZE = 24 * 1024


def build_fleet(server, anchors, tampered: bool):
    fleet = []
    for index in range(FLEET_SIZE):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x3000 + index, app_id=APP_ID,
                                link_offset=0x8000)
        device = SimulatedDevice(board=NRF52840, os_profile=ZEPHYR,
                                 layout=layout, profile=profile,
                                 anchors=anchors)
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="node-%02d" % index, device=device,
            transport="pull" if index % 3 else "push",
            interceptor=ManifestTamperer() if tampered else None,
        ))
    return fleet


def run_campaign(title: str, tampered: bool) -> None:
    generator = FirmwareGenerator(seed=b"rollout")
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID, link_offset=0x8000)
    server = UpdateServer(server_id)
    base = generator.firmware(IMAGE_SIZE, image_id=1)
    server.publish(vendor.release(base, 1))

    fleet = build_fleet(server, anchors, tampered)
    server.publish(vendor.release(
        generator.os_version_change(base, revision=2), 2))

    policy = RolloutPolicy(canary_fraction=0.17,  # 2 canaries of 12
                           abort_failure_rate=0.5, max_attempts=1)
    report = Campaign(server, fleet, policy).run()

    print("== %s" % title)
    print(json.dumps(report.to_dict(), indent=2))
    versions = sorted(record.device.installed_version()
                      for record in fleet)
    print("fleet versions after campaign: %s\n" % versions)


def main() -> None:
    run_campaign("healthy release: canaries pass, everyone updates",
                 tampered=False)
    run_campaign("compromised delivery: canaries abort the rollout",
                 tampered=True)
    print("The aborted campaign cost two failed canaries a few hundred "
          "bytes\nof radio each; ten devices never saw the bad bytes at "
          "all.")


if __name__ == "__main__":
    main()
