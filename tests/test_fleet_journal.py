"""Campaign WAL: framing, torn tails, coordinator kills, exact resume.

The durability contract under test: after a coordinator crash at ANY
durable append boundary, ``Campaign.resume`` replays the journal and
finishes with a report byte-identical to the uninterrupted twin —
zero devices re-flashed, zero tokens double-issued.  All probes here
are passive counters (server request stats, flash write stats); the
tests never touch device flash themselves.
"""

import json

import pytest

from repro.fleet import (
    Campaign,
    CampaignJournal,
    CoordinatorKilled,
    JOURNAL_KINDS,
)
from repro.tools import chaos
from repro.tools.chaos import CorrelatedLab, _fleet_flash_writes

DEVICES = 6


# -- framing ------------------------------------------------------------------


def test_append_entries_roundtrip_and_kind_gate():
    journal = CampaignJournal()
    journal.append("campaign-start", target=2, fleet=3)
    journal.append("wave-plan", wave=0, names=["a", "b"])
    entries = journal.entries()
    assert [e["kind"] for e in entries] == ["campaign-start", "wave-plan"]
    assert entries[0]["target"] == 2
    with pytest.raises(ValueError):
        journal.append("not-a-kind")
    stats = journal.stats()
    assert stats["appends"] == stats["valid"] == 2
    assert stats["torn_skipped"] == 0
    assert stats["kinds"] == {"campaign-start": 1, "wave-plan": 1}
    assert set(JOURNAL_KINDS) >= set(stats["kinds"])


@pytest.mark.parametrize("mutation", ["truncate", "flip"])
def test_corrupt_lines_are_skipped_never_misread(mutation):
    journal = CampaignJournal()
    for wave in range(4):
        journal.append("wave-plan", wave=wave, names=[])
    journal.corrupt_line(2, mutation)
    entries = journal.entries()
    assert [e["wave"] for e in entries] == [0, 1, 3]
    assert journal.stats()["torn_skipped"] == 1


def test_file_backed_journal_reopens_after_valid_prefix(tmp_path):
    path = str(tmp_path / "campaign.journal")
    first = CampaignJournal(path)
    first.append("campaign-start", target=2, fleet=1)
    first.append("wave-plan", wave=0, names=["x"])
    first.close()
    # Simulate a power cut tearing the tail on disk.
    with open(path, "r+", encoding="utf-8") as fh:
        raw = fh.read()
        fh.seek(0)
        fh.truncate()
        fh.write(raw[:-7])
    second = CampaignJournal(path)
    assert [e["kind"] for e in second.entries()] == ["campaign-start"]
    second.append("wave-plan", wave=0, names=["x"])
    assert second.stats()["valid"] == 2


def test_arm_kill_fires_after_the_nth_durable_append():
    journal = CampaignJournal()
    journal.append("campaign-start", target=2, fleet=1)
    journal.arm_kill(2)
    journal.append("wave-plan", wave=0, names=["a"])
    with pytest.raises(CoordinatorKilled) as exc:
        journal.append("device-outcome", name="a", wave=0)
    assert exc.value.append_index == 2
    # The armed append itself landed durably before the death.
    assert journal.entries()[-1]["kind"] == "device-outcome"
    with pytest.raises(ValueError):
        journal.arm_kill(0)


# -- campaign kill + exact resume ---------------------------------------------


@pytest.fixture(scope="module")
def lab():
    return CorrelatedLab(devices=DEVICES, image_size=4096, seed=0)


@pytest.fixture(scope="module")
def twin(lab):
    """The uninterrupted journaled reference run."""
    server, fleet, _ = lab.build_fleet(attacker=True)
    journal = CampaignJournal()
    report = Campaign(server, fleet, chaos._correlated_policy(),
                      retry=chaos._correlated_retry(),
                      journal=journal).run()
    return {
        "json": json.dumps(report.to_dict(), sort_keys=True),
        "requests": server.stats.requests,
        "writes": _fleet_flash_writes(fleet),
        "appends": journal.stats()["appends"],
    }


def _kill_and_resume(lab, kill_at):
    server, fleet, _ = lab.build_fleet(attacker=True)
    journal = CampaignJournal()
    journal.arm_kill(kill_at)
    campaign = Campaign(server, fleet, chaos._correlated_policy(),
                        retry=chaos._correlated_retry(), journal=journal)
    with pytest.raises(CoordinatorKilled):
        campaign.run()
    resumed = Campaign.resume(server, fleet, journal,
                              policy=chaos._correlated_policy(),
                              retry=chaos._correlated_retry())
    return resumed.run(), server, fleet, journal


@pytest.mark.parametrize("kill_at", [1, 2, 5])
def test_resume_is_byte_identical_with_no_reflash_no_double_token(
        lab, twin, kill_at):
    report, server, fleet, journal = _kill_and_resume(lab, kill_at)
    assert json.dumps(report.to_dict(), sort_keys=True) == twin["json"]
    # Zero double-issued tokens: the server saw exactly as many
    # prepare_update calls as the uninterrupted twin.
    assert server.stats.requests == twin["requests"]
    # Zero re-flashes: fleet-wide flash write calls match exactly.
    assert _fleet_flash_writes(fleet) == twin["writes"]
    # The journal converges to the twin's full record stream.
    assert journal.stats()["appends"] == twin["appends"]


def test_resume_at_the_last_append_verifies_the_end_seal(lab, twin):
    # Killing on the campaign-end append means everything already
    # happened; resume must replay and *verify* the seal, not re-run.
    report, server, fleet, journal = _kill_and_resume(
        lab, twin["appends"])
    assert json.dumps(report.to_dict(), sort_keys=True) == twin["json"]
    assert server.stats.requests == twin["requests"]


def test_resume_after_torn_tail_still_completes(lab):
    server, fleet, _ = lab.build_fleet(attacker=True)
    journal = CampaignJournal()
    journal.arm_kill(5)
    campaign = Campaign(server, fleet, chaos._correlated_policy(),
                        retry=chaos._correlated_retry(), journal=journal)
    with pytest.raises(CoordinatorKilled):
        campaign.run()
    # The crash also tore the last line mid-write: its append never
    # becomes visible, so the journal degrades by one record.
    journal.corrupt_line(journal.line_count - 1, "truncate")
    report = Campaign.resume(server, fleet, journal,
                             policy=chaos._correlated_policy(),
                             retry=chaos._correlated_retry()).run()
    assert journal.stats()["torn_skipped"] == 1
    accounted = (len(report.updated) + len(report.failed)
                 + len(report.quarantined) + len(report.skipped)
                 + len(report.pending))
    assert accounted == DEVICES


def test_resume_rejects_journal_for_a_different_target(lab):
    server, fleet, _ = lab.build_fleet(attacker=True)
    journal = CampaignJournal()
    journal.append("campaign-start", target=99, fleet=DEVICES)
    campaign = Campaign.resume(server, fleet, journal,
                               policy=chaos._correlated_policy(),
                               retry=chaos._correlated_retry())
    with pytest.raises(ValueError):
        campaign.run()
