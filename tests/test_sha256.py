"""SHA-256 implementation tests (oracle: hashlib)."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import SHA256, sha256


KNOWN_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS,
                         ids=["empty", "abc", "nist-448bit", "million-a"])
def test_fips_vectors(message, expected):
    assert sha256(message).hex() == expected


@pytest.mark.parametrize("length", [0, 1, 54, 55, 56, 57, 63, 64, 65, 127,
                                    128, 1000])
def test_padding_boundaries_match_hashlib(length):
    data = bytes(range(256)) * (length // 256 + 1)
    data = data[:length]
    assert sha256(data) == hashlib.sha256(data).digest()


def test_incremental_equals_one_shot():
    hasher = SHA256()
    hasher.update(b"hello ").update(b"world")
    assert hasher.digest() == sha256(b"hello world")


def test_digest_is_idempotent():
    hasher = SHA256(b"data")
    first = hasher.digest()
    assert hasher.digest() == first
    hasher.update(b"more")
    assert hasher.digest() != first
    assert hasher.digest() == sha256(b"datamore")


def test_copy_forks_state():
    base = SHA256(b"prefix")
    fork = base.copy()
    base.update(b"-a")
    fork.update(b"-b")
    assert base.digest() == sha256(b"prefix-a")
    assert fork.digest() == sha256(b"prefix-b")


def test_hexdigest():
    assert SHA256(b"abc").hexdigest() == KNOWN_VECTORS[1][1]


def test_update_rejects_str():
    with pytest.raises(TypeError):
        SHA256().update("not bytes")  # type: ignore[arg-type]


def test_digest_size_attributes():
    assert SHA256.digest_size == 32
    assert SHA256.block_size == 64
    assert len(sha256(b"x")) == 32


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=4096))
def test_matches_hashlib(data):
    assert sha256(data) == hashlib.sha256(data).digest()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(max_size=300), max_size=10))
def test_chunked_update_matches_concatenation(chunks):
    hasher = SHA256()
    for chunk in chunks:
        hasher.update(chunk)
    assert hasher.digest() == sha256(b"".join(chunks))
