"""End-to-end `cli trace` / `cli report` tests (the acceptance gate)."""

import json

import pytest

from repro.tools import report
from repro.tools.cli import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """Run ``cli trace`` once (both slot configs) for the whole module."""
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    rc = main(["trace", "--image-size", "8192", "--out", str(path)])
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def trace_doc(trace_path):
    with open(trace_path) as fh:
        return json.load(fh)


def test_trace_covers_both_slot_configurations(trace_doc):
    labels = [record["label"]
              for record in trace_doc["configurations"]]
    assert labels == ["config-a/push", "config-b/push"]
    for record in trace_doc["configurations"]:
        assert record["booted_version"] == 2
        assert record["spans"] > 0
    pids = {event["pid"] for event in trace_doc["traceEvents"]}
    assert pids == {1, 2}


def test_trace_spans_nest_correctly(trace_doc):
    """Acceptance: load the exported JSON and check parent/child
    containment explicitly (independent of the library's checker)."""
    spans = {}
    for event in trace_doc["traceEvents"]:
        if event["ph"] != "X":
            continue
        key = (event["pid"], event["tid"], event["args"]["span_id"])
        spans[key] = event
    assert spans, "trace exported no complete spans"
    checked = 0
    for (pid, tid, _), event in spans.items():
        parent_id = event["args"]["parent_id"]
        if parent_id is None:
            continue
        parent = spans[(pid, tid, parent_id)]  # KeyError = broken trace
        assert parent["ts"] - 0.5 <= event["ts"]
        assert (event["ts"] + event["dur"]
                <= parent["ts"] + parent["dur"] + 0.5), \
            "span %r escapes parent %r" % (event["name"], parent["name"])
        checked += 1
    assert checked > 100  # per-block + pipeline spans, not a toy trace


def test_trace_covers_the_update_lifecycle(trace_doc):
    names = {event["name"] for event in trace_doc["traceEvents"]
             if event["ph"] == "X"}
    expected = {"generation", "token_exchange", "transfer.payload",
                "block", "buffer", "flash.write", "verify.manifest",
                "verify.firmware", "loading", "bootloader", "update"}
    assert expected <= names
    instants = {event["name"] for event in trace_doc["traceEvents"]
                if event["ph"] == "i"}
    assert {"token_issued", "firmware_verified", "boot_selected"} \
        <= instants


def test_trace_artifact_carries_metrics(trace_doc):
    assert trace_doc["report_kind"] == "trace"
    assert trace_doc["schema_version"] == report.SCHEMA_VERSIONS["trace"]
    for label, snapshot in trace_doc["metrics"].items():
        assert snapshot["net.bytes_over_air"] > 0, label
        assert snapshot["update.latency_seconds"]["count"] == 1


def test_cli_report_validates_the_trace(trace_path, capsys):
    assert main(["report", "--validate", str(trace_path)]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_report_flags_drift(tmp_path, trace_doc, capsys):
    broken = dict(trace_doc)
    del broken["metrics"]
    path = tmp_path / "broken.json"
    path.write_text(json.dumps(broken))
    assert main(["report", "--validate", str(path)]) == 1
    assert "DRIFT" in capsys.readouterr().out


def test_cli_report_flags_unrecognised_files(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"hello": 1}')
    assert main(["report", str(path)]) == 1


def test_write_report_round_trips_every_kind(tmp_path):
    for kind in report.SCHEMA_VERSIONS:
        path = tmp_path / ("%s.json" % kind)
        report.write_report({"payload": kind}, str(path), kind)
        loaded_kind, version, data = report.load_report(str(path))
        assert loaded_kind == kind
        assert version == report.SCHEMA_VERSIONS[kind]
        assert data["payload"] == kind


def test_load_report_detects_legacy_bench(tmp_path):
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps({"schema": 1, "campaign": {},
                                "sha256": {}}))
    kind, version, _ = report.load_report(str(path))
    assert (kind, version) == ("bench", 1)


def test_load_report_detects_legacy_chaos(tmp_path):
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps({"calibration": {}, "results": []}))
    kind, version, _ = report.load_report(str(path))
    assert (kind, version) == ("chaos", 1)


def test_write_report_rejects_unknown_kind(tmp_path):
    with pytest.raises(report.ReportError):
        report.write_report({}, str(tmp_path / "x.json"), "nonsense")


def test_validate_rejects_future_schema():
    errors = report.validate_data("bench", 99, {})
    assert errors and "newer" in errors[0]


def test_validate_bench_v4_requires_fleet_scale():
    errors = report.validate_data("bench", 4, {"campaign": {}})
    assert "bench report missing key 'fleet_scale'" in errors


def test_validate_bench_v4_checks_fleet_scale_shape():
    data = {
        "sha256": {}, "ecdsa_verify": {}, "delta_generation": {},
        "campaign": {"reports_identical": True},
        "crypto_stats": {}, "server_stats": {}, "metrics": {},
        "campaign_io": {"reports_identical": True}, "calibration": {},
        "fleet_scale": {"devices": 10_000, "devices_per_s": 5000.0,
                        "sampled_parity": False},
    }
    errors = report.validate_data("bench", 4, data)
    assert "bench fleet_scale missing key 'peak_rss_kb'" in errors
    assert ("bench fleet_scale missing key "
            "'columnar_bytes_per_row'") in errors
    assert any("diverged from the hydrated path" in e for e in errors)

    data["fleet_scale"].update(peak_rss_kb=250_000,
                               columnar_bytes_per_row=86,
                               pickle_bytes_per_record=33_538,
                               sampled_parity=True)
    assert report.validate_data("bench", 4, data) == []


@pytest.mark.trace
def test_trace_pull_transport_nests_too(tmp_path):
    """Heavier opt-in run: the pull transport on a larger image."""
    path = tmp_path / "trace-pull.json"
    rc = main(["trace", "--slots", "b", "--transport", "pull",
               "--image-size", str(32 * 1024), "--out", str(path)])
    assert rc == 0
    assert main(["report", "--validate", str(path)]) == 0
