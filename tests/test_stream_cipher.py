"""Stream-cipher (pipeline decryption stage) tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import StreamCipher

KEY = b"0123456789abcdef0123456789abcdef"
NONCE = b"nonce-16-bytes!!"


def make_cipher():
    return StreamCipher(KEY, NONCE)


def test_encrypt_decrypt_roundtrip():
    plaintext = b"the firmware payload" * 50
    ciphertext = make_cipher().process(plaintext)
    assert ciphertext != plaintext
    assert make_cipher().process(ciphertext) == plaintext


def test_chunked_processing_matches_one_shot():
    data = bytes(range(256)) * 10
    whole = make_cipher().process(data)
    cipher = make_cipher()
    pieces = b"".join(cipher.process(data[i:i + 37])
                      for i in range(0, len(data), 37))
    assert pieces == whole


def test_reset_rewinds_keystream():
    cipher = make_cipher()
    first = cipher.process(b"hello")
    cipher.reset()
    assert cipher.process(b"hello") == first


def test_different_nonce_different_keystream():
    a = StreamCipher(KEY, b"A" * 16).process(b"\x00" * 64)
    b = StreamCipher(KEY, b"B" * 16).process(b"\x00" * 64)
    assert a != b


def test_different_key_different_keystream():
    a = StreamCipher(b"k" * 16, NONCE).process(b"\x00" * 64)
    b = StreamCipher(b"K" * 16, NONCE).process(b"\x00" * 64)
    assert a != b


def test_seek_block():
    cipher = make_cipher()
    keystream = cipher.process(b"\x00" * 96)  # 3 blocks of 32
    cipher.seek_block(2)
    assert cipher.process(b"\x00" * 32) == keystream[64:96]


def test_seek_negative_raises():
    with pytest.raises(ValueError):
        make_cipher().seek_block(-1)


def test_short_key_rejected():
    with pytest.raises(ValueError):
        StreamCipher(b"short", NONCE)


def test_wrong_nonce_length_rejected():
    with pytest.raises(ValueError):
        StreamCipher(KEY, b"short")


def test_empty_input():
    assert make_cipher().process(b"") == b""


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=2000))
def test_roundtrip_property(data):
    assert make_cipher().process(make_cipher().process(data)) == data
