"""Resumable-transfer tests: backoff, re-request, abandonment, events.

The key property separating resume from restart: after a link outage
the transport re-requests from the last verified offset — the agent FSM
is *not* reset, so exactly one token is issued and no already-fed byte
is re-sent.
"""

from __future__ import annotations

import pytest

from repro.core import EventKind, TransferAbandoned
from repro.net import (
    Link,
    Outage,
    PullTransport,
    PushTransport,
    TransportRetryPolicy,
)
from repro.net.link import BLE_GATT, COAP_6LOWPAN
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 8 * 1024


def make_bed():
    gen = FirmwareGenerator(seed=b"resume")
    base = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=base,
                         supports_differential=False)
    bed.release(gen.os_version_change(base, revision=2), 2)
    return bed


def outage_link(*outages, profile=BLE_GATT):
    return Link(profile, outages=outages)


def test_outage_without_retry_abandons_with_events():
    bed = make_bed()
    link = outage_link(Outage(at_byte=2048, failures=1))
    transport = PushTransport(bed.device, bed.server, link=link)
    outcome = transport.run_update()
    assert not outcome.success
    assert isinstance(outcome.error, TransferAbandoned)

    agent = bed.device.agent
    assert agent.stats.transfers_interrupted == 1
    assert agent.stats.updates_abandoned == 1
    assert agent.stats.transfers_resumed == 0
    kinds = agent.events.kinds()
    assert EventKind.TRANSFER_INTERRUPTED in kinds
    assert EventKind.UPDATE_ABANDONED in kinds
    interrupted = agent.events.of_kind(EventKind.TRANSFER_INTERRUPTED)[0]
    assert interrupted.detail["reason"] == "link_down"
    # at_byte includes token-exchange traffic and lands on a chunk
    # boundary, so it is at (or just past) the scheduled outage byte.
    assert interrupted.detail["at_byte"] >= 2048
    # The device keeps running the old firmware.
    assert bed.device.reboot().version == 1


def test_outage_with_retry_resumes_without_fsm_reset():
    bed = make_bed()
    link = outage_link(Outage(at_byte=2048, failures=2))
    transport = PushTransport(
        bed.device, bed.server, link=link,
        retry=TransportRetryPolicy(max_attempts=4, backoff_initial=1.0))
    outcome = transport.run_update()
    assert outcome.success
    assert outcome.booted_version == 2
    assert outcome.interruptions == 2

    agent = bed.device.agent
    # ONE token for the whole update: resume re-requests bytes, it does
    # not restart the FSM (a restart would issue a fresh token).
    assert agent.stats.tokens_issued == 1
    assert agent.stats.transfers_interrupted == 2
    assert agent.stats.transfers_resumed == 2
    assert agent.stats.updates_abandoned == 0
    resumed = agent.events.of_kind(EventKind.TRANSFER_RESUMED)
    assert len(resumed) == 2
    assert all(event.detail["backoff_seconds"] > 0 for event in resumed)
    # The wait was metered as virtual backoff time, not radio time.
    assert bed.device.clock.elapsed_by_label().get("backoff", 0.0) > 0


def test_resume_does_not_resend_verified_bytes():
    bed = make_bed()
    link = outage_link(Outage(at_byte=4096, failures=1))
    transport = PushTransport(
        bed.device, bed.server, link=link,
        retry=TransportRetryPolicy(max_attempts=2))
    outcome = transport.run_update()
    assert outcome.success
    # Clean transfer cost on an identical testbed, for comparison.
    clean_bed = make_bed()
    clean = PushTransport(clean_bed.device, clean_bed.server,
                          link=Link(BLE_GATT)).run_update()
    # Resume re-requests at most one chunk; it never replays the stream.
    assert outcome.bytes_over_air <= clean.bytes_over_air \
        + link.profile.mtu


def test_retry_budget_exhaustion_abandons():
    bed = make_bed()
    link = outage_link(Outage(at_byte=1024, failures=5))
    transport = PushTransport(
        bed.device, bed.server, link=link,
        retry=TransportRetryPolicy(max_attempts=3))
    outcome = transport.run_update()
    assert not outcome.success
    assert isinstance(outcome.error, TransferAbandoned)
    assert bed.device.agent.stats.updates_abandoned == 1
    # Two resumes happened before the third interruption gave up.
    assert bed.device.agent.stats.transfers_resumed == 2


def test_multiple_outages_pull_transport():
    bed = make_bed()
    link = Link(COAP_6LOWPAN, outages=(Outage(at_byte=1024),
                                       Outage(at_byte=6000)))
    transport = PullTransport(
        bed.device, bed.server, link=link,
        retry=TransportRetryPolicy(max_attempts=6))
    outcome = transport.run_update()
    assert outcome.success
    assert outcome.booted_version == 2
    assert outcome.interruptions == 2
    assert bed.device.agent.stats.tokens_issued == 1


def test_server_outage_retries_whole_attempt_with_fresh_token():
    bed = make_bed()
    state = {"calls": 0}
    original = bed.server.prepare_update

    def flaky_prepare(token):
        state["calls"] += 1
        if state["calls"] == 1:
            from repro.core import ServerUnavailable
            raise ServerUnavailable("maintenance window")
        return original(token)

    bed.server.prepare_update = flaky_prepare
    transport = PushTransport(
        bed.device, bed.server, link=Link(BLE_GATT),
        retry=TransportRetryPolicy(max_attempts=3))
    outcome = transport.run_update()
    assert outcome.success
    assert outcome.interruptions == 1
    # Unlike a link outage, a server outage consumes the token: the
    # retry is a fresh attempt with a fresh token.
    assert bed.device.agent.stats.tokens_issued == 2
    interrupted = bed.device.agent.events.of_kind(
        EventKind.TRANSFER_INTERRUPTED)
    assert interrupted[0].detail["reason"] == "server_unavailable"


def test_resume_timeline_is_deterministic():
    def run():
        bed = make_bed()
        link = outage_link(Outage(at_byte=3000, failures=2))
        transport = PushTransport(
            bed.device, bed.server, link=link,
            retry=TransportRetryPolicy(max_attempts=4, jitter=0.3,
                                       seed=7))
        outcome = transport.run_update()
        return (outcome.success, outcome.total_seconds,
                outcome.bytes_over_air,
                bed.device.clock.elapsed_by_label().get("backoff", 0.0))

    assert run() == run()


def test_backoff_delays_grow_exponentially():
    import random

    policy = TransportRetryPolicy(max_attempts=8, backoff_initial=1.0,
                                  backoff_factor=2.0, backoff_max=5.0,
                                  jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay(index, rng) for index in range(1, 6)]
    assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]  # capped at backoff_max
