"""Correlated fault domains: membership, determinism, serialization.

The property under test everywhere: correlation means every member of
one domain sees the *same* fault coordinates, and the whole structure
replays bit-identically from ``(plan, seed)``.
"""

import pytest

from repro.faults import (
    CORRELATED_KINDS,
    DomainEvent,
    DomainPlan,
    FaultDomain,
    FaultKind,
    derive_seed,
)
from repro.net import BLE_GATT, COAP_6LOWPAN


def make_plan(seed=7, assignment="block", sweep=0.0):
    domains = [FaultDomain("eu-west", kind="region"),
               FaultDomain("us-east", kind="region"),
               FaultDomain("ap-south", kind="region")]
    events = [DomainEvent(FaultKind.LINK_STORM, at=10.0, duration=30.0,
                          severity=3, sweep=sweep),
              DomainEvent(FaultKind.LOSS_FRONT, at=50.0, duration=20.0,
                          severity=2, sweep=sweep)]
    return DomainPlan(domains, events, seed=seed, assignment=assignment)


# -- derive_seed --------------------------------------------------------------


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a", 2) != derive_seed(1, "b", 2)
    assert derive_seed(1, "a", 2) != derive_seed(2, "a", 2)
    assert 0 <= derive_seed(0xFFFFFFFF, "x") <= 0xFFFFFFFF


# -- membership ---------------------------------------------------------------


def test_block_assignment_gives_contiguous_equal_slices():
    plan = make_plan(assignment="block")
    members = plan.members(9)
    assert members == {"eu-west": [0, 1, 2], "us-east": [3, 4, 5],
                       "ap-south": [6, 7, 8]}


def test_hash_assignment_scatters_but_replays():
    plan = make_plan(assignment="hash")
    members = plan.members(64)
    # Every domain gets someone, and the mapping replays exactly.
    assert all(members[d.name] for d in plan.domains)
    assert plan.members(64) == members
    # Different seed, different scatter.
    other = DomainPlan(list(plan.domains), list(plan.events),
                       seed=plan.seed + 1, assignment="hash")
    assert other.members(64) != members


def test_domain_of_rejects_out_of_range_index():
    plan = make_plan()
    with pytest.raises(ValueError):
        plan.domain_of(5, 5)
    with pytest.raises(KeyError):
        plan.position_of("no-such-domain")


# -- event windows and sweep --------------------------------------------------


def test_sweep_staggers_windows_per_domain_position():
    event = DomainEvent(FaultKind.LINK_STORM, at=100.0, duration=60.0,
                        sweep=30.0)
    assert event.window(0) == (100.0, 160.0)
    assert event.window(2) == (160.0, 220.0)
    # The front has not reached position 2 at t=120 but has hit 0.
    assert event.active_at(0, 120.0)
    assert not event.active_at(2, 120.0)
    # t=None ignores the clock entirely (whole-campaign events).
    assert event.active_at(2, None)


def test_fault_plan_filters_by_admit_time():
    plan = make_plan()
    # At t=15 only the storm window is open; at t=55 only the front.
    storm_only = plan.fault_plan_for(0, 4096, at_time=15.0)
    front_only = plan.fault_plan_for(0, 4096, at_time=55.0)
    assert [p.kind for p in storm_only.points] == [FaultKind.LINK_STORM]
    assert [p.kind for p in front_only.points] == [FaultKind.LOSS_FRONT]
    assert len(plan.fault_plan_for(0, 4096, at_time=200.0)) == 0
    # No filter: both events land.
    assert len(plan.fault_plan_for(0, 4096)) == 2


# -- correlation: shared coordinates ------------------------------------------


def test_members_of_one_domain_share_coordinates():
    plan = make_plan()
    first = plan.fault_plan_for(1, 8192)
    again = plan.fault_plan_for(1, 8192)
    assert first.points == again.points     # deterministic
    other = plan.fault_plan_for(2, 8192)
    assert first.points != other.points     # domains differ


def test_links_within_a_domain_replay_identically():
    plan = make_plan()
    one = plan.link_for(0, 8192, profile=COAP_6LOWPAN)
    two = plan.link_for(0, 8192, profile=COAP_6LOWPAN)
    assert one is not two
    # Drive both through identical transfers: byte-identical behaviour
    # (same outages at the same cumulative bytes).
    def drain(link):
        trace = []
        for _ in range(12):
            try:
                report = link.transfer(1024)
                trace.append(("ok", report.retransmissions))
            except Exception as exc:
                trace.append(("down", type(exc).__name__))
        return trace
    assert drain(one) == drain(two)


def test_link_for_returns_none_when_no_event_active():
    plan = make_plan()
    assert plan.link_for(0, 4096, at_time=500.0) is None
    assert plan.link_for(0, 4096, profile=BLE_GATT,
                         at_time=15.0) is not None


# -- coordinator kills --------------------------------------------------------


def test_coordinator_kills_extracts_append_indices():
    plan = DomainPlan(
        [FaultDomain("only")],
        [DomainEvent(FaultKind.COORDINATOR_CRASH, duration=1.0,
                     severity=4),
         DomainEvent(FaultKind.LINK_STORM, duration=1.0, severity=2)],
        seed=3)
    assert plan.coordinator_kills() == [4]
    # The crash event never lands on member links.
    assert [p.kind for p in plan.fault_plan_for(0, 4096).points] \
        == [FaultKind.LINK_STORM]


def test_domain_event_rejects_non_correlated_kinds():
    with pytest.raises(ValueError):
        DomainEvent(FaultKind.BIT_ROT)
    with pytest.raises(ValueError):
        DomainEvent(FaultKind.LINK_STORM, duration=0.0)
    with pytest.raises(ValueError):
        DomainEvent(FaultKind.LINK_STORM, severity=0)


# -- serialization ------------------------------------------------------------


def test_plan_roundtrips_through_json_dict():
    import json

    plan = make_plan(seed=42, assignment="hash", sweep=15.0)
    data = json.loads(json.dumps(plan.to_dict(), sort_keys=True))
    restored = DomainPlan.from_dict(data)
    assert restored.to_dict() == plan.to_dict()
    assert restored.members(30) == plan.members(30)
    assert restored.fault_plan_for(1, 4096).points \
        == plan.fault_plan_for(1, 4096).points


def test_plan_validation():
    with pytest.raises(ValueError):
        DomainPlan([], [])
    with pytest.raises(ValueError):
        DomainPlan([FaultDomain("a"), FaultDomain("a")], [])
    with pytest.raises(ValueError):
        DomainPlan([FaultDomain("a")], [], assignment="random")
    with pytest.raises(ValueError):
        make_plan().fault_plan_for(9, 4096)
    with pytest.raises(ValueError):
        make_plan().fault_plan_for(0, 0)


def test_correlated_kinds_cover_the_new_fault_families():
    assert set(CORRELATED_KINDS) == {FaultKind.LINK_STORM,
                                     FaultKind.LOSS_FRONT,
                                     FaultKind.HERD_REBOOT}
