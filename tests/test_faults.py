"""Fault-plan and fault-injector unit tests.

The chaos sweep's trust chain starts here: plans are value objects that
round-trip through JSON, and the injector arms exactly the faults a
plan describes — deterministically.
"""

from __future__ import annotations

import pytest

from repro.core import ServerUnavailable
from repro.faults import (
    BURST_LOSS_RATE,
    DeviceRebooted,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPoint,
)
from repro.memory import PowerLossError
from repro.net.link import BLE_GATT, LinkDownError
from repro.sim import Testbed
from repro.workload import FirmwareGenerator


# -- FaultPlan value semantics ------------------------------------------------


def test_plan_dedupes_and_orders():
    point = FaultPoint(FaultKind.REBOOT, 100)
    plan = FaultPlan(points=(point, FaultPoint(FaultKind.BIT_ROT, 4),
                             point))
    assert len(plan) == 2
    assert plan.points[0].kind is FaultKind.BIT_ROT


def test_plan_json_roundtrip():
    plan = FaultPlan(points=(
        FaultPoint(FaultKind.POWER_LOSS_ERASE, 7),
        FaultPoint(FaultKind.LINK_OUTAGE, 2048, 3),
        FaultPoint(FaultKind.SERVER_OUTAGE, 1, 2),
    ), seed=42)
    restored = FaultPlan.from_dict(plan.to_dict())
    assert restored == plan
    assert restored.seed == 42


def test_point_rejects_negative_coordinates():
    with pytest.raises(ValueError):
        FaultPoint(FaultKind.REBOOT, -1)


def test_point_label_is_stable():
    assert FaultPoint(FaultKind.POWER_LOSS_ERASE, 7).label \
        == "power-loss-erase@7"
    assert FaultPoint(FaultKind.LINK_OUTAGE, 100, 2).label \
        == "link-outage@100/2"


def test_plan_sample_is_kind_fair():
    """Striding a plan must keep every fault family represented."""
    points = []
    for kind in (FaultKind.POWER_LOSS_ANY, FaultKind.REBOOT,
                 FaultKind.BIT_ROT):
        points.extend(FaultPoint(kind, at) for at in range(10))
    sampled = FaultPlan(points=tuple(points)).sample(stride=5)
    counts = sampled.kind_counts()
    assert set(counts) == {"power-loss-any", "reboot", "bit-rot"}
    assert all(count == 2 for count in counts.values())


def test_plan_kind_counts_and_of_kind():
    plan = FaultPlan(points=(
        FaultPoint(FaultKind.REBOOT, 1),
        FaultPoint(FaultKind.REBOOT, 2),
        FaultPoint(FaultKind.BIT_ROT, 0, 1),
    ))
    assert plan.kind_counts() == {"reboot": 2, "bit-rot": 1}
    assert [p.at for p in plan.of_kind(FaultKind.REBOOT)] == [1, 2]


# -- injector: link faults ----------------------------------------------------


def test_make_link_carries_outage_schedule():
    plan = FaultPlan(points=(FaultPoint(FaultKind.LINK_OUTAGE, 0, 2),),
                     seed=3)
    link = FaultInjector(plan).make_link(BLE_GATT)
    with pytest.raises(LinkDownError):
        link.transfer(20)
    with pytest.raises(LinkDownError):
        link.transfer(20)
    # The outage burns out after ``param`` failures.
    assert link.transfer(20).payload_bytes == 20
    assert link.down_events == 2


def test_make_link_carries_loss_burst():
    plan = FaultPlan(points=(FaultPoint(FaultKind.LOSS_BURST, 0, 10_000),))
    link = FaultInjector(plan).make_link(BLE_GATT)
    report = link.transfer(4000)
    assert report.retransmissions > 0  # ~BURST_LOSS_RATE of packets
    assert BURST_LOSS_RATE == 0.5


# -- injector: device and server faults --------------------------------------


@pytest.fixture()
def bed():
    gen = FirmwareGenerator(seed=b"faults")
    base = gen.firmware(4 * 1024, image_id=1)
    bed = Testbed.create(slot_configuration="b", slot_size=32 * 1024,
                         initial_firmware=base,
                         supports_differential=False)
    bed.release(gen.os_version_change(base, revision=2), 2)
    return bed


def test_reboot_fault_fires_once_at_threshold(bed):
    plan = FaultPlan(points=(FaultPoint(FaultKind.REBOOT, 64),))
    FaultInjector(plan).arm(bed)
    with pytest.raises(DeviceRebooted):
        bed.push_update()
    # The fault is one-shot: the retry goes through.
    bed.device.agent.power_cycle()
    assert bed.push_update().success


def test_server_outage_window_then_recovery(bed):
    plan = FaultPlan(points=(FaultPoint(FaultKind.SERVER_OUTAGE, 0, 2),))
    FaultInjector(plan).arm(bed)
    with pytest.raises(ServerUnavailable):
        bed.server.prepare_update(None)
    with pytest.raises(ServerUnavailable):
        bed.server.prepare_update(None)
    # Request index 2 is outside the window; a real token now succeeds.
    token = bed.device.request_token()
    image = bed.server.prepare_update(token)
    assert image.manifest.version == 2


def test_power_fault_arms_flash_with_during_filter(bed):
    plan = FaultPlan(points=(FaultPoint(FaultKind.POWER_LOSS_ERASE, 0),))
    FaultInjector(plan).arm(bed)
    flash = bed.device.layout.get("a").flash
    assert flash.fault_armed
    flash.write(0x100, b"\x00")  # writes don't tick an erase-only fault
    assert flash.fault_armed
    with pytest.raises(PowerLossError):
        flash.erase_page(1)
    assert not flash.fault_armed


def test_rearm_advances_power_queue_only_after_firing(bed):
    plan = FaultPlan(points=(
        FaultPoint(FaultKind.POWER_LOSS_WRITE, 0),
        FaultPoint(FaultKind.POWER_LOSS_WRITE, 5),
    ))
    injector = FaultInjector(plan)
    injector.arm(bed)
    flash = bed.device.layout.get("a").flash
    # Still armed: rearm must not skip to the second point.
    injector.rearm(bed)
    with pytest.raises(PowerLossError):
        flash.write(0x200, b"\x00\x00")
    assert not flash.fault_armed
    injector.rearm(bed)
    assert flash.fault_armed  # the second point is now armed


def test_bit_rot_corrupts_selected_slot(bed):
    plan = FaultPlan(points=(FaultPoint(FaultKind.BIT_ROT, 16, 0),))
    injector = FaultInjector(plan)
    slot = bed.device.layout.get("a")
    before = slot.flash.snapshot()[slot.offset + 16:slot.offset + 20]
    injector.apply_pre_boot(bed)
    after = slot.flash.snapshot()[slot.offset + 16:slot.offset + 20]
    assert after == bytes(b ^ 0xA5 for b in before)
    assert after != before
