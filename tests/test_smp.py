"""SMP (mcumgr Simple Management Protocol) tests."""

from __future__ import annotations

import pytest

from repro.baselines import McubootBootloader, McumgrAgent
from repro.baselines.smp import (
    CMD_UPLOAD,
    GROUP_IMAGE,
    OP_WRITE,
    OP_WRITE_RSP,
    RC_EINVAL,
    RC_OK,
    SmpError,
    SmpHeader,
    SmpImageServer,
    decode_frame,
    encode_frame,
    smp_upload,
)
from repro.core import DeviceToken
from repro.net.serial import SlipDecoder, slip_encode
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 12 * 1024
DEVICE_ID = 0x11223344


@pytest.fixture()
def baseline_env():
    gen = FirmwareGenerator(seed=b"smp")
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_configuration="b",
                         slot_size=64 * 1024)
    device = bed.device
    device.agent = McumgrAgent(device.profile, device.layout)
    device.bootloader = McubootBootloader(
        device.profile, device.layout, bed.anchors, device.backend)
    bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    return bed


def test_header_roundtrip():
    header = SmpHeader(OP_WRITE, 0, 100, GROUP_IMAGE, 7, CMD_UPLOAD)
    assert SmpHeader.unpack(header.pack()) == header


def test_frame_roundtrip():
    header = SmpHeader(OP_WRITE, 0, 0, GROUP_IMAGE, 1, CMD_UPLOAD)
    frame = encode_frame(header, {"off": 0, "data": b"abc"})
    parsed_header, body = decode_frame(frame)
    assert parsed_header.length == len(frame) - 8
    assert body == {"off": 0, "data": b"abc"}


def test_decode_rejects_short_frame():
    with pytest.raises(SmpError):
        decode_frame(b"\x02\x00")


def test_decode_rejects_length_mismatch():
    header = SmpHeader(OP_WRITE, 0, 99, GROUP_IMAGE, 1, CMD_UPLOAD)
    with pytest.raises(SmpError):
        decode_frame(header.pack() + b"\xa0")


def test_decode_rejects_non_map_body():
    from repro.suit import dumps

    payload = dumps([1, 2])
    header = SmpHeader(OP_WRITE, 0, len(payload), GROUP_IMAGE, 1,
                       CMD_UPLOAD).pack()
    with pytest.raises(SmpError):
        decode_frame(header + payload)


def test_smp_upload_full_flow(baseline_env):
    bed = baseline_env
    token = DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0)
    image = bed.server.prepare_update(token)
    server = SmpImageServer(bed.device.agent)
    exchanges = []
    ok = smp_upload(server, image.pack(), chunk_size=128,
                    on_exchange=lambda req, rsp: exchanges.append(
                        (len(req), len(rsp))))
    assert ok
    assert len(exchanges) == -(-image.total_size // 128)
    assert bed.device.reboot().version == 2


def test_smp_rejects_wrong_command(baseline_env):
    server = SmpImageServer(baseline_env.device.agent)
    bad = encode_frame(SmpHeader(OP_WRITE, 0, 0, 99, 0, CMD_UPLOAD),
                       {"off": 0, "data": b"x"})
    _, body = decode_frame(server.handle(bad))
    assert body["rc"] == RC_EINVAL


def test_smp_rejects_offset_gap(baseline_env):
    bed = baseline_env
    server = SmpImageServer(bed.device.agent)
    first = encode_frame(
        SmpHeader(OP_WRITE, 0, 0, GROUP_IMAGE, 0, CMD_UPLOAD),
        {"off": 0, "data": b"\x00" * 64, "len": 1000})
    _, body = decode_frame(server.handle(first))
    assert body["rc"] == RC_OK and body["off"] == 64
    # Skipping ahead is refused with the expected offset echoed back.
    gap = encode_frame(
        SmpHeader(OP_WRITE, 0, 0, GROUP_IMAGE, 1, CMD_UPLOAD),
        {"off": 500, "data": b"\x00" * 64})
    _, body = decode_frame(server.handle(gap))
    assert body["rc"] == RC_EINVAL
    assert body["off"] == 64


def test_smp_over_slip_serial(baseline_env):
    """The full mcumgr serial stack: SMP frames inside SLIP framing."""
    bed = baseline_env
    token = DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0)
    image = bed.server.prepare_update(token)
    server = SmpImageServer(bed.device.agent)
    decoder = SlipDecoder()

    blob = image.pack()
    offset = 0
    seq = 0
    complete = False
    while offset < len(blob):
        chunk = blob[offset:offset + 96]
        request = encode_frame(
            SmpHeader(OP_WRITE, 0, 0, GROUP_IMAGE, seq, CMD_UPLOAD),
            {"off": offset, "data": chunk})
        wire = slip_encode(request)
        for frame in decoder.feed(wire):
            response_bytes = server.handle(frame)
            _, response = decode_frame(response_bytes)
            assert response["rc"] == RC_OK
            offset = response["off"]
            complete = bool(response.get("match"))
        seq = (seq + 1) & 0xFF
    assert complete
    assert bed.device.reboot().version == 2


def test_smp_upload_restart_from_zero(baseline_env):
    """mcumgr restarts aborted uploads at offset 0; the server resets."""
    bed = baseline_env
    token = DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0)
    image = bed.server.prepare_update(token)
    server = SmpImageServer(bed.device.agent)
    blob = image.pack()
    # Upload half, then restart from scratch.
    half = blob[:len(blob) // 2]
    assert not smp_upload(server, half, chunk_size=128)  # incomplete
    assert smp_upload(server, blob, chunk_size=128)
    assert bed.device.reboot().version == 2
