"""Fleet campaign tests: staged rollout, canary abort, retries."""

from __future__ import annotations

from typing import List

import pytest

from repro.core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.fleet import (
    Campaign,
    DeviceRecord,
    DeviceState,
    RolloutPolicy,
)
from repro.memory import MemoryLayout
from repro.net import ManifestTamperer
from repro.platform import NRF52840, ZEPHYR
from repro.sim import SimulatedDevice
from repro.workload import FirmwareGenerator
from tests.conftest import APP_ID, LINK_OFFSET

IMAGE_SIZE = 8 * 1024


@pytest.fixture()
def release_chain():
    gen = FirmwareGenerator(seed=b"fleet-tests")
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    fw_v2 = gen.app_functionality_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))
    return vendor, server, anchors, fw_v2


def make_fleet(server, anchors, count: int,
               flaky: "set[int]" = frozenset()) -> List[DeviceRecord]:
    fleet = []
    for index in range(count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x2000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="dev-%02d" % index,
            device=device,
            transport="pull" if index % 2 else "push",
            interceptor=ManifestTamperer() if index in flaky else None,
        ))
    return fleet


def test_successful_campaign_updates_everyone(release_chain):
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 6)
    server.publish(vendor.release(fw_v2, 2))
    campaign = Campaign(server, fleet,
                        RolloutPolicy(canary_fraction=0.34))
    report = campaign.run()
    assert not report.aborted
    assert len(report.updated) == 6
    assert report.failed == [] and report.skipped == []
    assert report.success_rate == 1.0
    assert all(record.device.installed_version() == 2
               for record in fleet)


def test_canary_wave_size(release_chain):
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 10)
    campaign = Campaign(server, fleet,
                        RolloutPolicy(canary_fraction=0.2))
    first, second = campaign.waves()
    assert len(first) == 2
    assert len(second) == 8


def test_canary_failures_abort_campaign(release_chain):
    """Every canary device behind a tampering proxy: the rest is spared."""
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 10, flaky={0, 1})
    server.publish(vendor.release(fw_v2, 2))
    campaign = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.2, abort_failure_rate=0.5, max_attempts=1))
    report = campaign.run()
    assert report.aborted
    assert len(report.failed) == 2
    assert len(report.skipped) == 8
    assert report.updated == []
    # Non-canary devices were never touched.
    assert all(record.attempts == 0 for record in fleet[2:])
    assert all(record.device.installed_version() == 1
               for record in fleet[2:])


def test_isolated_failure_does_not_abort(release_chain):
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 8, flaky={5})
    server.publish(vendor.release(fw_v2, 2))
    campaign = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.25, abort_failure_rate=0.5, max_attempts=1))
    report = campaign.run()
    assert not report.aborted
    assert len(report.updated) == 7
    assert report.failed == ["dev-05"]
    assert report.success_rate == pytest.approx(7 / 8)


def test_retries_counted(release_chain):
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 2, flaky={1})
    server.publish(vendor.release(fw_v2, 2))
    campaign = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=1.0, abort_failure_rate=1.0, max_attempts=3))
    campaign.run()
    assert fleet[0].attempts == 1
    assert fleet[1].attempts == 3  # retried, still failing
    assert fleet[1].state is DeviceState.FAILED


def test_campaign_accumulates_costs(release_chain):
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 3)
    server.publish(vendor.release(fw_v2, 2))
    report = Campaign(server, fleet).run()
    assert report.total_bytes_over_air > 3 * 1000
    assert report.total_energy_mj > 0


def test_campaign_with_nothing_new_marks_pull_devices_failed(
        release_chain):
    """No newer release: pull devices report no-op (not success)."""
    vendor, server, anchors, _ = release_chain
    fleet = make_fleet(server, anchors, 2)
    report = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=1.0, max_attempts=1,
        abort_failure_rate=1.0)).run()
    assert report.updated == []


def test_policy_validation():
    with pytest.raises(ValueError):
        RolloutPolicy(canary_fraction=0.0)
    with pytest.raises(ValueError):
        RolloutPolicy(abort_failure_rate=1.5)
    with pytest.raises(ValueError):
        RolloutPolicy(max_attempts=0)


def test_campaign_validation(release_chain):
    _, server, anchors, _ = release_chain
    with pytest.raises(ValueError):
        Campaign(server, [])
    fleet = make_fleet(server, anchors, 1)
    duplicate = DeviceRecord(name=fleet[0].name, device=fleet[0].device)
    with pytest.raises(ValueError):
        Campaign(server, fleet + [duplicate])
    with pytest.raises(ValueError):
        DeviceRecord(name="x", device=fleet[0].device,
                     transport="carrier-pigeon")


def test_report_to_dict_is_json_ready(release_chain):
    import json

    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 3, flaky={2})
    server.publish(vendor.release(fw_v2, 2))
    report = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.34, abort_failure_rate=1.0,
        max_attempts=1)).run()
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["target_version"] == 2
    assert payload["failed"] == ["dev-02"]
    assert 0 < payload["success_rate"] < 1
    assert payload["total_bytes_over_air"] > 0


def test_states_snapshot(release_chain):
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 2)
    server.publish(vendor.release(fw_v2, 2))
    campaign = Campaign(server, fleet)
    assert set(campaign.states().values()) == {DeviceState.PENDING}
    campaign.run()
    assert set(campaign.states().values()) == {DeviceState.UPDATED}


def test_campaign_wall_clock_parallel_waves(release_chain):
    """Wall-clock = sum over waves of the slowest device in each wave."""
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 4)
    server.publish(vendor.release(fw_v2, 2))
    report = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.25)).run()
    per_device = [record.last_outcome.total_seconds for record in fleet]
    assert report.wall_clock_seconds < sum(per_device)
    assert report.wall_clock_seconds >= max(per_device)
