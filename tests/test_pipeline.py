"""Pipeline-module tests: stages, wiring, streaming behaviour."""

from __future__ import annotations

import pytest

from repro.compression import compress
from repro.core import (
    BufferStage,
    DecompressionStage,
    DecryptionStage,
    Manifest,
    PatchingStage,
    PayloadKind,
    Pipeline,
    PipelineError,
    build_pipeline,
)
from repro.crypto import StreamCipher, sha256
from repro.delta import diff


class SinkRecorder:
    """Collects sink writes and their sizes."""

    def __init__(self):
        self.writes = []

    def __call__(self, data: bytes) -> int:
        self.writes.append(bytes(data))
        return len(data)

    @property
    def data(self) -> bytes:
        return b"".join(self.writes)


def full_manifest(firmware: bytes, kind=PayloadKind.FULL,
                  payload_size=None) -> Manifest:
    return Manifest(
        version=2, size=len(firmware), digest=sha256(firmware),
        link_offset=0, app_id=1, payload_kind=kind,
        payload_size=payload_size if payload_size is not None
        else len(firmware),
    )


# -- BufferStage -------------------------------------------------------------------


def test_buffer_stage_holds_until_full():
    stage = BufferStage(buffer_size=8)
    assert stage.feed(b"1234") == b""
    assert stage.feed(b"5678") == b"12345678"


def test_buffer_stage_emits_multiples_of_buffer_size():
    stage = BufferStage(buffer_size=4)
    assert stage.feed(b"123456789") == b"12345678"
    assert stage.finish() == b"9"


def test_buffer_stage_finish_flushes_remainder():
    stage = BufferStage(buffer_size=100)
    stage.feed(b"abc")
    assert stage.finish() == b"abc"
    assert stage.finish() == b""


def test_buffer_stage_rejects_bad_size():
    with pytest.raises(ValueError):
        BufferStage(buffer_size=0)


# -- DecompressionStage ----------------------------------------------------------


def test_decompression_stage_roundtrip():
    data = b"pipeline payload " * 100
    stage = DecompressionStage()
    out = stage.feed(compress(data))
    out += stage.finish()
    assert out == data


def test_decompression_stage_wraps_errors():
    stage = DecompressionStage()
    token = ((4000 - 1) << 4) | 0  # back-reference into empty window
    with pytest.raises(PipelineError):
        stage.feed(bytes([0x00, token >> 8, token & 0xFF]))


def test_decompression_stage_truncation_detected_at_finish():
    stage = DecompressionStage()
    stage.feed(compress(b"abcabcabcabc" * 20)[:-1])
    with pytest.raises(PipelineError):
        stage.finish()


# -- PatchingStage ------------------------------------------------------------------


def test_patching_stage_applies_patch():
    old = bytes(range(256)) * 20
    new = old[:2000] + b"inserted" + old[2000:]
    stage = PatchingStage(lambda off, n: old[off:off + n], len(old))
    out = stage.feed(diff(old, new))
    out += stage.finish()
    assert out == new


def test_patching_stage_wraps_format_errors():
    stage = PatchingStage(lambda off, n: b"", 0)
    with pytest.raises(PipelineError):
        stage.feed(b"NOT A PATCH HEADER")


# -- DecryptionStage -----------------------------------------------------------------


def test_decryption_stage_decrypts():
    cipher_enc = StreamCipher(b"k" * 16, b"n" * 16)
    ciphertext = cipher_enc.process(b"secret firmware bytes")
    stage = DecryptionStage(StreamCipher(b"k" * 16, b"n" * 16))
    assert stage.feed(ciphertext) == b"secret firmware bytes"


# -- build_pipeline wiring -------------------------------------------------------------


def test_full_payload_pipeline_stages():
    firmware = b"F" * 1000
    sink = SinkRecorder()
    pipeline = build_pipeline(full_manifest(firmware), sink)
    assert pipeline.stage_names == ["buffer"]


def test_delta_pipeline_stages():
    manifest = full_manifest(b"F" * 1000, kind=PayloadKind.DELTA_LZSS,
                             payload_size=100)
    pipeline = build_pipeline(manifest, SinkRecorder(),
                              old_reader=lambda o, n: b"", old_size=0)
    assert pipeline.stage_names == ["decompression", "patching", "buffer"]


def test_encrypted_delta_pipeline_stages():
    manifest = full_manifest(b"F" * 1000, kind=PayloadKind.DELTA_ENCRYPTED,
                             payload_size=100)
    pipeline = build_pipeline(
        manifest, SinkRecorder(),
        old_reader=lambda o, n: b"", old_size=0,
        cipher=StreamCipher(b"k" * 16, b"n" * 16))
    assert pipeline.stage_names == ["decryption", "decompression",
                                    "patching", "buffer"]


def test_delta_without_old_reader_rejected():
    manifest = full_manifest(b"F" * 100, kind=PayloadKind.DELTA_LZSS,
                             payload_size=10)
    with pytest.raises(PipelineError):
        build_pipeline(manifest, SinkRecorder())


def test_encrypted_without_cipher_rejected():
    manifest = full_manifest(b"F" * 100, kind=PayloadKind.FULL_ENCRYPTED,
                             payload_size=100)
    with pytest.raises(PipelineError):
        build_pipeline(manifest, SinkRecorder())


# -- end-to-end pipeline behaviour -------------------------------------------------------


def test_full_pipeline_buffers_writes_to_sector_size():
    firmware = bytes(range(256)) * 40  # 10240 bytes
    sink = SinkRecorder()
    pipeline = build_pipeline(full_manifest(firmware), sink,
                              buffer_size=4096)
    for offset in range(0, len(firmware), 100):
        pipeline.feed(firmware[offset:offset + 100])
    pipeline.finish()
    assert sink.data == firmware
    # All intermediate writes are sector-aligned; only the tail is short.
    assert all(len(w) % 4096 == 0 for w in sink.writes[:-1])


def test_delta_pipeline_end_to_end():
    old = bytes(range(251)) * 37
    new = bytearray(old)
    new[100:110] = b"0123456789"
    new = bytes(new) + b"appendix" * 10
    wire = compress(diff(old, new))

    sink = SinkRecorder()
    manifest = full_manifest(new, kind=PayloadKind.DELTA_LZSS,
                             payload_size=len(wire))
    pipeline = build_pipeline(manifest, sink,
                              old_reader=lambda o, n: old[o:o + n],
                              old_size=len(old), buffer_size=512)
    for offset in range(0, len(wire), 64):
        pipeline.feed(wire[offset:offset + 64])
    pipeline.finish()
    assert sink.data == new
    assert pipeline.bytes_in == len(wire)
    assert pipeline.bytes_out == len(new)


def test_encrypted_full_pipeline_end_to_end():
    firmware = b"encrypted image contents " * 64
    server_cipher = StreamCipher(b"key!" * 8, b"n" * 16)
    wire = server_cipher.process(firmware)

    sink = SinkRecorder()
    manifest = full_manifest(firmware, kind=PayloadKind.FULL_ENCRYPTED,
                             payload_size=len(wire))
    pipeline = build_pipeline(manifest, sink,
                              cipher=StreamCipher(b"key!" * 8, b"n" * 16),
                              buffer_size=256)
    pipeline.feed(wire)
    pipeline.finish()
    assert sink.data == firmware


def test_pipeline_rejects_feed_after_finish():
    pipeline = build_pipeline(full_manifest(b"F" * 10), SinkRecorder())
    pipeline.feed(b"F" * 10)
    pipeline.finish()
    with pytest.raises(PipelineError):
        pipeline.feed(b"x")
    with pytest.raises(PipelineError):
        pipeline.finish()


def test_pipeline_detects_short_sink_write():
    manifest = full_manifest(b"F" * 100)
    pipeline = build_pipeline(manifest, lambda data: len(data) - 1,
                              buffer_size=10)
    with pytest.raises(PipelineError):
        pipeline.feed(b"F" * 100)
