"""Kill-and-resume parity through the network layer (acceptance).

PR 7 proved the WAL contract for in-process campaigns; this file
proves it *through the service plane*: a campaign created via the
API, SIGKILL'd at an arbitrary durable append, resumed by a brand-new
:class:`FleetService` (fresh token tables, fresh threads — only the
:class:`DeviceFarm` world and the journal directory survive, exactly
the crash model) finishes with a report byte-identical to the
uninterrupted twin, zero devices re-flashed, zero tokens
double-issued.  One sweep also drives the resume over HTTP.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import DeviceFarm, FleetService, HttpServer
from repro.tools.chaos import _fleet_flash_writes
from repro.tools.swarm import SwarmHttpClient

SPEC = {"name": "kr", "devices": 6, "image_size": 4096}


def run_twin(tmp_path):
    """The uninterrupted journaled reference run."""
    farm = DeviceFarm()
    service = FleetService(farm=farm,
                           journal_dir=str(tmp_path / "twin"))
    status = service.create_campaign(dict(SPEC, wait=True))
    assert status["state"] == "done"
    run = service._campaigns["kr"]
    return {
        "json": json.dumps(status["report"], sort_keys=True),
        "requests": run.server.stats.requests,
        "writes": _fleet_flash_writes(run.fleet),
        "appends": status["journal"]["appends"],
    }


@pytest.fixture(scope="module")
def twin(tmp_path_factory):
    return run_twin(tmp_path_factory.mktemp("twin"))


def kill_at(tmp_path, kill_after):
    """Create via the API, die at the Nth durable append; return the
    surviving world (farm + journal dir)."""
    farm = DeviceFarm()
    journal_dir = str(tmp_path)
    service = FleetService(farm=farm, journal_dir=journal_dir)
    status = service.create_campaign(dict(SPEC, wait=True),
                                     kill_after_appends=kill_after)
    assert status["state"] == "killed"
    assert "append" in status["error"]
    return farm, journal_dir


def assert_parity(twin, status, run):
    assert status["state"] == "done"
    assert json.dumps(status["report"], sort_keys=True) \
        == twin["json"]
    # Zero double-issued tokens: the resumed world served exactly as
    # many update requests as the uninterrupted twin.
    assert run.server.stats.requests == twin["requests"]
    # Zero re-flashes: same flash write count as the twin.
    assert _fleet_flash_writes(run.fleet) == twin["writes"]
    assert run.journal.stats()["appends"] == twin["appends"]


@pytest.mark.parametrize("kill_after", [1, 3, 7])
def test_fresh_service_resumes_byte_identically(tmp_path, twin,
                                                kill_after):
    farm, journal_dir = kill_at(tmp_path, kill_after)
    # The coordinator's RAM is gone: a NEW service over the surviving
    # farm + journal directory must pick the campaign up from disk.
    reborn = FleetService(farm=farm, journal_dir=journal_dir)
    status = reborn.resume_campaign("kr", wait=True)
    assert_parity(twin, status, reborn._campaigns["kr"])


def test_kill_at_the_seal_resumes_to_the_same_report(tmp_path, twin):
    """Dying on the very last append (the campaign-end seal) is the
    nastiest point: resume must replay, not re-run."""
    farm, journal_dir = kill_at(tmp_path, twin["appends"])
    reborn = FleetService(farm=farm, journal_dir=journal_dir)
    status = reborn.resume_campaign("kr", wait=True)
    assert_parity(twin, status, reborn._campaigns["kr"])


def test_resume_over_http_after_a_kill(tmp_path, twin):
    """The acceptance path: kill, then resurrect the campaign through
    POST /campaigns/kr/resume on a freshly started server process."""
    farm, journal_dir = kill_at(tmp_path, 4)
    reborn = FleetService(farm=farm, journal_dir=journal_dir)

    async def main():
        async with HttpServer(reborn) as server:
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as client:
                # The dead coordinator's campaign is not in RAM yet —
                # only its spec + journal on disk.
                status, _h, _raw = await client.request(
                    "GET", "/campaigns/kr")
                assert status == 404
                status, _h, raw = await client.request(
                    "POST", "/campaigns/kr/resume", {"wait": True})
                assert status == 200
                resumed = json.loads(raw)
                status, _h, raw = await client.request(
                    "GET", "/campaigns/kr")
                assert status == 200
                assert json.loads(raw)["state"] == "done"
                return resumed

    resumed = asyncio.run(main())
    assert_parity(twin, resumed, reborn._campaigns["kr"])


def test_resume_without_a_persisted_spec_is_404(tmp_path):
    service = FleetService(journal_dir=str(tmp_path))
    from repro.serve import ServiceError
    with pytest.raises(ServiceError) as exc:
        service.resume_campaign("ghost")
    assert exc.value.status == 404
