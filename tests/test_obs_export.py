"""OpenMetrics exposition and histogram bucket-edge consistency."""

from __future__ import annotations

import pytest

from repro.obs.export import OPENMETRICS_CONTENT_TYPE, metric_name, \
    to_openmetrics, write_openmetrics
from repro.obs.metrics import MetricsRegistry


def test_metric_name_sanitization():
    assert metric_name("net.bytes_over_air") \
        == "upkit_net_bytes_over_air"
    assert metric_name("time.swap-check_seconds") \
        == "upkit_time_swap_check_seconds"
    assert metric_name("9lives") == "upkit__9lives"
    with pytest.raises(ValueError):
        metric_name("...")


def test_histogram_boundary_values_are_inclusive():
    """Satellite regression: a value exactly on a bucket bound lands in
    that bucket in *both* observe() and the cumulative export."""
    registry = MetricsRegistry()
    hist = registry.histogram("h", (1.0, 5.0))
    for value in (1.0, 5.0, 0.5, 2.0):
        hist.observe(value)
    # Per-bucket JSON: 1.0 and 0.5 in le=1; 5.0 and 2.0 in le=5.
    snap = hist.to_value()
    assert snap["buckets"] == {"1": 2, "5": 2, "+Inf": 0}
    # Cumulative export: le=1 counts <=1, le=5 counts <=5, +Inf = all.
    assert hist.cumulative() == [("1", 2), ("5", 4), ("+Inf", 4)]


def test_histogram_overflow_and_nan_land_in_inf_only():
    registry = MetricsRegistry()
    hist = registry.histogram("h", (1.0,))
    hist.observe(float("inf"))
    hist.observe(float("nan"))
    hist.observe(99.0)
    assert hist.to_value()["buckets"] == {"1": 0, "+Inf": 3}
    # +Inf cumulative count always equals the total observation count.
    assert hist.cumulative() == [("1", 0), ("+Inf", 3)]


def test_openmetrics_document_shape():
    registry = MetricsRegistry()
    registry.counter("net.bytes", "bytes moved").inc(100)
    registry.gauge("energy.total_mj").set(1.5)
    registry.histogram("lat", (1.0, 5.0)).observe(2.0)
    text = to_openmetrics([("dev-00", registry)])
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    assert text.endswith("# EOF\n")
    assert "# TYPE upkit_net_bytes counter" in lines
    assert "# HELP upkit_net_bytes bytes moved" in lines
    # Counters carry the mandatory _total suffix; gauges do not.
    assert 'upkit_net_bytes_total{device="dev-00"} 100' in lines
    assert 'upkit_energy_total_mj{device="dev-00"} 1.5' in lines
    # Histogram: cumulative buckets, count, sum.
    assert 'upkit_lat_bucket{device="dev-00",le="1"} 0' in lines
    assert 'upkit_lat_bucket{device="dev-00",le="5"} 1' in lines
    assert 'upkit_lat_bucket{device="dev-00",le="+Inf"} 1' in lines
    assert 'upkit_lat_count{device="dev-00"} 1' in lines
    assert 'upkit_lat_sum{device="dev-00"} 2' in lines


def test_families_are_contiguous_across_devices():
    first, second = MetricsRegistry(), MetricsRegistry()
    first.counter("a").inc(1)
    first.counter("z").inc(1)
    second.counter("a").inc(2)
    lines = to_openmetrics([("d0", first), ("d1", second)]).splitlines()
    type_a = lines.index("# TYPE upkit_a counter")
    type_z = lines.index("# TYPE upkit_z counter")
    # Both devices' upkit_a samples sit between the two TYPE lines.
    assert lines[type_a + 1] == 'upkit_a_total{device="d0"} 1'
    assert lines[type_a + 2] == 'upkit_a_total{device="d1"} 2'
    assert type_z > type_a + 2


def test_kind_conflicts_across_devices_raise():
    first, second = MetricsRegistry(), MetricsRegistry()
    first.counter("x").inc(1)
    second.gauge("x").set(1)
    with pytest.raises(ValueError):
        to_openmetrics([("d0", first), ("d1", second)])


def test_openmetrics_content_type_is_the_versioned_media_type():
    """Scrapers negotiate on this exact string (OpenMetrics 1.0);
    the HTTP face serves it verbatim on /metrics."""
    assert OPENMETRICS_CONTENT_TYPE \
        == "application/openmetrics-text; version=1.0.0; charset=utf-8"


def test_eof_terminator_survives_chunked_writes():
    """Conformance: slicing the exposition into transfer chunks of
    any size and re-assembling them must preserve the single trailing
    ``# EOF`` record — the terminator may never straddle into loss."""
    registry = MetricsRegistry()
    for index in range(64):
        registry.counter("c%02d" % index, "padding").inc(index)
    text = to_openmetrics([("d", registry)])
    for chunk_size in (1, 7, 512):
        chunks = [text[start:start + chunk_size]
                  for start in range(0, len(text), chunk_size)]
        assert all(chunks)
        reassembled = "".join(chunks)
        assert reassembled == text
        assert reassembled.endswith("# EOF\n")
        assert reassembled.count("# EOF") == 1


def test_write_openmetrics_round_trip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    path = tmp_path / "fleet.prom"
    write_openmetrics([("d", registry)], str(path))
    assert path.read_text().endswith("# EOF\n")
