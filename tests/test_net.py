"""Network substrate tests: links, transports, adversaries."""

from __future__ import annotations

import pytest

from repro.core import SignatureInvalid, TokenMismatch, DigestMismatch
from repro.net import (
    BLE_GATT,
    COAP_6LOWPAN,
    Link,
    LinkProfile,
    ManifestTamperer,
    PassiveProxy,
    PayloadBitFlipper,
    PayloadSwapAttacker,
    ReplayAttacker,
    TruncatingProxy,
    get_link_profile,
)
from repro.sim import Testbed


# -- link models ---------------------------------------------------------------


def test_profiles_by_name():
    assert get_link_profile("ble-gatt") is BLE_GATT
    assert get_link_profile("COAP-6LOWPAN") is COAP_6LOWPAN
    with pytest.raises(KeyError):
        get_link_profile("lorawan")


def test_packets_for():
    assert BLE_GATT.packets_for(0) == 0
    assert BLE_GATT.packets_for(1) == 1
    assert BLE_GATT.packets_for(20) == 1
    assert BLE_GATT.packets_for(21) == 2


def test_transfer_time_scales_with_bytes():
    link = Link(BLE_GATT)
    small = link.transfer(100).seconds
    large = link.transfer(10_000).seconds
    assert large > small * 50


def test_transfer_calibration_100kb():
    """The built-in profiles reproduce Fig. 8a's propagation times."""
    push = Link(BLE_GATT).transfer(100 * 1024).seconds
    pull = Link(COAP_6LOWPAN).transfer(100 * 1024).seconds
    assert push == pytest.approx(47.7, rel=0.02)
    assert pull == pytest.approx(41.7, rel=0.02)
    assert pull < push


def test_lossy_link_retransmits_deterministically():
    lossy_a = Link(BLE_GATT, loss_rate=0.2, seed=42)
    lossy_b = Link(BLE_GATT, loss_rate=0.2, seed=42)
    report_a = lossy_a.transfer(10_000)
    report_b = lossy_b.transfer(10_000)
    assert report_a.retransmissions == report_b.retransmissions > 0
    assert report_a.seconds > Link(BLE_GATT).transfer(10_000).seconds


def test_loss_rate_validation():
    with pytest.raises(ValueError):
        Link(BLE_GATT, loss_rate=1.0)


def test_chunks_cover_data():
    link = Link(BLE_GATT)
    data = bytes(range(256))
    chunks = list(link.chunks(data))
    assert all(len(c) <= BLE_GATT.mtu for c in chunks)
    assert b"".join(chunks) == data


# -- transports over the testbed ----------------------------------------------------


@pytest.fixture()
def testbed(firmware_gen):
    fw_v1 = firmware_gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    fw_v2 = firmware_gen.os_version_change(fw_v1, revision=2)
    bed.release(fw_v2, 2)
    return bed


def test_push_update_success(testbed):
    outcome = testbed.push_update()
    assert outcome.success
    assert outcome.booted_version == 2
    assert outcome.rebooted
    assert outcome.total_seconds > 0
    assert set(outcome.phases) >= {"propagation", "verification", "loading"}


def test_pull_update_success(firmware_gen):
    fw_v1 = firmware_gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.pull_update()
    assert outcome.success and outcome.booted_version == 2


def test_pull_no_newer_version_is_noop(firmware_gen):
    fw_v1 = firmware_gen.firmware(8 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    outcome = bed.pull_update()
    assert not outcome.success
    assert outcome.error is None
    assert not outcome.rebooted
    assert outcome.bytes_over_air < 100  # just the announcement poll


def test_passive_proxy_changes_nothing(testbed):
    outcome = testbed.push_update(interceptor=PassiveProxy())
    assert outcome.success and outcome.booted_version == 2


def test_manifest_tamperer_rejected_before_download(testbed):
    outcome = testbed.push_update(interceptor=ManifestTamperer())
    assert not outcome.success
    assert isinstance(outcome.error, SignatureInvalid)
    assert not outcome.rebooted
    # Early rejection: only token + envelope crossed the air.
    assert outcome.bytes_over_air < 300


def test_payload_bitflipper_rejected_before_reboot(testbed):
    outcome = testbed.push_update(interceptor=PayloadBitFlipper(flips=64))
    assert not outcome.success
    assert not outcome.rebooted
    assert testbed.device.installed_version() == 1


def test_payload_swap_rejected(testbed):
    outcome = testbed.push_update(
        interceptor=PayloadSwapAttacker(b"\xEE" * 100))
    assert not outcome.success
    assert not outcome.rebooted


def test_truncating_proxy_never_installs(testbed):
    outcome = testbed.push_update(interceptor=TruncatingProxy(0.7))
    assert not outcome.success
    assert testbed.device.installed_version() == 1


def test_replay_attack_rejected(testbed):
    """A captured old-request image is refused (freshness)."""
    token = testbed.device.agent.request_token()
    captured = testbed.server.prepare_update(token)
    testbed.device.agent.cancel()

    outcome = testbed.push_update(interceptor=ReplayAttacker(captured))
    assert not outcome.success
    assert isinstance(outcome.error, TokenMismatch)
    assert not outcome.rebooted


def test_attacks_over_pull_transport(testbed):
    outcome = testbed.pull_update(interceptor=ManifestTamperer())
    assert not outcome.success
    assert isinstance(outcome.error, SignatureInvalid)


def test_energy_accounting_present(testbed):
    outcome = testbed.push_update()
    assert outcome.total_energy_mj > 0
    assert outcome.energy_mj.get("radio_rx", 0) > 0
    assert outcome.energy_mj.get("flash", 0) > 0


def test_failed_update_cheaper_than_successful(firmware_gen):
    """Early rejection spends far less energy than a full update."""
    fw_v1 = firmware_gen.firmware(16 * 1024, image_id=1)
    fw_v2 = firmware_gen.os_version_change(fw_v1, revision=2)

    good = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024,
                          supports_differential=False)
    good.release(fw_v2, 2)
    ok = good.push_update()

    bad = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024,
                         supports_differential=False)
    bad.release(fw_v2, 2)
    rejected = bad.push_update(interceptor=ManifestTamperer())

    # The rejected attempt pays only the token exchange, the staging-slot
    # erase (the FSM erases before the manifest arrives) and 194 bytes of
    # radio — no payload download, no verification, no reboot.
    assert rejected.total_energy_mj < ok.total_energy_mj / 3
    # The failed signature check itself was still paid for.
    assert rejected.energy_mj.get("crypto", 0) > 0
    assert not rejected.rebooted
