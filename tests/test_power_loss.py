"""End-to-end power-loss safety.

The whole-system property: a device may lose power at *any* flash
operation during the bootloader's install (erase, program, journal
update) — on the next boot it must come up with a valid image, and
after at most one further boot it must be running the new version.
"""

from __future__ import annotations

import pytest

from repro.core import Bootloader, ENVELOPE_SIZE, NoValidImage
from repro.memory import PowerLossError
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 24 * 1024


@pytest.fixture(scope="module")
def firmware_pair():
    gen = FirmwareGenerator(seed=b"power-loss")
    base = gen.firmware(IMAGE_SIZE, image_id=1)
    new = gen.os_version_change(base, revision=2)
    return base, new


def staged_testbed(firmware_pair):
    """A static-config device with v2 verified and staged, pre-reboot."""
    base, new = firmware_pair
    bed = Testbed.create(slot_configuration="b", slot_size=64 * 1024,
                         initial_firmware=base,
                         supports_differential=False)
    bed.release(new, 2)
    outcome = bed.push_update(reboot_on_success=False)
    assert outcome.success
    bed.device.agent.acknowledge_reboot()
    return bed


def count_install_ops(firmware_pair) -> int:
    bed = staged_testbed(firmware_pair)
    internal = bed.device.layout.get("a").flash
    before = internal.stats.pages_erased + internal.stats.write_calls
    result = bed.device.bootloader.boot()
    assert result.version == 2
    return (internal.stats.pages_erased + internal.stats.write_calls
            - before)


def test_install_involves_many_flash_operations(firmware_pair):
    assert count_install_ops(firmware_pair) > 20


def test_power_loss_at_every_install_operation(firmware_pair):
    """Exhaustive sweep: interrupt the install at each flash operation."""
    base, new = firmware_pair
    total_ops = count_install_ops(firmware_pair)
    # Sample every operation for small counts; stride for larger ones to
    # keep the suite fast while still covering all three swap steps.
    stride = max(1, total_ops // 40)
    for op_index in range(0, total_ops, stride):
        bed = staged_testbed(firmware_pair)
        device = bed.device
        internal = device.layout.get("a").flash

        internal.inject_power_loss(op_index)
        try:
            device.bootloader.boot()
            interrupted = False
        except PowerLossError:
            interrupted = True
        except NoValidImage:
            pytest.fail("op %d: bootloader saw no valid image" % op_index)
        internal.clear_fault()

        # Power restored: a fresh bootloader instance boots the device.
        fresh = Bootloader(device.profile, device.layout, bed.anchors,
                           device.backend)
        result = fresh.boot()
        assert result.version in (1, 2), "op %d" % op_index
        # The booted slot holds exactly the bytes of that version.
        expected = new if result.version == 2 else base
        stored = result.slot.read(ENVELOPE_SIZE, len(expected))
        assert stored == expected, "op %d" % op_index

        # The update is never lost: at most one more boot finishes it.
        final = fresh.boot()
        assert final.version == 2, "op %d (interrupted=%s)" % (
            op_index, interrupted)


def test_power_loss_during_agent_write_is_safe(firmware_pair):
    """Losing power while the agent writes the staging slot only loses
    the download; the bootable image is untouched."""
    base, new = firmware_pair
    bed = Testbed.create(slot_configuration="b", slot_size=64 * 1024,
                         initial_firmware=base,
                         supports_differential=False)
    bed.release(new, 2)
    internal = bed.device.layout.get("a").flash
    internal.inject_power_loss(20)  # during the staging erase/write
    with pytest.raises(PowerLossError):
        bed.push_update()  # the device dies mid-download
    internal.clear_fault()
    result = bed.device.bootloader.boot()
    assert result.version == 1
    assert result.slot.read(ENVELOPE_SIZE, len(base)) == base
