"""Latency isolation: a slow signer must not convoy fast endpoints.

This is the regression test for the serve-plane unconvoy work.  Before
the signer pool, the per-token P-256 envelope signature ran on the
event loop *inside* the global service lock, so a single in-flight
``resolve_manifest`` pushed ``register``/``token``/``report`` p99 to
the signature's latency.  Here the signer is slowed to hundreds of
milliseconds on purpose; control-plane calls racing a pending manifest
resolution must still complete in milliseconds, asserted over real
sockets on both faces — TCP for the HTTP/1.1 face, UDP datagrams for
the CoAP face (the same bytes the in-process relay carries).
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.crypto.engine import SignatureCache
from repro.serve import CoapDeviceClient, CoapFront, FleetService, \
    HttpServer
from repro.serve.signing import SignerPool
from repro.tools.swarm import SwarmHttpClient

DEVICE = 0x51160001
SIGN_DELAY = 0.6         # injected ECDSA latency, seconds
FAST_BUDGET = 0.3        # ceiling for the *whole* fast-path sequence


class SlowSignerPool(SignerPool):
    """A private pool whose ECDSA path sleeps on the worker thread.

    ``delay`` starts at zero so ``seed_channels`` stays instant; the
    test arms it once the fixture fleet exists.  The sleep sits inside
    ``sign`` — exactly where scalar multiplication burns time — so the
    slowness lands wherever the serve plane runs its signing, and the
    test fails if that ever moves back onto the event loop.
    """

    def __init__(self) -> None:
        super().__init__(workers=2, signature_cache=SignatureCache())
        self.delay = 0.0

    def sign(self, identity, message):
        if self.delay:
            time.sleep(self.delay)
        return super().sign(identity, message)


def slow_service():
    service = FleetService(chunk_size=1024, signer=SlowSignerPool())
    service.seed_channels(image_size=4096)
    service.signer.delay = SIGN_DELAY
    return service


async def assert_isolated(slow_elapsed_fn, fast_elapsed, pending):
    assert pending, \
        "manifest resolution finished before the fast sequence — " \
        "the signer was never actually slow; the test proves nothing"
    assert fast_elapsed < FAST_BUDGET, \
        "register/token/report took %.3fs behind a pending sign — " \
        "the convoy is back" % fast_elapsed
    slow_elapsed = await slow_elapsed_fn
    assert slow_elapsed >= SIGN_DELAY * 0.9


# -- the HTTP/1.1 face, over real TCP -----------------------------------------


def test_http_control_plane_is_isolated_from_a_slow_signer():
    async def main():
        service = slow_service()
        async with HttpServer(service) as server:
            async with SwarmHttpClient("127.0.0.1", server.port) \
                    as slow_client, \
                    SwarmHttpClient("127.0.0.1", server.port) \
                    as fast_client:
                await slow_client.request(
                    "POST", "/devices",
                    {"device_id": DEVICE, "channel": "stable",
                     "current_version": 1})
                _s, _h, raw = await slow_client.request(
                    "POST", "/devices/%d/token" % DEVICE, {})
                token = json.loads(raw)["token"]

                async def fetch_manifest():
                    started = time.perf_counter()
                    status, _h, raw = await slow_client.request(
                        "GET", "/manifests/%s" % token)
                    assert status == 200
                    assert json.loads(raw)["version"] == 2
                    return time.perf_counter() - started

                manifest_task = asyncio.ensure_future(
                    fetch_manifest())
                await asyncio.sleep(0.05)   # let it reach the signer

                started = time.perf_counter()
                other = DEVICE + 1
                status, _h, _raw = await fast_client.request(
                    "POST", "/devices",
                    {"device_id": other, "channel": "stable",
                     "current_version": 1})
                assert status == 201
                _s, _h, raw = await fast_client.request(
                    "POST", "/devices/%d/token" % other, {})
                other_token = json.loads(raw)["token"]
                status, _h, _raw = await fast_client.request(
                    "POST", "/reports/%s" % other_token,
                    {"status": "failed"})
                assert status == 200
                fast_elapsed = time.perf_counter() - started

                await assert_isolated(manifest_task, fast_elapsed,
                                      not manifest_task.done())

    asyncio.run(main())


# -- the CoAP face, over real UDP datagrams -----------------------------------


class _UdpCoapServer(asyncio.DatagramProtocol):
    """The CoAP front behind a real UDP socket.

    The client's source address *is* the dedup endpoint, which is the
    scope RFC 7252 §4.4 prescribes for deployed CoAP — the in-process
    relay merely simulates this with an explicit ``endpoint`` string.
    """

    def __init__(self, front: CoapFront) -> None:
        self.front = front
        self.transport = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        asyncio.get_running_loop().create_task(self._serve(data, addr))

    async def _serve(self, data: bytes, addr) -> None:
        response = await self.front.handle_datagram(
            data, ("%s:%d" % addr[:2]).encode("utf-8"))
        self.transport.sendto(response, addr)


class _UdpCoapRelay(asyncio.DatagramProtocol):
    """Client-side socket with the relay's ``request`` interface, so
    ``CoapDeviceClient`` drives real datagrams unchanged.  Exchanges on
    one socket are sequential (CON semantics), so a single pending
    waiter suffices; the kernel-assigned source port supersedes the
    client's simulated ``endpoint`` argument."""

    def __init__(self) -> None:
        self.transport = None
        self._waiter = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        if self._waiter is not None and not self._waiter.done():
            self._waiter.set_result(data)

    async def request(self, datagram: bytes,
                      endpoint: bytes = b"") -> bytes:
        self._waiter = asyncio.get_running_loop().create_future()
        self.transport.sendto(datagram)
        return await asyncio.wait_for(self._waiter, timeout=10.0)

    def close(self) -> None:
        if self.transport is not None:
            self.transport.close()


async def _udp_client(loop, port: int) -> "_UdpCoapRelay":
    _transport, relay = await loop.create_datagram_endpoint(
        _UdpCoapRelay, remote_addr=("127.0.0.1", port))
    return relay


def test_coap_control_plane_is_isolated_from_a_slow_signer():
    async def main():
        service = slow_service()
        front = CoapFront(service)
        loop = asyncio.get_running_loop()
        transport, _server = await loop.create_datagram_endpoint(
            lambda: _UdpCoapServer(front),
            local_addr=("127.0.0.1", 0))
        port = transport.get_extra_info("sockname")[1]
        slow_relay = await _udp_client(loop, port)
        fast_relay = await _udp_client(loop, port)
        try:
            slow = CoapDeviceClient(slow_relay, DEVICE + 16,
                                    block_size=256)
            fast = CoapDeviceClient(fast_relay, DEVICE + 17,
                                    block_size=256)
            await slow._post_json(
                "devices", {"device_id": slow.device_id,
                            "channel": "stable"})
            issued = await slow._post_json(
                "devices/%d/token" % slow.device_id, {})
            token = str(issued["token"])

            async def fetch_manifest():
                started = time.perf_counter()
                body = await slow._get_blockwise(
                    "manifests/%s" % token)
                assert json.loads(body.decode("utf-8"))["version"] \
                    == 2
                return time.perf_counter() - started

            manifest_task = asyncio.ensure_future(fetch_manifest())
            await asyncio.sleep(0.05)       # let it reach the signer

            started = time.perf_counter()
            await fast._post_json(
                "devices", {"device_id": fast.device_id,
                            "channel": "stable"})
            issued = await fast._post_json(
                "devices/%d/token" % fast.device_id, {})
            report = await fast._post_json(
                "reports/%s" % issued["token"],
                {"status": "failed"})
            assert report["acknowledged"] is True
            fast_elapsed = time.perf_counter() - started

            await assert_isolated(manifest_task, fast_elapsed,
                                  not manifest_task.done())
        finally:
            slow_relay.close()
            fast_relay.close()
            transport.close()

    asyncio.run(main())


# -- the pool itself ----------------------------------------------------------


def test_signer_pool_output_matches_identity_sign():
    """Engine parity is contractual: the pool's cached fast-engine
    signatures must be byte-identical to ``identity.sign``."""
    service = FleetService()
    pool = SignerPool(workers=2, signature_cache=SignatureCache())
    try:
        identity = service.channels["stable"].identity
        message = b"parity probe"
        assert pool.sign(identity, message) == identity.sign(message)
        # Second call is a cache hit with identical bytes.
        assert pool.sign(identity, message) == identity.sign(message)
        stats = pool.signatures.stats_snapshot()
        assert (stats.hits, stats.misses) == (1, 1)
    finally:
        pool.close()
