"""Simulated NOR flash tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    FlashError,
    FlashMemory,
    FlashTiming,
    PowerLossError,
)


@pytest.fixture()
def device():
    return FlashMemory(64 * 1024, page_size=4096, name="test-flash")


def test_starts_erased(device):
    assert device.is_erased(0, device.size)
    assert device.read(100, 4) == b"\xff\xff\xff\xff"


def test_write_and_read(device):
    device.write(0, b"hello")
    assert device.read(0, 5) == b"hello"


def test_write_can_only_clear_bits(device):
    device.write(0, b"\x0f")
    device.write(0, b"\x0e")  # 0x0f -> 0x0e clears a bit: legal
    assert device.read(0, 1) == b"\x0e"
    with pytest.raises(FlashError):
        device.write(0, b"\x0f")  # would set bit 0 back: illegal


def test_write_requires_erase(device):
    device.write(0, b"\x00\x00")
    with pytest.raises(FlashError):
        device.write(0, b"\x01\x01")
    device.erase_page(0)
    device.write(0, b"\x01\x01")
    assert device.read(0, 2) == b"\x01\x01"


def test_erase_page_sets_ff(device):
    device.write(4096, b"data")
    device.erase_page(1)
    assert device.is_erased(4096, 4096)


def test_erase_range_covers_partial_pages(device):
    device.write(0, b"\x00" * 6000)  # spans pages 0 and 1
    device.erase_range(100, 4000)    # still touches both pages
    assert device.is_erased(0, 8192)


def test_erase_range_zero_length_noop(device):
    before = device.stats.pages_erased
    device.erase_range(0, 0)
    assert device.stats.pages_erased == before


def test_bounds_checking(device):
    with pytest.raises(FlashError):
        device.read(device.size - 1, 2)
    with pytest.raises(FlashError):
        device.write(device.size, b"x")
    with pytest.raises(FlashError):
        device.erase_page(device.page_count)


def test_wear_tracking(device):
    device.erase_page(3)
    device.erase_page(3)
    device.erase_page(4)
    assert device.stats.erase_counts[3] == 2
    assert device.stats.erase_counts[4] == 1
    assert device.stats.max_wear == 2
    assert device.stats.pages_erased == 3


def test_timing_accounting():
    timing = FlashTiming(erase_page_seconds=0.1,
                         write_bytes_per_second=1000.0,
                         read_bytes_per_second=100_000.0,
                         write_call_overhead_seconds=0.0)
    device = FlashMemory(8192, page_size=4096, timing=timing)
    device.erase_page(0)
    device.write(0, b"x" * 500)
    busy = device.stats.busy_seconds
    assert busy == pytest.approx(0.1 + 0.5, rel=1e-6)
    device.read(0, 1000)
    assert device.stats.busy_seconds == pytest.approx(busy + 0.01, rel=1e-6)


def test_stats_counters(device):
    device.write(0, b"abc")
    device.read(0, 3)
    assert device.stats.bytes_written == 3
    assert device.stats.bytes_read == 3
    assert device.stats.write_calls == 1


def test_reset_stats(device):
    device.erase_page(0)
    device.reset_stats()
    assert device.stats.pages_erased == 0
    assert device.stats.busy_seconds == 0.0


def test_corrupt_bypasses_nor_rules(device):
    device.write(0, b"\x00")
    device.corrupt(0, b"\xff")  # fault injection: raw overwrite
    assert device.read(0, 1) == b"\xff"


def test_non_strict_mode_allows_overwrite():
    device = FlashMemory(4096, page_size=4096, strict=False)
    device.write(0, b"\x00")
    device.write(0, b"\xff")
    assert device.read(0, 1) == b"\xff"


def test_size_validation():
    with pytest.raises(ValueError):
        FlashMemory(0)
    with pytest.raises(ValueError):
        FlashMemory(5000, page_size=4096)  # not page-aligned


def test_page_of(device):
    assert device.page_of(0) == 0
    assert device.page_of(4096) == 1
    assert device.page_of(4095) == 0


def test_snapshot_is_copy(device):
    device.write(0, b"abc")
    snap = device.snapshot()
    device.erase_page(0)
    assert snap[:3] == b"abc"


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=8191), st.binary(min_size=1,
                                                           max_size=64))
def test_write_read_roundtrip_property(offset, data):
    device = FlashMemory(16 * 1024, page_size=4096)
    if offset + len(data) <= device.size:
        device.write(offset, data)
        assert device.read(offset, len(data)) == data


# -- power-loss fault injection ----------------------------------------------


def test_interrupted_write_lands_first_half(device):
    device.inject_power_loss(0, during="write")
    with pytest.raises(PowerLossError):
        device.write(0, b"\x00" * 8)
    assert device.read(0, 8) == b"\x00" * 4 + b"\xff" * 4
    assert not device.fault_armed


def test_interrupted_erase_leaves_tail_half_erased(device):
    stale = bytes(range(256)) * 16  # 4096 bytes of distinct stale data
    device.write(4096, stale)
    device.inject_power_loss(0, during="erase")
    with pytest.raises(PowerLossError):
        device.erase_page(1)
    # The tail half cleared to 0xFF before the supply collapsed; the
    # head keeps its stale bytes (chosen so an interrupted journal
    # clear still reads back a complete journal header).
    half = device.page_size // 2
    assert device.read(4096 + half, half) == b"\xff" * half
    assert device.read(4096, half) == stale[:half]


def test_interrupted_erase_accounts_wear_and_half_time(device):
    busy_before = device.stats.busy_seconds
    device.inject_power_loss(0, during="erase")
    with pytest.raises(PowerLossError):
        device.erase_page(2)
    # Wear happened; the op never completed so pages_erased stays 0.
    assert device.stats.erase_counts[2] == 1
    assert device.stats.pages_erased == 0
    half_erase = device.timing.erase_page_seconds / 2
    assert device.stats.busy_seconds \
        == pytest.approx(busy_before + half_erase)


def test_fault_countdown_counts_matching_operations(device):
    device.inject_power_loss(2)  # ops 0 and 1 succeed, op 2 trips
    device.write(0, b"\x00")
    device.erase_page(0)
    with pytest.raises(PowerLossError):
        device.write(0, b"\x01\x02")


def test_during_filter_only_ticks_matching_kind(device):
    device.inject_power_loss(0, during="erase")
    device.write(0, b"\x00" * 16)  # writes neither tick nor trip
    assert device.fault_armed
    with pytest.raises(PowerLossError):
        device.erase_page(0)
    device.clear_fault()

    device.inject_power_loss(1, during="write")
    device.erase_page(1)  # erases don't tick a write-only fault
    device.write(4096, b"\x00")
    assert device.fault_armed
    with pytest.raises(PowerLossError):
        device.write(4097, b"\x00")


def test_clear_fault_disarms_and_resets_filter(device):
    device.inject_power_loss(5, during="erase")
    assert device.fault_armed
    device.clear_fault()
    assert not device.fault_armed
    for page in range(6):
        device.erase_page(page)  # would have tripped at the 6th erase


def test_inject_power_loss_validates_arguments(device):
    with pytest.raises(ValueError):
        device.inject_power_loss(-1)
    with pytest.raises(ValueError):
        device.inject_power_loss(0, during="read")
