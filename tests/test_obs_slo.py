"""SLO evaluation and the FleetTelemetry wave-close control loop."""

from __future__ import annotations

import pytest

from repro.obs.health import HealthThresholds
from repro.obs.slo import (
    Action,
    DEFAULT_SLOS,
    FleetTelemetry,
    SLO,
    fleet_metric,
    percentile,
)
from tests.test_obs_health import sample


# -- percentile ---------------------------------------------------------------


def test_percentile_interpolates_linearly():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    assert percentile([7.0], 95) == 7.0
    assert percentile([], 95) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 101)


# -- fleet metrics ------------------------------------------------------------


def test_failure_rate_excludes_quarantined_devices():
    samples = ([sample("ok%d" % i) for i in range(6)]
               + [sample("bad", state="failed"),
                  sample("dead1", state="quarantined"),
                  sample("dead2", state="quarantined")])
    # 1 failed / (6 updated + 1 failed): quarantined devices appear in
    # neither the numerator nor the denominator.
    assert fleet_metric("failure_rate", samples) == pytest.approx(1 / 7)
    assert fleet_metric("quarantine_rate", samples) \
        == pytest.approx(2 / 9)


def test_unknown_metric_is_an_error():
    with pytest.raises(KeyError):
        fleet_metric("p99_vibes", [])
    with pytest.raises(ValueError):
        SLO("x", "p99_vibes", 1.0)


def test_slo_breach_only_above_threshold():
    slo = SLO("t", "max_update_seconds", 30.0, Action.PAUSE)
    ok = [sample("a", update_seconds=30.0)]  # at threshold: no breach
    assert slo.evaluate(ok, wave=0) is None
    breach = slo.evaluate([sample("a", update_seconds=31.0)], wave=2)
    assert breach is not None
    assert breach.wave == 2 and breach.action is Action.PAUSE
    assert breach.observed == pytest.approx(31.0)


def test_slo_rejects_continue_as_breach_action():
    with pytest.raises(ValueError):
        SLO("x", "failure_rate", 0.5, Action.CONTINUE)


def test_default_slos_pass_a_healthy_fleet():
    fleet = [sample("d%02d" % i) for i in range(10)]
    for slo in DEFAULT_SLOS:
        assert slo.evaluate(fleet, wave=0) is None


# -- FleetTelemetry.close_wave ------------------------------------------------


class _Record:
    """Minimal DeviceRecord stand-in for observe_device."""

    class _State:
        def __init__(self, value):
            self.value = value

    class _Outcome:
        def __init__(self, seconds, nbytes, energy):
            self.total_seconds = seconds
            self.bytes_over_air = nbytes
            self.total_energy_mj = energy

    def __init__(self, name, state="updated", seconds=10.0,
                 nbytes=10 * 1024, energy=100.0, interruptions=0,
                 attempts=1):
        self.name = name
        self.state = self._State(state)
        self.device = object()   # no blackbox attribute: phases empty
        self.last_outcome = self._Outcome(seconds, nbytes, energy)
        self.interruptions = interruptions
        self.attempts = attempts


def test_close_wave_escalates_to_the_worst_breach():
    telemetry = FleetTelemetry(slos=(
        SLO("slow", "max_update_seconds", 5.0, Action.SLOW),
        SLO("abort", "failure_rate", 0.3, Action.ABORT),
    ))
    for i in range(4):
        telemetry.observe_device(_Record("ok%d" % i, seconds=50.0), 0)
    for i in range(4):
        telemetry.observe_device(_Record("bad%d" % i, state="failed",
                                         seconds=50.0), 0)
    verdict = telemetry.close_wave(0)
    assert {b.name for b in verdict.breaches} == {"slow", "abort"}
    assert verdict.action is Action.ABORT
    assert telemetry.verdict() == "breached"


def test_quarantine_happens_before_failure_rate_evaluation():
    """Satellite regression: a wave whose failures are all flagged as
    retry storms must not double-count them — quarantine first, then
    the failure-rate SLO sees a clean wave."""
    telemetry = FleetTelemetry(
        slos=(SLO("fr", "failure_rate", 0.25, Action.ABORT),),
        thresholds=HealthThresholds(device_interruptions=3))
    for i in range(6):
        telemetry.observe_device(_Record("ok%d" % i), 0)
    # Two failed devices, each with a blatant interruption storm.
    for i in range(2):
        telemetry.observe_device(
            _Record("storm%d" % i, state="failed", interruptions=5,
                    attempts=3), 0)
    verdict = telemetry.close_wave(0)
    assert sorted(verdict.quarantine) == ["storm0", "storm1"]
    # 2/8 = 0.25 would have breached; after quarantine the rate is 0.
    assert verdict.breaches == []
    assert verdict.action is Action.CONTINUE
    assert verdict.metrics["failure_rate"] == 0.0
    states = {s.name: s.state for s in telemetry.samples}
    assert states["storm0"] == "quarantined"


def test_failed_devices_without_flags_stay_failed():
    telemetry = FleetTelemetry(slos=())
    for i in range(6):
        telemetry.observe_device(_Record("ok%d" % i), 0)
    telemetry.observe_device(_Record("bad", state="failed"), 0)
    verdict = telemetry.close_wave(0)
    assert verdict.quarantine == []
    assert verdict.metrics["failure_rate"] == pytest.approx(1 / 7)


def test_close_wave_records_fleet_series_and_report_shape():
    telemetry = FleetTelemetry(slos=())
    for i in range(5):
        telemetry.observe_device(_Record("d%d" % i), 0)
    telemetry.close_wave(0, t=100.0)
    assert telemetry.store.get("fleet.failure_rate").latest().t == 100.0
    payload = telemetry.to_dict()
    assert payload["verdict"] == "ok"
    assert len(payload["waves"]) == 1
    assert payload["waves"][0]["action"] == "continue"
    assert len(payload["samples"]) == 5
    assert "fleet.p95_update_seconds" in payload["timeseries"]
