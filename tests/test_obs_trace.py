"""Unit tests for the tracing core (repro.obs.trace)."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    containment_errors,
    merge_chrome_traces,
)


class FakeClock:
    """Hand-cranked clock for deterministic span timestamps."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(now_fn=lambda: clock.now, enabled=True)


def test_disabled_tracer_records_nothing(clock):
    tracer = Tracer(now_fn=lambda: clock.now, enabled=False)
    with tracer.span("outer"):
        clock.advance(1.0)
        tracer.instant("mark")
    assert tracer.spans == []
    assert tracer.instants == []


def test_disabled_span_contexts_are_shared():
    # The hot path must not allocate per call when tracing is off.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


def test_span_nesting_records_parentage(tracer, clock):
    with tracer.span("outer") as outer:
        clock.advance(2.0)
        with tracer.span("inner") as inner:
            clock.advance(1.0)
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.start == 0.0 and outer.end == 3.0
    assert inner.start == 2.0 and inner.end == 3.0
    # Closed inner-first.
    assert [s.name for s in tracer.spans] == ["inner", "outer"]


def test_span_records_error_and_propagates(tracer, clock):
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            clock.advance(1.0)
            raise ValueError("boom")
    (span,) = tracer.spans
    assert span.args["error"] == "ValueError"
    assert span.end == 1.0


def test_instant_carries_open_parent(tracer, clock):
    with tracer.span("outer") as outer:
        clock.advance(0.5)
        tracer.instant("event", args={"k": 1})
    (instant,) = tracer.instants
    assert instant["parent_id"] == outer.span_id
    assert instant["t"] == 0.5
    assert instant["args"] == {"k": 1}


def test_tracing_never_advances_the_clock(tracer, clock):
    with tracer.span("outer"):
        tracer.instant("mark")
    assert clock.now == 0.0


def test_chrome_export_units_and_metadata(tracer, clock):
    with tracer.span("outer", category="lifecycle", answer=42):
        clock.advance(1.5)
    doc = tracer.to_chrome_trace(pid=7, process_name="dev-7")
    meta = doc["traceEvents"][0]
    assert meta["ph"] == "M" and meta["args"]["name"] == "dev-7"
    (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert event["ts"] == 0.0
    assert event["dur"] == 1.5e6          # virtual seconds -> us
    assert event["pid"] == 7
    assert event["args"]["answer"] == 42
    assert event["args"]["span_id"] == 1


def test_merge_keeps_all_events(tracer, clock):
    with tracer.span("a"):
        clock.advance(1.0)
    other = Tracer(now_fn=lambda: clock.now, enabled=True)
    with other.span("b"):
        clock.advance(1.0)
    merged = merge_chrome_traces([tracer.to_chrome_trace(pid=1),
                                  other.to_chrome_trace(pid=2)])
    names = {e["name"] for e in merged["traceEvents"]}
    assert {"a", "b"} <= names


def test_clear_resets_ids(tracer, clock):
    with tracer.span("a"):
        pass
    tracer.clear()
    with tracer.span("b") as span:
        pass
    assert span.span_id == 1


def _x(name, ts, dur, span_id, parent_id=None, pid=1):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": 1,
            "args": {"span_id": span_id, "parent_id": parent_id}}


def test_containment_accepts_nested_spans():
    events = [_x("outer", 0, 100, 1), _x("inner", 10, 50, 2, 1)]
    assert containment_errors(events) == []


def test_containment_flags_escaping_child():
    events = [_x("outer", 0, 100, 1), _x("inner", 90, 50, 2, 1)]
    errors = containment_errors(events)
    assert len(errors) == 1 and "escapes" in errors[0]


def test_containment_flags_missing_parent():
    errors = containment_errors([_x("orphan", 0, 10, 2, parent_id=9)])
    assert len(errors) == 1 and "missing parent" in errors[0]


def test_containment_is_per_process():
    # Same span ids in different pids must not collide.
    events = [_x("outer", 0, 100, 1, pid=1),
              _x("outer", 500, 100, 1, pid=2),
              _x("inner", 510, 50, 2, 1, pid=2)]
    assert containment_errors(events) == []
