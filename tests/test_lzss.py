"""LZSS compression tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    LzssDecoder,
    LzssError,
    MAX_MATCH,
    MIN_MATCH,
    WINDOW_SIZE,
    compress,
    decompress,
)


@pytest.mark.parametrize("data", [
    b"",
    b"a",
    b"ab",
    b"abc",
    b"aaaa",
    b"abcabcabcabcabcabc",
    b"the quick brown fox jumps over the lazy dog " * 40,
    bytes(range(256)),
    b"\x00" * 10_000,
    b"\xff" * 5_000,
], ids=["empty", "one", "two", "three", "run4", "repeat", "text",
        "alphabet", "zeros", "ones"])
def test_roundtrip(data):
    assert decompress(compress(data)) == data


def test_compresses_repetitive_data():
    data = b"ABCD" * 2048
    assert len(compress(data)) < len(data) // 4


def test_random_data_expands_bounded():
    import random
    rng = random.Random(11)
    data = bytes(rng.randrange(256) for _ in range(4096))
    compressed = compress(data)
    # Worst case: one flag byte per 8 literals → 12.5% expansion.
    assert len(compressed) <= len(data) * 9 // 8 + 2
    assert decompress(compressed) == data


def test_long_range_matches_beyond_window_are_not_used():
    # Two identical blocks separated by more than the window: the second
    # must still decompress correctly (matches found only within window).
    block = bytes(range(200)) * 2
    data = block + b"\x01" * (WINDOW_SIZE + 100) + block
    assert decompress(compress(data)) == data


def test_streaming_decoder_chunks():
    data = b"streaming test payload " * 300
    compressed = compress(data)
    for chunk_size in (1, 2, 3, 7, 64, 1000):
        decoder = LzssDecoder()
        out = b"".join(decoder.feed(compressed[i:i + chunk_size])
                       for i in range(0, len(compressed), chunk_size))
        decoder.finish()
        assert out == data


def test_decoder_finish_on_truncated_backreference():
    data = b"abcabcabcabcabc" * 10
    compressed = compress(data)
    decoder = LzssDecoder()
    decoder.feed(compressed[:-1])
    with pytest.raises(LzssError):
        decoder.finish()


def test_decoder_rejects_feed_after_finish():
    decoder = LzssDecoder()
    decoder.feed(compress(b"xy"))
    decoder.finish()
    with pytest.raises(LzssError):
        decoder.feed(b"\x00")


def test_decoder_rejects_bad_distance():
    # Flag byte 0 (back-reference first), token pointing 100 bytes back
    # into an empty window.
    token = ((100 - 1) << 4) | 0
    stream = bytes([0x00, token >> 8, token & 0xFF])
    decoder = LzssDecoder()
    with pytest.raises(LzssError):
        decoder.feed(stream)


def test_match_length_constants():
    assert MIN_MATCH == 3
    assert MAX_MATCH == 273  # escape form for long (e.g. zero-run) matches
    assert WINDOW_SIZE == 4096


def test_zero_runs_compress_strongly():
    """bsdiff diff blocks are long zero runs; the escape form must give
    far better than the 8:1 the 4-bit length field alone allows."""
    data = b"\x00" * 65536
    compressed = compress(data)
    assert len(compressed) < len(data) // 60
    assert decompress(compressed) == data


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=3000))
def test_roundtrip_property(data):
    assert decompress(compress(data)) == data


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=1500), st.integers(min_value=1, max_value=97))
def test_streaming_equals_one_shot_property(data, chunk_size):
    compressed = compress(data)
    decoder = LzssDecoder()
    out = b"".join(decoder.feed(compressed[i:i + chunk_size])
                   for i in range(0, len(compressed), chunk_size))
    decoder.finish()
    assert out == data


@settings(max_examples=25, deadline=None)
@given(st.text(alphabet="ab", max_size=2000))
def test_low_entropy_compresses(text):
    data = text.encode("ascii")
    if len(data) > 100:
        assert len(compress(data)) < len(data)
    assert decompress(compress(data)) == data


# -- match-finder parity ----------------------------------------------------
#
# The encoder's match search was accelerated (mismatch quick-reject plus
# slice-based match extension) with the hard requirement that the output
# stream stays *byte-identical*.  ``_reference_compress`` is the plain
# encoder — same hash chain, same greedy strictly-greater selection, same
# 64-candidate bound, but byte-at-a-time matching and no short-circuits —
# so any behavioural drift in the fast path shows up as a byte diff here.


def _reference_compress(data: bytes) -> bytes:
    from repro.compression.lzss import _BASE_MAX, _hash3

    data = bytes(data)
    n = len(data)
    out = bytearray()
    head = {}
    prev = [-1] * n

    pos = 0
    pending_flags = 0
    pending_count = 0
    pending_items = bytearray()

    def flush():
        nonlocal pending_flags, pending_count, pending_items
        if pending_count:
            out.append(pending_flags)
            out.extend(pending_items)
            pending_flags = 0
            pending_count = 0
            pending_items = bytearray()

    def insert(p):
        if p + MIN_MATCH <= n:
            h = _hash3(data, p)
            prev[p] = head.get(h, -1)
            head[h] = p

    def match_length(candidate, pos):
        limit = min(MAX_MATCH, n - pos)
        length = 0
        while (length < limit
               and data[candidate + length] == data[pos + length]):
            length += 1
        return length

    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + MIN_MATCH <= n:
            limit = max(0, pos - WINDOW_SIZE)
            candidate = head.get(_hash3(data, pos), -1)
            tries = 64
            while candidate >= limit and tries:
                length = match_length(candidate, pos)
                if length > best_len:
                    best_len = length
                    best_dist = pos - candidate
                    if length >= MAX_MATCH:
                        break
                candidate = prev[candidate]
                tries -= 1

        if best_len >= MIN_MATCH:
            if best_len <= _BASE_MAX:
                token = ((best_dist - 1) << 4) | (best_len - MIN_MATCH)
                pending_items.extend((token >> 8, token & 0xFF))
            else:
                token = ((best_dist - 1) << 4) | 0x0F
                pending_items.extend((token >> 8, token & 0xFF,
                                      best_len - _BASE_MAX - 1))
            insert(pos)
            step = max(1, best_len // 8)
            for covered in range(pos + step, pos + best_len, step):
                insert(covered)
            pos += best_len
        else:
            pending_flags |= 1 << pending_count
            pending_items.append(data[pos])
            insert(pos)
            pos += 1

        pending_count += 1
        if pending_count == 8:
            flush()

    flush()
    return bytes(out)


@pytest.mark.parametrize("data", [
    b"",
    b"a",
    b"abcabcabcabc" * 64,
    b"\x00" * 6000,
    bytes(range(256)) * 16,
    b"ABAB" * 3 + b"\x00" * 400 + b"ABAB" * 3,
], ids=["empty", "one", "repeat", "zeros", "cycle", "mixed"])
def test_fast_match_finder_is_byte_identical(data):
    assert compress(data) == _reference_compress(data)


def test_fast_match_finder_identical_on_random_and_patch_data():
    import random

    from repro.delta import diff
    from repro.workload import FirmwareGenerator

    rng = random.Random(0x5A55)
    for _ in range(12):
        n = rng.randrange(0, 4000)
        base = bytes(rng.getrandbits(8) for _ in range(max(1, n // 6)))
        data = (base * 8)[:n]
        assert compress(data) == _reference_compress(data)

    gen = FirmwareGenerator(seed=b"lzss-parity")
    fw1 = gen.firmware(16 * 1024, image_id=1)
    fw2 = gen.os_version_change(fw1, revision=2)
    patch = diff(fw1, fw2)
    fast = compress(patch)
    assert fast == _reference_compress(patch)
    assert decompress(fast) == patch
