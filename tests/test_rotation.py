"""Key-rotation (TUF-style survivable key compromise) tests."""

from __future__ import annotations

import pytest

from repro.core import make_test_identities
from repro.core.rotation import (
    ROLE_SERVER,
    ROLE_VENDOR,
    RotationError,
    RotationStatement,
    TrustStore,
)
from repro.crypto import generate_keypair


@pytest.fixture()
def setup():
    vendor, server, anchors = make_test_identities()
    root = generate_keypair(b"offline-root")
    store = TrustStore(root.public_key(), anchors)
    return vendor, server, anchors, root, store


def rotate(role, generation, new_private, root, current):
    return RotationStatement.create(
        role, generation, new_private.public_key(), root, current)


def test_valid_vendor_rotation(setup):
    vendor, _, anchors, root, store = setup
    new_vendor = generate_keypair(b"vendor-gen2")
    statement = rotate(ROLE_VENDOR, 1, new_vendor, root,
                       vendor.private_key)
    new_anchors = store.apply(statement)
    assert new_anchors.vendor.point == new_vendor.public_key().point
    assert new_anchors.server.point == anchors.server.point
    assert store.generation(ROLE_VENDOR) == 1


def test_valid_server_rotation(setup):
    _, server, _, root, store = setup
    new_server = generate_keypair(b"server-gen2")
    store.apply(rotate(ROLE_SERVER, 1, new_server, root,
                       server.private_key))
    assert store.anchors.server.point == new_server.public_key().point


def test_rotation_without_root_rejected(setup):
    """A stolen vendor key alone cannot rotate trust to the attacker."""
    vendor, _, _, root, store = setup
    attacker = generate_keypair(b"attacker")
    fake_root = generate_keypair(b"fake-root")
    statement = rotate(ROLE_VENDOR, 1, attacker, fake_root,
                       vendor.private_key)
    with pytest.raises(RotationError, match="root"):
        store.apply(statement)


def test_rotation_without_role_key_rejected(setup):
    """A stolen root key alone cannot rotate either."""
    _, _, _, root, store = setup
    attacker = generate_keypair(b"attacker")
    statement = rotate(ROLE_VENDOR, 1, attacker, root, attacker)
    with pytest.raises(RotationError, match="vendor"):
        store.apply(statement)


def test_generation_replay_rejected(setup):
    vendor, _, _, root, store = setup
    gen2 = generate_keypair(b"vendor-gen2")
    gen3 = generate_keypair(b"vendor-gen3")
    first = rotate(ROLE_VENDOR, 1, gen2, root, vendor.private_key)
    store.apply(first)
    store.apply(rotate(ROLE_VENDOR, 2, gen3, root, gen2))
    # Replaying the first (older) statement must fail, even though its
    # signatures are valid for generation 1.
    with pytest.raises(RotationError, match="replay"):
        store.apply(first)


def test_chained_rotations_update_signer(setup):
    """After rotation, only the NEW key can authorise the next one."""
    vendor, _, _, root, store = setup
    gen2 = generate_keypair(b"vendor-gen2")
    store.apply(rotate(ROLE_VENDOR, 1, gen2, root, vendor.private_key))
    gen3 = generate_keypair(b"vendor-gen3")
    # Signed by the retired generation-0 key: rejected.
    with pytest.raises(RotationError):
        store.apply(rotate(ROLE_VENDOR, 2, gen3, root,
                           vendor.private_key))
    # Signed by the live generation-1 key: accepted.
    store.apply(rotate(ROLE_VENDOR, 2, gen3, root, gen2))
    assert store.generation(ROLE_VENDOR) == 2


def test_statement_pack_unpack(setup):
    vendor, _, _, root, store = setup
    statement = rotate(ROLE_VENDOR, 1, generate_keypair(b"g2"), root,
                       vendor.private_key)
    parsed = RotationStatement.unpack(statement.pack())
    assert parsed == statement
    store.apply(parsed)


def test_statement_unpack_validation():
    with pytest.raises(RotationError):
        RotationStatement.unpack(b"\x00" * 10)
    with pytest.raises(RotationError):
        RotationStatement.unpack(b"XXXX" + b"\x00" * 198)


def test_statement_field_validation(setup):
    vendor, _, _, root, _ = setup
    key = generate_keypair(b"g2").public_key()
    with pytest.raises(RotationError):
        RotationStatement(role=9, generation=1, new_key=key,
                          root_signature=b"\x00" * 64,
                          role_signature=b"\x00" * 64)
    with pytest.raises(RotationError):
        RotationStatement(role=ROLE_VENDOR, generation=0, new_key=key,
                          root_signature=b"\x00" * 64,
                          role_signature=b"\x00" * 64)


def test_rotated_anchors_gate_updates(setup):
    """End to end: after rotation, old-key releases are rejected and
    new-key releases verify."""
    from repro.core import (
        DeviceProfile,
        DeviceToken,
        SignatureInvalid,
        SigningIdentity,
        UpdateServer,
        VendorServer,
        Verifier,
    )
    from repro.crypto import get_backend

    vendor, server, anchors, root, store = setup
    profile = DeviceProfile(device_id=1, app_id=2, link_offset=0)
    token = DeviceToken(device_id=1, nonce=5, current_version=0)

    # Rotate the vendor key.
    new_vendor_key = generate_keypair(b"vendor-gen2")
    store.apply(rotate(ROLE_VENDOR, 1, new_vendor_key, root,
                       vendor.private_key))
    verifier = Verifier(store.anchors, get_backend("tinycrypt"))

    def image_from(identity):
        vendor_srv = VendorServer(identity, app_id=2, link_offset=0)
        update_srv = UpdateServer(server)
        update_srv.publish(vendor_srv.release(b"\x01" * 512, 1))
        return update_srv.prepare_update(token)

    # Old (compromised) vendor key: rejected.
    with pytest.raises(SignatureInvalid):
        verifier.validate_for_agent(
            image_from(vendor).envelope, profile=profile, token=token,
            installed_version=0, slot_capacity=10 ** 6)
    # New vendor key: accepted.
    new_identity = SigningIdentity("vendor", new_vendor_key)
    verifier.validate_for_agent(
        image_from(new_identity).envelope, profile=profile, token=token,
        installed_version=0, slot_capacity=10 ** 6)
