"""Flash-wear characteristics of the two slot configurations.

A/B updates don't just load faster (Fig. 8c): because nothing is ever
copied, each update erases each page region at most once, while the
static mode's journaled swap erases bootable, staging and scratch pages
on every install.  These tests pin that structural difference.
"""

from __future__ import annotations

import pytest

from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 16 * 1024
UPDATES = 4


def run_campaign(slot_configuration: str):
    gen = FirmwareGenerator(seed=b"wear")
    firmware = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(slot_configuration=slot_configuration,
                         slot_size=64 * 1024, initial_firmware=firmware,
                         supports_differential=False)
    for version in range(2, 2 + UPDATES):
        firmware = gen.app_functionality_change(firmware,
                                                revision=version)
        bed.release(firmware, version)
        outcome = bed.push_update()
        assert outcome.success and outcome.booted_version == version
    return bed


def slot_wear(bed, name: str) -> int:
    slot = bed.device.layout.get(name)
    pages = range(slot.offset // slot.flash.page_size,
                  (slot.offset + slot.size) // slot.flash.page_size)
    return sum(slot.flash.stats.erase_counts[page] for page in pages)


def test_ab_updates_spread_wear_evenly():
    bed = run_campaign("a")
    wear_a = slot_wear(bed, "a")
    wear_b = slot_wear(bed, "b")
    # Alternating slots: each side serves half the updates.
    assert wear_a > 0 and wear_b > 0
    assert abs(wear_a - wear_b) <= max(wear_a, wear_b) * 0.6


def test_static_mode_wears_more_than_ab():
    ab = run_campaign("a")
    static = run_campaign("b")
    ab_total = sum(flash.stats.pages_erased
                   for flash in {id(s.flash): s.flash
                                 for s in ab.device.layout.slots}.values())
    static_total = sum(
        flash.stats.pages_erased
        for flash in {id(s.flash): s.flash
                      for s in static.device.layout.slots}.values())
    # Each static install swaps (3 erases per page pair) on top of the
    # staging erase, so total erasures are a clear multiple of A/B's.
    assert static_total > ab_total * 1.5


def test_static_wear_concentrates_on_status_region():
    """The journal and scratch pages are rewritten on every install —
    the classic wear hot-spot a production deployment would rotate."""
    bed = run_campaign("b")
    status = bed.device.layout.status_slot
    flash = status.flash
    journal_page = flash.page_of(status.offset)
    scratch_page = journal_page + 1
    journal_wear = flash.stats.erase_counts[journal_page]
    scratch_wear = flash.stats.erase_counts[scratch_page]
    assert journal_wear >= UPDATES        # ≥ once per install
    assert scratch_wear > journal_wear    # once per swapped page pair
    # The status region is the most-worn flash on the device.
    assert flash.stats.max_wear == scratch_wear
