"""The concurrent wall-clock tracer behind serve-plane observability.

The virtual-clock :class:`~repro.obs.trace.Tracer` nests spans with one
stack; :class:`~repro.obs.asynctrace.AsyncTracer` must instead let
dozens of interleaved asyncio tasks (and executor threads reached via
``contextvars.copy_context``) each see their own current span.  Pinned
here: per-task lane isolation, traceparent wire format, backdated
spans, zero-cost null default, and the containment checker accepting
concurrent siblings across ``tid`` lanes.
"""

from __future__ import annotations

import asyncio
import contextvars

import pytest

from repro.obs.asynctrace import (
    NULL_ASYNC_TRACER,
    AsyncTracer,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.trace import containment_errors, merge_chrome_traces


# -- traceparent wire format --------------------------------------------------


def test_traceparent_round_trip():
    trace_id = new_trace_id()
    assert len(trace_id) == 32
    wire = format_traceparent(trace_id, 0x1234)
    assert wire == "00-%s-0000000000001234-01" % trace_id
    assert parse_traceparent(wire) == (trace_id, 0x1234)


@pytest.mark.parametrize("bad", [
    "",                                            # empty
    "00-abc-0000000000000001-01",                  # short trace id
    "00-" + "g" * 32 + "-0000000000000001-01",     # non-hex trace id
    "00-" + "a" * 32 + "-00000001-01",             # short parent id
    "00-" + "0" * 32 + "-0000000000000001-01",     # all-zero trace id
    "00-" + "a" * 32 + "-0000000000000000-01",     # all-zero parent id
    "ff-" + "a" * 32 + "-0000000000000001-01",     # forbidden version
    "00-" + "a" * 32 + "-0000000000000001",        # missing flags
])
def test_malformed_traceparent_is_rejected_not_fatal(bad):
    """A stranger's bad header must yield ``None`` (fresh trace), never
    an exception that would fail the request."""
    assert parse_traceparent(bad) is None


def test_traceparent_is_case_insensitive():
    trace_id = "AB" * 16
    wire = "00-%s-00000000000000AB-01" % trace_id
    assert parse_traceparent(wire) == (trace_id.lower(), 0xAB)


# -- concurrent nesting -------------------------------------------------------


def test_interleaved_tasks_nest_independently():
    """N concurrent tasks each open root -> child spans with await
    points inside; every task must keep its own parentage and lane,
    and the exported document must pass containment."""
    tracer = AsyncTracer(enabled=True)

    async def session(idx):
        with tracer.span("device.session", idx=idx) as root:
            for step in range(3):
                with tracer.span("step", n=step) as child:
                    assert child.parent_id == root.span_id
                    assert child.trace_id == root.trace_id
                    assert child.lane == root.lane
                    await asyncio.sleep(0)
            return root

    async def main():
        return await asyncio.gather(*(session(i) for i in range(5)))

    roots = asyncio.run(main())
    lanes = {root.lane for root in roots}
    traces = {root.trace_id for root in roots}
    assert len(lanes) == 5, "each root span must own a tid lane"
    assert len(traces) == 5, "each root span must mint its own trace"
    doc = tracer.to_chrome_trace(pid=7, process_name="test")
    assert containment_errors(doc["traceEvents"]) == []
    x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(x_events) == 5 * 4


def test_containment_accepts_concurrent_siblings_across_lanes():
    """Regression for the single-stack checker: two overlapping-in-time
    requests live in different tid lanes of one pid; the checker must
    resolve parents per pid across lanes instead of flagging the
    interleave as an escape."""
    tracer = AsyncTracer(enabled=True)

    async def request(gate, idx):
        with tracer.span("request", idx=idx):
            await gate.wait()          # force wall-clock overlap
            with tracer.span("handle"):
                await asyncio.sleep(0)

    async def main():
        gate = asyncio.Event()
        tasks = [asyncio.create_task(request(gate, i)) for i in range(3)]
        await asyncio.sleep(0)
        gate.set()
        await asyncio.gather(*tasks)

    asyncio.run(main())
    events = tracer.to_chrome_trace(pid=2)["traceEvents"]
    lanes = {e["tid"] for e in events if e["ph"] == "X"}
    assert len(lanes) == 3
    assert containment_errors(events) == []


def test_containment_still_rejects_true_escapes_and_orphans():
    events = [
        {"name": "parent", "ph": "X", "ts": 0.0, "dur": 10.0,
         "pid": 1, "tid": 1, "args": {"span_id": 1, "parent_id": None}},
        {"name": "late-child", "ph": "X", "ts": 5.0, "dur": 10.0,
         "pid": 1, "tid": 2, "args": {"span_id": 2, "parent_id": 1}},
        {"name": "orphan", "ph": "X", "ts": 1.0, "dur": 1.0,
         "pid": 1, "tid": 3, "args": {"span_id": 3, "parent_id": 99}},
    ]
    problems = containment_errors(events)
    assert any("escapes parent" in p for p in problems)
    assert any("missing parent" in p for p in problems)


def test_parent_ids_do_not_leak_across_pids():
    """Two merged exports reuse the same small span ids; parentage must
    resolve within each pid only — cross-process linkage is by
    trace_id, not parent_id."""
    first = AsyncTracer(enabled=True)
    second = AsyncTracer(enabled=True)
    for tracer in (first, second):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
    merged = merge_chrome_traces([first.to_chrome_trace(pid=1),
                                  second.to_chrome_trace(pid=2)])
    assert containment_errors(merged["traceEvents"]) == []


# -- backdating and grafting --------------------------------------------------


def test_backdated_root_contains_pre_parse_phase():
    """The request root opens only after headers are parsed, backdated
    to the read start; the parse phase recorded via record_span must
    nest inside it."""
    clock = iter([10.0, 10.5, 11.0]).__next__
    tracer = AsyncTracer(enabled=True, now_fn=clock)
    started = 9.0
    with tracer.span("http.request", start=started):
        tracer.record_span("parse", started, 9.4)
    events = tracer.to_chrome_trace()["traceEvents"]
    assert containment_errors(events) == []
    by_name = {e["name"]: e for e in events if e["ph"] == "X"}
    assert by_name["http.request"]["ts"] == pytest.approx(9.0e6)
    assert by_name["parse"]["args"]["parent_id"] == \
        by_name["http.request"]["args"]["span_id"]


def test_root_grafts_onto_remote_trace_id():
    tracer = AsyncTracer(enabled=True)
    remote = new_trace_id()
    with tracer.span("coap.request", trace_id=remote) as root:
        assert root.trace_id == remote
        with tracer.span("service.call") as child:
            assert child.trace_id == remote
    with tracer.span("fresh") as other:
        assert other.trace_id != remote


def test_current_traceparent_reflects_innermost_span():
    tracer = AsyncTracer(enabled=True)
    assert tracer.current_traceparent() is None
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            wire = tracer.current_traceparent()
            assert parse_traceparent(wire) == (inner.trace_id,
                                               inner.span_id)
        assert parse_traceparent(tracer.current_traceparent()) == \
            (outer.trace_id, outer.span_id)
    assert tracer.current_traceparent() is None


def test_span_records_exception_and_still_closes():
    tracer = AsyncTracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    (span,) = tracer.spans
    assert span.args["error"] == "ValueError"
    assert span.end >= span.start


# -- executor propagation -----------------------------------------------------


def test_copied_context_carries_parent_into_executor_thread():
    """`loop.run_in_executor` does not copy context; the serve plane
    wraps offloaded calls in ``contextvars.copy_context().run`` — a
    span closed on that thread must still parent under the request."""
    tracer = AsyncTracer(enabled=True)

    def offloaded():
        with tracer.span("service.create_campaign"):
            return tracer.current_span().parent_id

    async def main():
        loop = asyncio.get_running_loop()
        with tracer.span("http.request") as root:
            ctx = contextvars.copy_context()
            parent_seen = await loop.run_in_executor(
                None, ctx.run, offloaded)
            assert parent_seen == root.span_id

    asyncio.run(main())
    assert containment_errors(
        tracer.to_chrome_trace()["traceEvents"]) == []


# -- null default -------------------------------------------------------------


def test_null_tracer_records_nothing_and_costs_no_state():
    assert NULL_ASYNC_TRACER.enabled is False
    with NULL_ASYNC_TRACER.span("anything", device_id=1):
        assert NULL_ASYNC_TRACER.current_span() is None
        assert NULL_ASYNC_TRACER.current_traceparent() is None
        NULL_ASYNC_TRACER.record_span("x", 0.0, 1.0)
        NULL_ASYNC_TRACER.instant("mark")
    assert NULL_ASYNC_TRACER.spans == []
    assert NULL_ASYNC_TRACER.instants == []


def test_subtree_lists_descendants_sorted_by_start():
    clock = iter([float(t) for t in range(1, 20)]).__next__
    tracer = AsyncTracer(enabled=True, now_fn=clock)
    with tracer.span("request") as root:
        with tracer.span("parse"):
            pass
        with tracer.span("handle"):
            with tracer.span("service.read_chunk"):
                pass
    tree = tracer.subtree(root)
    assert [entry["name"] for entry in tree] == \
        ["request", "parse", "handle", "service.read_chunk"]
    assert tree[0]["duration_ms"] > 0
