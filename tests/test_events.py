"""Event-log and emission-sequence tests."""

from __future__ import annotations

import pytest

from repro.core import UpdateAgent
from repro.core.events import EventKind, EventLog, UpdateEvent
from repro.net import ManifestTamperer, ReplayAttacker
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 12 * 1024


@pytest.fixture()
def testbed():
    gen = FirmwareGenerator(seed=b"events")
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    return bed


# -- the log itself ---------------------------------------------------------------


def test_log_append_and_query():
    log = EventLog()
    log.emit("agent", EventKind.TOKEN_ISSUED, nonce=5)
    log.emit("agent", EventKind.MANIFEST_VERIFIED, version=2)
    assert len(log) == 2
    assert log.last().kind is EventKind.MANIFEST_VERIFIED
    assert log.of_kind(EventKind.TOKEN_ISSUED)[0].detail["nonce"] == 5
    assert log.kinds() == [EventKind.TOKEN_ISSUED,
                           EventKind.MANIFEST_VERIFIED]


def test_log_bounded_capacity():
    log = EventLog(capacity=3)
    for index in range(5):
        log.emit("agent", EventKind.TOKEN_ISSUED, i=index)
    assert len(log) == 3
    assert log.dropped == 2
    # The most recent events survive.
    assert [event.detail["i"] for event in log.all()] == [2, 3, 4]


def test_log_capacity_validation():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_log_clear():
    log = EventLog()
    log.emit("agent", EventKind.TOKEN_ISSUED)
    log.clear()
    assert len(log) == 0 and log.last() is None


def test_event_is_frozen():
    event = UpdateEvent("agent", EventKind.TOKEN_ISSUED, {})
    with pytest.raises(AttributeError):
        event.kind = EventKind.SLOT_CLEANED  # type: ignore[misc]


# -- emission sequences ----------------------------------------------------------------


def test_successful_update_event_sequence(testbed):
    outcome = testbed.push_update()
    assert outcome.success
    agent_kinds = testbed.device.agent.events.kinds()
    assert agent_kinds == [
        EventKind.TOKEN_ISSUED,
        EventKind.MANIFEST_VERIFIED,
        EventKind.FIRMWARE_VERIFIED,
        EventKind.READY_TO_REBOOT,
    ]
    boot_events = testbed.device.bootloader.events
    selected = boot_events.of_kind(EventKind.BOOT_SELECTED)
    assert selected and selected[-1].detail["version"] == 2


def test_rejected_update_event_sequence(testbed):
    testbed.push_update(interceptor=ManifestTamperer())
    kinds = testbed.device.agent.events.kinds()
    assert EventKind.UPDATE_REJECTED in kinds
    assert EventKind.SLOT_CLEANED in kinds
    assert EventKind.MANIFEST_VERIFIED not in kinds
    rejection = testbed.device.agent.events.of_kind(
        EventKind.UPDATE_REJECTED)[0]
    assert rejection.detail["reason"] == "SignatureInvalid"
    assert rejection.detail["after_payload_bytes"] == 0


def test_replay_rejection_names_token_mismatch(testbed):
    token = testbed.device.agent.request_token()
    captured = testbed.server.prepare_update(token)
    testbed.device.agent.cancel()
    testbed.push_update(interceptor=ReplayAttacker(captured))
    rejection = testbed.device.agent.events.of_kind(
        EventKind.UPDATE_REJECTED)[-1]
    assert rejection.detail["reason"] == "TokenMismatch"


def test_static_install_emits_swap_events():
    gen = FirmwareGenerator(seed=b"events2")
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_configuration="b",
                         slot_size=64 * 1024)
    bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.push_update()
    assert outcome.success
    kinds = bed.device.bootloader.events.kinds()
    assert EventKind.SWAP_STARTED in kinds
    assert kinds[-1] is EventKind.BOOT_SELECTED


def test_shared_event_log_merges_sources(testbed):
    """Agent and bootloader can share one device-wide log."""
    shared = EventLog()
    device = testbed.device
    device.agent.events = shared
    device.bootloader.events = shared
    outcome = testbed.push_update()
    assert outcome.success
    sources = {event.source for event in shared.all()}
    assert sources == {"agent", "bootloader"}
