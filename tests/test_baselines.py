"""Baseline behaviour tests: the vulnerabilities UpKit fixes must exist.

These tests are the behavioural half of Sect. II: mcumgr+mcuboot-style
chains accept replayed old images (no freshness) and reject tampered
ones only *after* a full download and reboot; LwM2M's freshness
guarantee collapses when no end-to-end TLS channel exists.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    Lwm2mChannel,
    McubootBootloader,
    McumgrAgent,
    TlsAbort,
    lwm2m_build,
    mcuboot_build,
    mcumgr_build,
)
from repro.core import (
    Bootloader,
    DeviceToken,
    FeedStatus,
    UpdateAgent,
)
from repro.net import ManifestTamperer, PayloadBitFlipper
from repro.sim import SimulatedDevice, Testbed
from repro.platform import NRF52840, ZEPHYR
from tests.conftest import DEVICE_ID


def make_baseline_testbed(firmware_gen, slot_configuration="b"):
    """Testbed whose device runs mcumgr agent + mcuboot bootloader."""
    fw_v1 = firmware_gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1,
                         slot_configuration=slot_configuration,
                         slot_size=64 * 1024)
    device = bed.device
    baseline_agent = McumgrAgent(device.profile, device.layout)
    baseline_boot = McubootBootloader(device.profile, device.layout,
                                      bed.anchors, device.backend)
    device.agent = baseline_agent
    device.bootloader = baseline_boot
    return bed, fw_v1


# -- mcumgr: no verification in the agent -------------------------------------------


def test_mcumgr_stores_tampered_manifest_without_complaint(firmware_gen):
    bed, fw_v1 = make_baseline_testbed(firmware_gen)
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.push_update(interceptor=ManifestTamperer())
    # The agent accepted everything; only the bootloader (post-reboot)
    # rejects, so the device wasted the download AND a reboot.
    assert outcome.rebooted
    assert outcome.booted_version == 1  # mcuboot refused the bad image
    assert outcome.bytes_over_air > 16 * 1024


def test_mcumgr_wastes_download_on_corrupt_payload(firmware_gen):
    bed, fw_v1 = make_baseline_testbed(firmware_gen)
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.push_update(interceptor=PayloadBitFlipper(flips=64))
    assert outcome.rebooted          # wasted reboot
    assert outcome.booted_version == 1
    assert bed.device.installed_version() == 1


def test_mcumgr_accepts_valid_update(firmware_gen):
    bed, fw_v1 = make_baseline_testbed(firmware_gen)
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.push_update()
    assert outcome.success
    assert outcome.booted_version == 2


def test_mcumgr_null_token(firmware_gen):
    bed, _ = make_baseline_testbed(firmware_gen)
    token = bed.device.agent.request_token()
    assert token.nonce == 0
    assert token.current_version == 0  # never requests deltas


# -- the replay / downgrade attack (the freshness gap) --------------------------------


def test_baseline_chain_accepts_replayed_old_image(firmware_gen):
    """mcumgr+mcuboot installs a captured, validly-signed OLD image."""
    bed, fw_v1 = make_baseline_testbed(firmware_gen)
    fw_v2 = firmware_gen.os_version_change(fw_v1, revision=2)

    # The attacker captured the v1 full image earlier.
    captured = bed.server.prepare_update(
        DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0))

    # Device has meanwhile been updated to v2.
    bed.release(fw_v2, 2)
    assert bed.push_update().booted_version == 2

    # Replay the old image: the baseline chain installs the DOWNGRADE.
    agent = bed.device.agent
    agent.request_token()
    status = agent.feed(captured.pack())
    assert status is FeedStatus.FIRMWARE_COMPLETE
    result = bed.device.reboot()
    assert result.version == 1  # vulnerability reproduced


def test_upkit_rejects_the_same_replay(firmware_gen):
    """Identical attack against UpKit: refused at the manifest stage."""
    fw_v1 = firmware_gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1,
                         slot_configuration="b", slot_size=64 * 1024)
    captured = bed.server.prepare_update(
        DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0))
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    assert bed.push_update().booted_version == 2

    agent = bed.device.agent
    agent.request_token()
    with pytest.raises(Exception):
        agent.feed(captured.pack())
    assert bed.device.reboot().version == 2  # still on the new version


# -- LwM2M channel semantics -------------------------------------------------------


def test_lwm2m_tls_detects_tampering(firmware_gen):
    bed, fw_v1 = make_baseline_testbed(firmware_gen)
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    channel = Lwm2mChannel(interceptor=ManifestTamperer(),
                           end_to_end_tls=True)
    outcome = bed.pull_update(interceptor=channel)
    assert not outcome.success
    assert isinstance(outcome.error, TlsAbort)
    assert channel.aborted


def test_lwm2m_gateway_breaks_protection(firmware_gen):
    """With a gateway in the path (no end-to-end TLS), tampering reaches
    the device and is only caught by the bootloader after reboot."""
    bed, fw_v1 = make_baseline_testbed(firmware_gen)
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    channel = Lwm2mChannel(interceptor=PayloadBitFlipper(flips=64),
                           end_to_end_tls=False)
    outcome = bed.pull_update(interceptor=channel)
    assert outcome.rebooted            # wasted reboot
    assert outcome.booted_version == 1


def test_lwm2m_honest_channel_passes(firmware_gen):
    bed, fw_v1 = make_baseline_testbed(firmware_gen)
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.pull_update(interceptor=Lwm2mChannel())
    assert outcome.success and outcome.booted_version == 2


# -- footprint builds (Fig. 7 comparisons) ---------------------------------------------


def test_mcuboot_footprint_exceeds_upkit():
    from repro.crypto import TINYCRYPT
    from repro.footprint import bootloader_build

    upkit = bootloader_build(ZEPHYR, TINYCRYPT)
    baseline = mcuboot_build()
    assert baseline.flash - upkit.flash == 1600
    assert baseline.ram - upkit.ram == 716


def test_lwm2m_footprint_exceeds_upkit():
    from repro.footprint import agent_build

    upkit = agent_build(ZEPHYR, "pull")
    baseline = lwm2m_build()
    assert baseline.flash - upkit.flash == 4800
    assert baseline.ram - upkit.ram == 2400


def test_mcumgr_footprint_tradeoff():
    from repro.footprint import agent_build

    upkit = agent_build(ZEPHYR, "push")
    baseline = mcumgr_build()
    assert baseline.flash - upkit.flash == 426   # UpKit smaller in flash
    assert upkit.ram - baseline.ram == 1200      # but larger in RAM
