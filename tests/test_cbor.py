"""CBOR codec tests (RFC 8949 subset)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.suit import CborError, Tag, dumps, loads


# RFC 8949 Appendix A test vectors (the subset we implement).
RFC_VECTORS = [
    (0, "00"),
    (1, "01"),
    (10, "0a"),
    (23, "17"),
    (24, "1818"),
    (25, "1819"),
    (100, "1864"),
    (1000, "1903e8"),
    (1000000, "1a000f4240"),
    (1000000000000, "1b000000e8d4a51000"),
    (-1, "20"),
    (-10, "29"),
    (-100, "3863"),
    (-1000, "3903e7"),
    (b"", "40"),
    (b"\x01\x02\x03\x04", "4401020304"),
    ("", "60"),
    ("a", "6161"),
    ("IETF", "6449455446"),
    ("ü", "62c3bc"),
    ([], "80"),
    ([1, 2, 3], "83010203"),
    ([1, [2, 3], [4, 5]], "8301820203820405"),
    ({}, "a0"),
    ({1: 2, 3: 4}, "a201020304"),
    ({"a": 1, "b": [2, 3]}, "a26161016162820203"),
    (False, "f4"),
    (True, "f5"),
    (None, "f6"),
]


@pytest.mark.parametrize("value,expected_hex", RFC_VECTORS,
                         ids=[repr(v)[:24] for v, _ in RFC_VECTORS])
def test_rfc8949_vectors_encode(value, expected_hex):
    assert dumps(value).hex() == expected_hex


@pytest.mark.parametrize("value,encoded_hex", RFC_VECTORS,
                         ids=[repr(v)[:24] for v, _ in RFC_VECTORS])
def test_rfc8949_vectors_decode(value, encoded_hex):
    assert loads(bytes.fromhex(encoded_hex)) == value


def test_tag_roundtrip():
    tagged = Tag(18, [b"protected", {}, b"payload", b"sig"])
    assert loads(dumps(tagged)) == tagged


def test_tag_vector():
    # Tag 2 (unsigned bignum) over a byte string, RFC 8949 A.
    assert dumps(Tag(2, b"\x01\x02")).hex() == "c2420102"


def test_canonical_map_ordering():
    """Keys sort by encoded bytes, so int keys order numerically."""
    assert dumps({10: 0, 1: 0, 100: 0}) == dumps({1: 0, 10: 0, 100: 0})
    encoded = dumps({100: 0, 1: 0})
    assert encoded.index(b"\x01") < encoded.index(b"\x18\x64")


def test_decode_rejects_trailing_bytes():
    with pytest.raises(CborError):
        loads(dumps(1) + b"\x00")


def test_decode_rejects_truncation():
    encoded = dumps({"key": b"value bytes"})
    for cut in range(1, len(encoded)):
        with pytest.raises(CborError):
            loads(encoded[:cut])


def test_decode_rejects_indefinite_length():
    with pytest.raises(CborError):
        loads(b"\x5f\x41\x01\xff")  # indefinite byte string


def test_decode_rejects_duplicate_keys():
    with pytest.raises(CborError):
        loads(b"\xa2\x01\x02\x01\x03")  # {1:2, 1:3}


def test_decode_rejects_float():
    with pytest.raises(CborError):
        loads(b"\xf9\x3c\x00")  # half-precision 1.0


def test_encode_rejects_unsupported_type():
    with pytest.raises(CborError):
        dumps(1.5)
    with pytest.raises(CborError):
        dumps(object())


def test_encode_rejects_oversized_int():
    with pytest.raises(CborError):
        dumps(2 ** 64)


def test_invalid_utf8_rejected():
    with pytest.raises(CborError):
        loads(b"\x62\xff\xfe")


cbor_values = st.recursive(
    st.one_of(
        st.integers(min_value=-2 ** 63, max_value=2 ** 63),
        st.binary(max_size=40),
        st.text(max_size=20),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(
            st.one_of(st.integers(min_value=0, max_value=1000),
                      st.text(max_size=8)),
            children, max_size=5),
    ),
    max_leaves=20,
)


@settings(max_examples=80, deadline=None)
@given(cbor_values)
def test_roundtrip_property(value):
    assert loads(dumps(value)) == value


@settings(max_examples=40, deadline=None)
@given(cbor_values)
def test_encoding_is_deterministic(value):
    assert dumps(value) == dumps(value)
