"""Cross-plane trace propagation: one trace_id from device to server.

The tentpole claim of the distributed-tracing work: a device-side
session span and the server-side request spans it caused merge into a
*single* trace — over the HTTP header on the swarm path, over the CoAP
option on the datagram path, and surviving lossy-relay retransmission
without ever minting a second trace_id for the same request.  The
merged artifact must pass containment and the trace v2 join check, and
tracing-on must stay inside its req/s budget.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.asynctrace import AsyncTracer
from repro.obs.trace import containment_errors, merge_chrome_traces
from repro.serve import (
    CoapDatagramRelay,
    CoapDeviceClient,
    CoapFront,
    FleetService,
    HttpServer,
)
from repro.tools import report, swarm
from repro.tools.cli import main

DEVICE = 0x40EE0001


def traced_pair():
    return (AsyncTracer(enabled=True), AsyncTracer(enabled=True))


def merged_doc(device_tracer, server_tracer):
    doc = merge_chrome_traces([
        device_tracer.to_chrome_trace(
            pid=swarm.DEVICE_TRACE_PID, process_name="swarm-devices"),
        server_tracer.to_chrome_trace(
            pid=swarm.SERVER_TRACE_PID, process_name="upkit-serve"),
    ])
    doc["join"] = {"device_pid": swarm.DEVICE_TRACE_PID,
                   "server_pid": swarm.SERVER_TRACE_PID}
    return doc


def roots(tracer, name=None):
    return [s for s in tracer.spans if s.parent_id is None
            and (name is None or s.name == name)]


# -- HTTP header propagation --------------------------------------------------


def test_http_session_and_server_requests_share_one_trace():
    device_tracer, server_tracer = traced_pair()

    async def scenario():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service,
                              tracer=server_tracer) as server:
            async with swarm.SwarmHttpClient("127.0.0.1",
                                             server.port) as client:
                return await swarm.run_http_session(
                    client, DEVICE, 1024, tracer=device_tracer)

    outcome = asyncio.run(scenario())
    assert outcome["digest_ok"] is True

    (session,) = roots(device_tracer, "device.session")
    server_roots = roots(server_tracer, "http.request")
    assert len(server_roots) == 9   # register..report + closing token
    assert {s.trace_id for s in server_roots} == {session.trace_id}
    for root in server_roots:
        assert root.args.get("remote_parent_id") is not None

    doc = merged_doc(device_tracer, server_tracer)
    assert containment_errors(doc["traceEvents"]) == []
    assert report.validate_data("trace", 2, dict(doc)) == []


def test_server_without_client_trace_mints_fresh_traces():
    """No traceparent header -> every request is its own trace; the
    server must never fabricate a join."""
    _ignored, server_tracer = traced_pair()

    async def scenario():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service,
                              tracer=server_tracer) as server:
            async with swarm.SwarmHttpClient("127.0.0.1",
                                             server.port) as client:
                return await swarm.run_http_session(client, DEVICE,
                                                    1024)

    asyncio.run(scenario())
    server_roots = roots(server_tracer, "http.request")
    trace_ids = {s.trace_id for s in server_roots}
    assert len(trace_ids) == len(server_roots)
    assert all(s.args.get("remote_parent_id") is None
               for s in server_roots)


def test_malformed_traceparent_header_never_fails_the_request():
    _ignored, server_tracer = traced_pair()

    async def scenario():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service,
                              tracer=server_tracer) as server:
            async with swarm.SwarmHttpClient("127.0.0.1",
                                             server.port) as client:
                return await client.request(
                    "GET", "/healthz",
                    headers={"traceparent": "garbage-not-a-trace"})

    status, _headers, _raw = asyncio.run(scenario())
    assert status == 200
    (root,) = roots(server_tracer, "http.request")
    assert root.args.get("remote_parent_id") is None


# -- CoAP option propagation + lossy retransmission ---------------------------


@pytest.mark.parametrize("drop_every", [0, 3])
def test_coap_session_joins_and_loss_reuses_trace_id(drop_every):
    """The parity-harness claim for the datagram face: the device
    session and every server request span share one trace_id — and
    because retransmission resends the *already-encoded* datagram,
    a lossy relay must not mint extra trace_ids or extra request
    spans (dedup serves replays from cache, untraced)."""
    device_tracer, server_tracer = traced_pair()
    service = FleetService(chunk_size=1024)
    service.seed_channels(image_size=4096)
    front = CoapFront(service, tracer=server_tracer)
    relay = CoapDatagramRelay(front, drop_every=drop_every)
    client = CoapDeviceClient(relay, DEVICE, block_size=256,
                              tracer=device_tracer)

    outcome = asyncio.run(client.run_session())
    assert outcome["digest_ok"] is True
    if drop_every:
        assert relay.dropped > 0

    (session,) = roots(device_tracer, "device.session")
    server_roots = roots(server_tracer, "coap.request")
    assert {s.trace_id for s in server_roots} == {session.trace_id}
    # Dedup must answer retransmitted datagrams from cache: the span
    # count matches the *distinct* requests, lossy or not.
    lossless_count = len(server_roots)
    assert lossless_count > 0
    assert service.metrics.counter("serve.token_replays") \
        .to_value() == 0
    if drop_every:
        assert service.metrics.counter("serve.coap_dedup_hits") \
            .to_value() > 0

    doc = merged_doc(device_tracer, server_tracer)
    assert containment_errors(doc["traceEvents"]) == []
    assert report.validate_data("trace", 2, dict(doc)) == []


def test_lossy_and_lossless_sessions_trace_identically():
    """Same request-span names in the same order with one trace_id
    each way — loss is invisible in the server's span inventory."""
    inventories = []
    for drop_every in (0, 2):
        device_tracer, server_tracer = traced_pair()
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        relay = CoapDatagramRelay(
            CoapFront(service, tracer=server_tracer),
            drop_every=drop_every)
        client = CoapDeviceClient(relay, DEVICE, block_size=256,
                                  tracer=device_tracer)
        asyncio.run(client.run_session())
        inventories.append(
            [(s.name, s.args.get("route")) for s in
             sorted(roots(server_tracer, "coap.request"),
                    key=lambda s: s.span_id)])
    assert inventories[0] == inventories[1]


# -- merged artifact + overhead gate ------------------------------------------


def test_traced_benchmark_merges_and_stays_in_budget(tmp_path):
    results, trace_doc = swarm.run_traced_benchmark(
        sessions=30, concurrency=8, image_size=4096, chunk_bytes=1024)
    server = results["server"]
    assert server["failed_sessions"] == 0
    overhead = server["trace_overhead"]
    assert overhead["failed_sessions_on"] == 0
    assert overhead["req_per_s_on"] > 0

    path = report.write_report(trace_doc, str(tmp_path / "trace.json"),
                               "trace")
    assert report.validate_file(path) == []
    events = trace_doc["traceEvents"]
    sessions = [e for e in events if e.get("ph") == "X"
                and e["name"] == "device.session"]
    assert len(sessions) == 30
    assert {e["pid"] for e in sessions} == {swarm.DEVICE_TRACE_PID}


def test_trace_overhead_gate_trips_on_synthetic_regression():
    good = {"trace_overhead": {"req_per_s_off": 1000.0,
                               "req_per_s_on": 900.0,
                               "failed_sessions_on": 0}}
    assert swarm.trace_overhead_problems(good) == []
    bad = {"trace_overhead": {"req_per_s_off": 1000.0,
                              "req_per_s_on": 700.0,
                              "failed_sessions_on": 0}}
    problems = swarm.trace_overhead_problems(bad)
    assert problems and "budget" in problems[0]
    assert swarm.trace_overhead_problems({}) == []


def test_bench_gate_includes_trace_overhead(tmp_path):
    """`cli swarm --trace --baseline` path: compare_to_baseline must
    surface an over-budget trace_overhead block even when the plain
    server metrics look fine."""
    from repro.tools import bench

    base_server = {"sessions": 10, "failed_sessions": 0,
                   "concurrency": 4, "requests": 90,
                   "elapsed_seconds": 1.0, "req_per_s": 1000.0,
                   "p50_session_ms": 10.0, "p99_session_ms": 20.0,
                   "endpoints": {}, "endpoint_mix": {},
                   "peak_rss_kb": 1000, "image_bytes": 4096,
                   "chunk_bytes": 1024}
    current_server = dict(base_server)
    current_server["trace_overhead"] = {
        "req_per_s_off": 1000.0, "req_per_s_on": 500.0,
        "failed_sessions_on": 0}
    problems = bench.compare_to_baseline({"server": current_server},
                                         {"server": base_server})
    assert any("budget" in p for p in problems)


def test_join_validation_rejects_orphan_server_traces():
    device_tracer, server_tracer = traced_pair()
    with device_tracer.span("device.session", device_id=1):
        pass
    with server_tracer.span("http.request"):   # fresh trace, no join
        pass
    doc = merged_doc(device_tracer, server_tracer)
    problems = report.validate_data("trace", 2, dict(doc))
    assert any("trace_ids minted by no device session" in p
               for p in problems)


def test_legacy_device_trace_doc_still_validates(tmp_path):
    """The v1 shape (configurations + metrics, no join) stays valid
    under trace schema v2 — `cli trace` artifacts keep passing."""
    doc = {"traceEvents": [], "metrics": {}, "configurations": ["x"]}
    assert report.validate_data("trace", 2, doc) == []
    assert report.validate_data("trace", 1, doc) == []
    missing = report.validate_data("trace", 2, {"traceEvents": []})
    assert any("configurations" in p for p in missing)


def test_cli_swarm_trace_writes_merged_artifact(tmp_path, capsys):
    out = str(tmp_path / "BENCH_server.json")
    trace_out = str(tmp_path / "SWARM_trace.json")
    # A 30-session run is noise-dominated; the budget assertion for
    # real runs lives in the gate tests above, so keep this one about
    # plumbing, not timing.
    rc = main(["swarm", "--sessions", "30", "--concurrency", "8",
               "--image-size", "4096", "--chunk-bytes", "1024",
               "--trace", "--trace-budget", "0.9",
               "--out", out, "--trace-out", trace_out])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "tracing overhead:" in captured
    assert main(["report", "--validate", out, trace_out]) == 0
    with open(out, "r", encoding="utf-8") as fh:
        artifact = json.load(fh)
    assert "trace_overhead" in artifact["server"]
