"""Chaos sweep tests: the anti-bricking invariant, bounded and full.

Tier-1 runs a bounded sweep (every fault family, sampled grid) on both
slot configurations; the full ≥200-point grid is opt-in via
``pytest -m chaos`` (mirroring the ``perf`` marker).
"""

from __future__ import annotations

import json

import pytest

from repro.faults import CORRELATED_KINDS, FaultKind, FaultPlan, FaultPoint
from repro.tools import chaos
from repro.tools.cli import main as cli_main

IMAGE_SIZE = 8 * 1024

# The per-device grid covers every per-device fault family; correlated
# kinds are scheduled by a DomainPlan (see test_chaos_correlated.py).
ALL_KINDS = ({kind.value for kind in FaultKind}
             - {kind.value for kind in CORRELATED_KINDS}
             - {FaultKind.COORDINATOR_CRASH.value})


@pytest.fixture(scope="module")
def lab():
    return chaos.ChaosLab(image_size=IMAGE_SIZE)


@pytest.fixture(scope="module")
def calibration(lab):
    return chaos.calibrate(lab)


# -- calibration and grid -----------------------------------------------------


def test_calibration_measures_every_axis(calibration):
    assert calibration.ops_write > 0
    assert calibration.ops_erase > 0
    assert calibration.ops_any \
        == calibration.ops_write + calibration.ops_erase
    assert calibration.transfer_bytes > IMAGE_SIZE
    assert 0 < calibration.fed_bytes <= calibration.transfer_bytes


def test_grid_covers_every_fault_family(calibration):
    grid = chaos.build_grid(calibration, points=216,
                            image_size=IMAGE_SIZE)
    counts = grid.kind_counts()
    assert set(counts) == ALL_KINDS
    assert len(grid) >= 200


def test_grid_is_deterministic(calibration):
    one = chaos.build_grid(calibration, seed=1, points=64,
                           image_size=IMAGE_SIZE)
    two = chaos.build_grid(calibration, seed=1, points=64,
                           image_size=IMAGE_SIZE)
    assert one == two


def test_grid_rejects_tiny_budgets(calibration):
    with pytest.raises(ValueError):
        chaos.build_grid(calibration, points=4)


# -- bounded tier-1 sweeps ----------------------------------------------------


def _assert_sweep_clean(report):
    assert not report.bricked, chaos.format_summary(report)
    # Most faults must actually be *survived into the new version*, not
    # merely non-fatal (only bit-rot on the fresh download legitimately
    # strands the device on the old image).
    stranded = [r for r in report.results if r.status == "not-updated"]
    for result in stranded:
        assert result.point.kind in (FaultKind.BIT_ROT,), result.point


def test_bounded_sweep_static_config_never_bricks():
    report = chaos.run_sweep(points=28, image_size=IMAGE_SIZE)
    assert len(report.results) >= 16
    assert set(report.kind_counts()) == ALL_KINDS
    _assert_sweep_clean(report)


def test_bounded_sweep_ab_config_never_bricks():
    report = chaos.run_sweep(points=24, slot_configuration="a",
                             transport="pull", image_size=IMAGE_SIZE)
    _assert_sweep_clean(report)


def test_power_loss_point_converges_after_power_cycle(lab):
    result = chaos.run_point(
        lab, FaultPoint(FaultKind.POWER_LOSS_WRITE, 3))
    assert result.status == "updated"
    assert result.power_cycles >= 1


def test_link_outage_point_resumes_without_abandoning(lab):
    result = chaos.run_point(
        lab, FaultPoint(FaultKind.LINK_OUTAGE, 2048, 2))
    assert result.status == "updated"
    assert result.interruptions >= 2
    assert not result.abandoned


def test_bit_rot_on_download_keeps_old_image(lab):
    result = chaos.run_point(lab, FaultPoint(FaultKind.BIT_ROT, 300, 1))
    assert result.status == "not-updated"
    assert result.final_version == 1  # still a valid, signed image


# -- report and CLI -----------------------------------------------------------


def test_report_roundtrips_through_json(tmp_path):
    report = chaos.run_sweep(points=16, image_size=IMAGE_SIZE)
    path = chaos.write_report(report, str(tmp_path / "chaos.json"))
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    assert data["points"] == len(report.results)
    assert data["bricked"] == 0
    assert set(data["kind_counts"]) == ALL_KINDS
    # Every serialized point replays: the plan round-trips.
    for entry in data["results"]:
        restored = FaultPlan.from_dict(
            {"points": [entry["point"]], "seed": data["seed"]})
        assert restored.points[0].to_dict() == entry["point"]


def test_cli_chaos_writes_report_and_exits_zero(tmp_path, capsys):
    out = str(tmp_path / "CHAOS_report.json")
    status = cli_main(["chaos", "--points", "16", "--image-size",
                       str(IMAGE_SIZE), "--out", out])
    assert status == 0
    captured = capsys.readouterr().out
    assert "invariant holds" in captured
    with open(out, encoding="utf-8") as fh:
        assert json.load(fh)["bricked"] == 0


# -- the full grid (opt-in) ---------------------------------------------------


@pytest.mark.chaos
def test_full_grid_never_bricks():
    """The acceptance sweep: ≥200 distinct fault points, zero bricked."""
    report = chaos.run_sweep(points=chaos.DEFAULT_POINTS)
    assert len(report.results) >= 200
    assert set(report.kind_counts()) == ALL_KINDS
    _assert_sweep_clean(report)


@pytest.mark.chaos
def test_full_grid_ab_pull_never_bricks():
    report = chaos.run_sweep(points=chaos.DEFAULT_POINTS,
                             slot_configuration="a", transport="pull")
    assert len(report.results) >= 200
    _assert_sweep_clean(report)
