"""Battery-lifetime analysis tests."""

from __future__ import annotations

import pytest

from repro.analysis import (
    BatteryModel,
    UpdatePlan,
    compare_plans,
    lifetime_years,
    updates_per_percent,
)
from repro.sim import Testbed
from repro.workload import FirmwareGenerator


def test_battery_capacity_conversion():
    battery = BatteryModel(capacity_mah=1000, nominal_volts=3.0,
                           self_discharge_per_year=0.0)
    # 1000 mAh × 3600 s/h × 3 V = 10.8e6 mJ
    assert battery.capacity_mj == pytest.approx(10_800_000.0)


def test_battery_validation():
    with pytest.raises(ValueError):
        BatteryModel(capacity_mah=0)
    with pytest.raises(ValueError):
        BatteryModel(self_discharge_per_year=1.0)


def test_lifetime_without_updates():
    battery = BatteryModel(capacity_mah=1500,
                           self_discharge_per_year=0.0)
    # 1500 mAh at 10 µA ≈ 17.1 years.
    years = lifetime_years(battery, sleep_ua=10.0)
    assert 16.0 < years < 18.0


def test_updates_shorten_lifetime():
    battery = BatteryModel()
    baseline = lifetime_years(battery, sleep_ua=10.0)
    heavy = UpdatePlan("heavy", energy_per_update_mj=5000.0,
                       updates_per_year=52)
    with_updates = lifetime_years(battery, sleep_ua=10.0, plan=heavy)
    assert with_updates < baseline
    light = UpdatePlan("light", energy_per_update_mj=500.0,
                       updates_per_year=52)
    assert lifetime_years(battery, sleep_ua=10.0, plan=light) \
        > with_updates


def test_self_discharge_counts():
    no_loss = BatteryModel(self_discharge_per_year=0.0)
    lossy = BatteryModel(self_discharge_per_year=0.05)
    assert lifetime_years(lossy, 10.0) < lifetime_years(no_loss, 10.0)


def test_updates_per_percent():
    battery = BatteryModel(capacity_mah=1000, nominal_volts=3.0,
                           self_discharge_per_year=0.0)
    # 1% = 108 000 mJ; at 1 000 mJ/update → 108 updates.
    assert updates_per_percent(battery, 1000.0) == pytest.approx(108.0)


def test_validation_errors():
    battery = BatteryModel()
    with pytest.raises(ValueError):
        lifetime_years(battery, sleep_ua=-1.0)
    with pytest.raises(ValueError):
        updates_per_percent(battery, 0.0)


def test_compare_plans_orders_best_first():
    battery = BatteryModel()
    rows = compare_plans(battery, sleep_ua=10.0, plans=[
        UpdatePlan("monthly-full", 4000.0, 12),
        UpdatePlan("monthly-delta", 600.0, 12),
        UpdatePlan("weekly-full", 4000.0, 52),
    ])
    assert [row["name"] for row in rows] == [
        "monthly-delta", "monthly-full", "weekly-full"]
    assert all(row["lifetime_cost_years"] >= 0 for row in rows)


def test_plan_from_simulated_outcome():
    """Wire the simulator's energy numbers straight into the analysis."""
    gen = FirmwareGenerator(seed=b"analysis")
    fw_v1 = gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.push_update()
    plan = UpdatePlan.from_outcome("delta-push", outcome,
                                   updates_per_year=12)
    assert plan.energy_per_update_mj == outcome.total_energy_mj
    years = lifetime_years(BatteryModel(), bed.device.board.sleep_ua,
                           plan)
    # A 1.5 µA sleep floor and a dozen tiny delta updates a year keep
    # the cell alive for decades; sanity-bound rather than pin.
    assert 1.0 < years < 80.0


def test_availability_assessment():
    from repro.analysis import ReportingService, assess
    from repro.net import UpdateOutcome

    outcome = UpdateOutcome(
        success=True, error=None, rebooted=True,
        phases={"propagation": 120.0, "verification": 2.0,
                "loading": 10.0},
    )
    impact = assess(outcome, ReportingService(period_seconds=30.0))
    assert impact.downtime_seconds == 10.0
    assert impact.degraded_seconds == 122.0
    assert impact.missed_reports == 0
    assert impact.delayed_reports == 4
    assert impact.total_disruption_seconds == 132.0


def test_availability_no_reboot_means_no_downtime():
    from repro.analysis import ReportingService, assess
    from repro.net import UpdateOutcome

    rejected = UpdateOutcome(
        success=False, error=None, rebooted=False,
        phases={"propagation": 0.5, "verification": 1.0},
    )
    impact = assess(rejected, ReportingService())
    assert impact.downtime_seconds == 0.0
    assert impact.missed_reports == 0


def test_availability_service_validation():
    from repro.analysis import ReportingService

    with pytest.raises(ValueError):
        ReportingService(period_seconds=0)


def test_ab_updates_cut_downtime_end_to_end():
    """The paper's availability claim: A/B loading ≈ no outage."""
    from repro.analysis import ReportingService, assess

    gen = FirmwareGenerator(seed=b"availability")
    base = gen.firmware(64 * 1024, image_id=1)
    service = ReportingService(period_seconds=2.0)
    impacts = {}
    for config in ("a", "b"):
        bed = Testbed.create(initial_firmware=base,
                             slot_configuration=config,
                             slot_size=128 * 1024,
                             supports_differential=False)
        bed.release(gen.firmware(64 * 1024, image_id=2), 2)
        outcome = bed.push_update()
        assert outcome.success
        impacts[config] = assess(outcome, service)
    assert impacts["a"].downtime_seconds \
        < impacts["b"].downtime_seconds / 3
    assert impacts["a"].missed_reports < impacts["b"].missed_reports


def test_differential_saves_lifetime_end_to_end():
    """The headline energy claim, expressed in years of battery."""
    gen = FirmwareGenerator(seed=b"analysis2")
    fw_v1 = gen.firmware(64 * 1024, image_id=1)
    fw_v2 = gen.os_version_change(fw_v1, revision=2)
    battery = BatteryModel()
    plans = []
    for name, differential in (("delta", True), ("full", False)):
        bed = Testbed.create(initial_firmware=fw_v1,
                             slot_size=128 * 1024,
                             supports_differential=differential)
        bed.release(fw_v2, 2)
        outcome = bed.push_update()
        assert outcome.success
        plans.append(UpdatePlan.from_outcome(name, outcome,
                                             updates_per_year=26))
    rows = compare_plans(battery, sleep_ua=10.0, plans=plans)
    assert rows[0]["name"] == "delta"
    assert rows[0]["lifetime_years"] > rows[1]["lifetime_years"]
