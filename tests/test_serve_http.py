"""The HTTP/1.1 face: routes, races, ranges, and /metrics framing.

Satellite regressions pinned here:
  * two concurrent token requests never BOTH succeed (the single-use
    guarantee holds across real TCP connections);
  * a replayed token on the chunk endpoint is a structured 403;
  * ranged edge cases map to 206/416 with correct Content-Range;
  * /metrics is OpenMetrics-typed and its ``# EOF`` terminator
    survives chunked transfer-encoding re-assembly.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.export import OPENMETRICS_CONTENT_TYPE
from repro.serve import FleetService, HttpServer
from repro.tools.swarm import SwarmHttpClient, run_http_session

DEVICE = 0x40BB0001


def serve(coro_fn, **service_kwargs):
    """Run ``coro_fn(service, client)`` against a live server."""
    async def main():
        service = FleetService(chunk_size=1024, **service_kwargs)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as client:
                return await coro_fn(service, server, client)

    return asyncio.run(main())


async def prepared_token(client, device_id=DEVICE):
    await client.request("POST", "/devices",
                         {"device_id": device_id,
                          "channel": "stable", "current_version": 1})
    _s, _h, raw = await client.request(
        "POST", "/devices/%d/token" % device_id, {})
    token = json.loads(raw)["token"]
    _s, _h, raw = await client.request("GET", "/manifests/%s" % token)
    return token, json.loads(raw)


# -- routes -------------------------------------------------------------------


def test_directory_channels_and_error_routes():
    async def scenario(_service, _server, client):
        status, _h, raw = await client.request("GET", "/")
        assert status == 200
        assert "GET /metrics" in json.loads(raw)["endpoints"]
        status, _h, raw = await client.request("GET", "/channels")
        assert status == 200
        channels = json.loads(raw)
        assert channels["stable"]["latest_version"] == 2
        assert channels["developer"]["latest_version"] == 3
        status, _h, raw = await client.request("GET", "/nope")
        assert status == 404
        assert json.loads(raw)["error"]["code"] == "unknown-route"
        status, _h, raw = await client.request("PUT", "/devices")
        assert status == 405
        status, _h, raw = await client.request("POST", "/devices")
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "invalid-body"

    serve(scenario)


def test_service_errors_arrive_as_structured_bodies():
    async def scenario(_service, _server, client):
        status, _h, raw = await client.request(
            "POST", "/devices/12345/token", {})
        assert status == 404
        error = json.loads(raw)["error"]
        assert error == {"code": "unknown-device", "status": 404,
                         "detail": error["detail"]}
        assert "12345" in error["detail"]

    serve(scenario)


def test_malformed_request_framing_gets_an_error_response():
    """A request that never frames — garbled request line, bad or
    oversized Content-Length — must be answered with a structured
    400/413 before the close, not a bare connection drop."""
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            async def raw(request_bytes):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(request_bytes)
                await writer.drain()
                data = await reader.read()
                writer.close()
                await writer.wait_closed()
                return data

            garbled = await raw(b"NONSENSE\r\n\r\n")
            assert garbled.startswith(b"HTTP/1.1 400 ")
            assert b'"bad-request-line"' in garbled
            huge = await raw(b"POST /devices HTTP/1.1\r\n"
                             b"Content-Length: 9999999999\r\n\r\n")
            assert huge.startswith(b"HTTP/1.1 413 ")
            assert b'"body-too-large"' in huge
            bad_length = await raw(b"POST /devices HTTP/1.1\r\n"
                                   b"Content-Length: banana\r\n\r\n")
            assert bad_length.startswith(b"HTTP/1.1 400 ")
            assert b'"invalid-content-length"' in bad_length

    asyncio.run(main())


# -- satellite: the concurrent token race -------------------------------------


def test_concurrent_token_requests_never_both_succeed():
    """Two TCP connections race POST /devices/{id}/token; exactly one
    may win, every time."""
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            for round_index in range(5):
                device_id = DEVICE + 100 + round_index
                async with SwarmHttpClient(
                        "127.0.0.1", server.port) as register_client:
                    await register_client.request(
                        "POST", "/devices",
                        {"device_id": device_id, "channel": "stable",
                         "current_version": 1})

                async def one_attempt():
                    async with SwarmHttpClient(
                            "127.0.0.1", server.port) as client:
                        status, _h, raw = await client.request(
                            "POST", "/devices/%d/token" % device_id,
                            {})
                        return status, json.loads(raw)

                outcomes = await asyncio.gather(one_attempt(),
                                                one_attempt())
                statuses = sorted(status for status, _body in outcomes)
                assert statuses == [201, 409], outcomes
                loser = next(body for status, body in outcomes
                             if status == 409)
                assert loser["error"]["code"] == "token-outstanding"

    asyncio.run(main())


# -- satellite: replayed token on the chunk endpoint --------------------------


def test_replayed_token_on_chunk_endpoint_is_structured_403():
    async def scenario(_service, _server, client):
        outcome = await run_http_session(client, DEVICE, 1024)
        token = outcome["token"]
        status, _h, raw = await client.request(
            "GET", "/images/%s" % token,
            headers={"Range": "bytes=0-1023"})
        assert status == 403
        error = json.loads(raw)["error"]
        assert error["code"] == "token-replayed"
        assert error["status"] == 403
        # The manifest and report endpoints reject the replay too.
        status, _h, _raw = await client.request("GET",
                                                "/manifests/%s" % token)
        assert status == 403
        status, _h, _raw = await client.request(
            "POST", "/reports/%s" % token, {"status": "updated"})
        assert status == 403

    serve(scenario)


# -- satellite: ranged chunk edge cases over HTTP -----------------------------


def test_range_semantics_on_the_wire():
    async def scenario(_service, _server, client):
        token, manifest = await prepared_token(client)
        total = manifest["payload_size"]
        # Unranged GET: the whole payload, 200, octet-stream.
        status, headers, body = await client.request(
            "GET", "/images/%s" % token)
        assert (status, len(body)) == (200, total)
        assert headers["content-type"] == "application/octet-stream"
        # Ranged GET: 206 with an exact Content-Range.
        status, headers, first = await client.request(
            "GET", "/images/%s" % token,
            headers={"Range": "bytes=0-511"})
        assert status == 206
        assert headers["content-range"] == "bytes 0-511/%d" % total
        assert first == body[:512]
        # Zero-length range at EOF: satisfiable, empty — served as a
        # plain 200 because RFC 7233 has no valid Content-Range for
        # an empty satisfied range ('bytes */N' is 416-only).
        status, headers, empty = await client.request(
            "GET", "/images/%s?offset=%d&length=0" % (token, total))
        assert (status, empty) == (200, b"")
        assert "content-range" not in headers
        # Nonzero range past EOF: 416 with a structured body.
        status, _h, raw = await client.request(
            "GET", "/images/%s" % token,
            headers={"Range": "bytes=%d-%d" % (total, total + 99)})
        assert status == 416
        assert json.loads(raw)["error"]["code"] == "range-unsatisfiable"
        # Range ending past EOF truncates to the real tail.
        status, headers, tail = await client.request(
            "GET", "/images/%s" % token,
            headers={"Range": "bytes=%d-%d" % (total - 10,
                                               total + 4096)})
        assert (status, len(tail)) == (206, 10)
        assert headers["content-range"] \
            == "bytes %d-%d/%d" % (total - 10, total - 1, total)
        assert tail == body[-10:]
        # Overlapping re-request after a simulated disconnect.
        status, _h, overlap = await client.request(
            "GET", "/images/%s" % token,
            headers={"Range": "bytes=256-767"})
        assert status == 206
        assert overlap == body[256:768]
        # Malformed ranges are 400s, not crashes.
        for bad in ("bytes=-100", "chars=0-1", "bytes=9-1"):
            status, _h, raw = await client.request(
                "GET", "/images/%s" % token, headers={"Range": bad})
            assert status == 400
            assert json.loads(raw)["error"]["code"] == "invalid-range"

    serve(scenario)


# -- satellite: /metrics conformance ------------------------------------------


def test_metrics_is_openmetrics_typed_and_chunk_safe():
    """The exposition arrives via chunked transfer-encoding; after
    re-assembly the document still terminates with ``# EOF``."""
    async def scenario(_service, _server, client):
        await run_http_session(client, DEVICE, 1024)
        status, headers, body = await client.request("GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == OPENMETRICS_CONTENT_TYPE
        assert headers["transfer-encoding"] == "chunked"
        text = body.decode("utf-8")
        assert text.endswith("# EOF\n")
        assert text.count("# EOF") == 1
        assert "upkit_serve_sessions_closed_total" in text
        assert 'device="channel-stable"' in text

    serve(scenario)


# -- campaign CRUD over the wire ----------------------------------------------


def test_campaign_lifecycle_over_http(tmp_path):
    async def scenario(_service, _server, client):
        status, _h, raw = await client.request(
            "POST", "/campaigns",
            {"name": "wire", "devices": 4, "image_size": 2048,
             "wait": True})
        assert status == 201
        created = json.loads(raw)
        assert created["state"] == "done"
        assert len(created["report"]["updated"]) == 4
        assert created["journal"]["appends"] > 0
        status, _h, raw = await client.request("GET",
                                               "/campaigns/wire")
        assert status == 200
        assert json.loads(raw)["state"] == "done"
        status, _h, raw = await client.request("GET", "/campaigns")
        assert [c["name"] for c in json.loads(raw)["campaigns"]] \
            == ["wire"]
        # Duplicate create: structured 409.
        status, _h, raw = await client.request(
            "POST", "/campaigns", {"name": "wire"})
        assert status == 409
        assert json.loads(raw)["error"]["code"] == "campaign-exists"
        # Bad spec: structured 400.
        status, _h, raw = await client.request(
            "POST", "/campaigns", {"name": "wire2", "bogus": 1})
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "invalid-spec"
        status, _h, raw = await client.request("DELETE",
                                               "/campaigns/wire")
        assert status == 200
        status, _h, _raw = await client.request("GET",
                                                "/campaigns/wire")
        assert status == 404

    serve(scenario, journal_dir=str(tmp_path))


def test_paused_campaign_status_and_refresh_over_http():
    async def scenario(_service, _server, client):
        status, _h, raw = await client.request(
            "POST", "/campaigns",
            {"name": "slohttp", "devices": 8, "image_size": 2048,
             "slo_p95_seconds": 0.0001, "wait": True})
        assert status == 201
        paused = json.loads(raw)
        assert paused["state"] == "paused"
        assert paused["slo"]["verdict"] == "breached"
        assert "pause" in paused["slo"]["wave_actions"]
        status, _h, raw = await client.request(
            "POST", "/campaigns/slohttp/refresh",
            {"clear_slos": True, "wait": True})
        assert status == 200
        done = json.loads(raw)
        assert done["state"] == "done"
        assert len(done["report"]["updated"]) == 8

    serve(scenario)
