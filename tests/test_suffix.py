"""Suffix-array construction and match-search tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.suffix import (
    _build_python,
    build_suffix_array,
    longest_match,
)


def naive_suffix_array(data: bytes):
    return sorted(range(len(data)), key=lambda i: data[i:])


@pytest.mark.parametrize("data", [
    b"",
    b"a",
    b"banana",
    b"mississippi",
    b"aaaaaaa",
    b"abcabcabc",
    bytes(range(256)),
], ids=["empty", "single", "banana", "mississippi", "runs", "repeat",
        "alphabet"])
def test_matches_naive(data):
    assert build_suffix_array(data) == naive_suffix_array(data)


def test_python_fallback_matches_naive():
    data = b"the quick brown fox" * 5
    assert _build_python(data) == naive_suffix_array(data)


def test_numpy_and_python_agree():
    data = b"abracadabra arbadacarba" * 20  # > 64 bytes: numpy path
    assert build_suffix_array(data) == _build_python(data)


def test_longest_match_exact():
    old = b"0123456789abcdefghij"
    sa = build_suffix_array(old)
    pos, length = longest_match(old, sa, b"89abcd")
    assert old[pos:pos + length] == b"89abcd"
    assert length == 6


def test_longest_match_partial():
    old = b"hello world"
    sa = build_suffix_array(old)
    pos, length = longest_match(old, sa, b"worst")
    assert length == 3  # "wor"
    assert old[pos:pos + length] == b"wor"


def test_longest_match_no_match():
    old = b"aaaa"
    sa = build_suffix_array(old)
    _, length = longest_match(old, sa, b"zzzz")
    assert length == 0


def test_longest_match_empty_inputs():
    assert longest_match(b"", [], b"abc") == (0, 0)
    sa = build_suffix_array(b"abc")
    assert longest_match(b"abc", sa, b"") == (0, 0)


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=300))
def test_suffix_array_is_permutation_and_sorted(data):
    sa = build_suffix_array(data)
    assert sorted(sa) == list(range(len(data)))
    for left, right in zip(sa, sa[1:]):
        assert data[left:] <= data[right:]


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=120), st.binary(min_size=1,
                                                      max_size=40))
def test_longest_match_is_maximal(old, target):
    sa = build_suffix_array(old)
    pos, length = longest_match(old, sa, target)
    assert old[pos:pos + length] == target[:length]
    best = max(
        (len_common(old[i:], target) for i in range(len(old))), default=0)
    assert length == best


def len_common(a: bytes, b: bytes) -> int:
    count = 0
    for x, y in zip(a, b):
        if x != y:
            break
        count += 1
    return count
