"""Device-token tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DeviceToken,
    ManifestFormatError,
    NO_DIFF_SUPPORT,
    TOKEN_SIZE,
)


def test_pack_size():
    token = DeviceToken(1, 2, 3)
    assert len(token.pack()) == TOKEN_SIZE == 10


def test_pack_unpack_roundtrip():
    token = DeviceToken(device_id=0xA1B2C3D4, nonce=0x01020304,
                        current_version=77)
    assert DeviceToken.unpack(token.pack()) == token


def test_unpack_rejects_wrong_length():
    with pytest.raises(ManifestFormatError):
        DeviceToken.unpack(b"\x00" * 9)


@pytest.mark.parametrize("kwargs", [
    dict(device_id=2 ** 32, nonce=0, current_version=0),
    dict(device_id=-1, nonce=0, current_version=0),
    dict(device_id=0, nonce=2 ** 32, current_version=0),
    dict(device_id=0, nonce=0, current_version=2 ** 16),
])
def test_field_ranges(kwargs):
    with pytest.raises(ValueError):
        DeviceToken(**kwargs)


def test_differential_support_flag():
    assert not DeviceToken(1, 2, NO_DIFF_SUPPORT).supports_differential
    assert DeviceToken(1, 2, 5).supports_differential


def test_tokens_are_hashable_and_frozen():
    token = DeviceToken(1, 2, 3)
    assert token in {token}
    with pytest.raises(AttributeError):
        token.nonce = 99  # type: ignore[misc]


@settings(max_examples=40, deadline=None)
@given(
    device_id=st.integers(min_value=0, max_value=2 ** 32 - 1),
    nonce=st.integers(min_value=0, max_value=2 ** 32 - 1),
    current_version=st.integers(min_value=0, max_value=2 ** 16 - 1),
)
def test_roundtrip_property(device_id, nonce, current_version):
    token = DeviceToken(device_id, nonce, current_version)
    assert DeviceToken.unpack(token.pack()) == token
