"""The swarm bench: bounded tier-1 run, schema v6, baseline gate.

Tier-1 drives a small-but-real swarm (hundreds of full sessions over
TCP) and pins the artifact contract: zero failed sessions, the exact
endpoint mix, `cli report --validate` acceptance, and the `server`
section regression gate in both directions — including the v6
per-endpoint p50/p99 gate and the ``--profile`` phase breakdown.  The
acceptance-scale 10k swarm rides behind ``-m serve``.
"""

from __future__ import annotations

import asyncio
import copy
import json

import pytest

from repro.tools import swarm
from repro.tools.bench import compare_to_baseline
from repro.tools.cli import main
from repro.tools.report import load_report, validate_data

SESSIONS = 150


@pytest.fixture(scope="module")
def bench_doc():
    return swarm.run_benchmark(sessions=SESSIONS, concurrency=32,
                               image_size=4096, chunk_bytes=1024)


def test_bounded_swarm_has_zero_failed_sessions(bench_doc):
    server = bench_doc["server"]
    assert server["sessions"] == SESSIONS
    assert server["failed_sessions"] == 0
    assert server["failures"] == []
    assert server["served_devices"] == SESSIONS
    # Every session is the identical flow: register, token, manifest,
    # N ranged chunks (payload = image + manifest overhead), report.
    mix = server["endpoint_mix"]
    assert {cls: mix[cls] for cls in ("register", "token", "manifest",
                                      "report")} \
        == {"register": 1, "token": 1, "manifest": 1, "report": 1}
    assert mix["chunk"] >= 4096 // 1024
    assert server["requests"] == SESSIONS * sum(mix.values())
    assert server["req_per_s"] > 0
    assert server["p50_session_ms"] <= server["p99_session_ms"]
    for cls in swarm.ENDPOINT_CLASSES:
        entry = server["endpoints"][cls]
        assert entry["count"] == SESSIONS * server["endpoint_mix"][cls]
        assert entry["p50_ms"] <= entry["p99_ms"]
    assert server["peak_rss_kb"] > 0


def test_artifact_round_trips_through_validate(bench_doc, tmp_path):
    path = str(tmp_path / "BENCH_server.json")
    swarm.write_results(copy.deepcopy(bench_doc), path)
    kind, version, data = load_report(path)
    assert (kind, version) == ("bench", 6)
    assert validate_data(kind, version, data) == []
    assert main(["report", "--validate", path]) == 0


def test_validate_rejects_failed_sessions(bench_doc):
    broken = copy.deepcopy(bench_doc)
    broken["server"]["failed_sessions"] = 3
    errors = validate_data("bench", 6, broken)
    assert any("failed sessions" in error for error in errors)
    missing = copy.deepcopy(bench_doc)
    del missing["server"]["req_per_s"]
    errors = validate_data("bench", 6, missing)
    assert any("req_per_s" in error for error in errors)


def test_v6_validation_demands_every_endpoint_class(bench_doc):
    """v6 server-only artifacts must break out all five endpoint
    classes with numeric p50/p99 — that is what the per-endpoint
    gate compares; v5 artifacts are grandfathered."""
    partial = copy.deepcopy(bench_doc)
    del partial["server"]["endpoints"]["manifest"]
    errors = validate_data("bench", 6, partial)
    assert any("break out endpoint 'manifest'" in e for e in errors)
    assert validate_data("bench", 5, partial) == []
    hollow = copy.deepcopy(bench_doc)
    hollow["server"]["endpoints"]["token"]["p99_ms"] = None
    errors = validate_data("bench", 6, hollow)
    assert any("endpoint 'token' needs a numeric p99_ms" in e
               for e in errors)


def test_gate_passes_against_itself(bench_doc):
    assert compare_to_baseline(bench_doc, bench_doc) == []


def test_gate_names_regressions_in_both_directions(bench_doc):
    # Latency/RSS growth (lower-is-better metrics).
    for metric in ("p99_session_ms", "peak_rss_kb"):
        slower = copy.deepcopy(bench_doc)
        slower["server"][metric] = bench_doc["server"][metric] * 2.0
        problems = compare_to_baseline(slower, bench_doc)
        assert any("server %s regressed" % metric in p
                   for p in problems), (metric, problems)
    # Throughput drop (higher-is-better, inverted comparison).
    slower = copy.deepcopy(bench_doc)
    slower["server"]["req_per_s"] = \
        bench_doc["server"]["req_per_s"] * 0.5
    problems = compare_to_baseline(slower, bench_doc)
    assert len(problems) == 1
    assert "server req_per_s regressed" in problems[0]
    # Getting faster/leaner never trips the gate.
    faster = copy.deepcopy(bench_doc)
    faster["server"]["req_per_s"] *= 2.0
    faster["server"]["p99_session_ms"] *= 0.5
    assert compare_to_baseline(faster, bench_doc) == []


def test_gate_catches_per_endpoint_convoy(bench_doc):
    """A regression hiding inside one endpoint class (the convoy
    signature: manifest latency balloons while cheap chunk requests
    keep aggregate req/s respectable) trips the v6 per-endpoint
    gate in both comparison directions."""
    convoyed = copy.deepcopy(bench_doc)
    entry = convoyed["server"]["endpoints"]["manifest"]
    entry["p50_ms"] = bench_doc["server"]["endpoints"]["manifest"][
        "p50_ms"] * 10.0
    entry["p99_ms"] = bench_doc["server"]["endpoints"]["manifest"][
        "p99_ms"] * 10.0
    problems = compare_to_baseline(convoyed, bench_doc)
    assert any("server endpoint manifest p50_ms regressed" in p
               for p in problems), problems
    assert any("server endpoint manifest p99_ms regressed" in p
               for p in problems), problems
    # The other direction: the convoyed run as baseline never blocks
    # the faster run.
    assert compare_to_baseline(bench_doc, convoyed) == []
    # A v5-era baseline without a class's numbers is tolerated.
    legacy = copy.deepcopy(bench_doc)
    legacy["server"]["endpoints"]["manifest"]["p99_ms"] = None
    assert compare_to_baseline(bench_doc, legacy) == []


def test_profile_section_breaks_out_phases(tmp_path):
    """`cli swarm --profile` embeds a per-endpoint phase breakdown
    (queue wait / sign / serialize / write) aggregated from the
    server tracer, and the artifact still validates (v6 treats the
    profile block as optional but typed)."""
    doc = swarm.run_profiled_benchmark(sessions=20, concurrency=8,
                                       image_size=4096,
                                       chunk_bytes=1024)
    server = doc["server"]
    assert server["failed_sessions"] == 0
    profile = server["profile"]
    assert profile["failed_sessions_profiled"] == 0
    endpoints = profile["endpoints"]
    assert set(endpoints) == set(swarm.ENDPOINT_CLASSES)
    for cls in swarm.ENDPOINT_CLASSES:
        entry = endpoints[cls]
        assert entry["requests"] == 20 * server["endpoint_mix"][cls]
        phases = entry["phases"]
        assert set(phases) <= set(swarm.PROFILE_PHASES)
        for stats in phases.values():
            assert stats["count"] > 0
            assert stats["p50_ms"] <= stats["p99_ms"]
            assert stats["total_ms"] > 0
    # Manifests go through the signer pool: queue wait and the signing
    # service call must both be visible; plain control endpoints must
    # not record a queue wait.
    assert "queue_wait" in endpoints["manifest"]["phases"]
    assert "sign" in endpoints["manifest"]["phases"]
    assert endpoints["manifest"]["phases"]["sign"]["count"] == 20
    assert "queue_wait" not in endpoints["register"]["phases"]
    assert "write" in endpoints["chunk"]["phases"]
    path = str(tmp_path / "BENCH_profile.json")
    swarm.write_results(copy.deepcopy(doc), path)
    assert main(["report", "--validate", path]) == 0
    # A malformed profile block is rejected.
    broken = copy.deepcopy(doc)
    broken["server"]["profile"]["endpoints"]["manifest"] = {"x": 1}
    errors = validate_data("bench", 6, broken)
    assert any("profile endpoint 'manifest'" in e for e in errors)


def test_bench_embeds_signer_pool_delta(bench_doc):
    """The artifact carries this run's signer-pool and signature-cache
    activity, as a *delta* (the pool is process-wide): one dispatched
    job per manifest, and — because every token binds a distinct
    manifest — exactly one producer sign per session."""
    pool = bench_doc["server"]["signer_pool"]
    assert pool["jobs"] == SESSIONS          # one dispatch per manifest
    assert pool["signs"] == SESSIONS
    assert 1 <= pool["batches"] <= pool["jobs"]
    cache = pool["signature_cache"]
    assert cache["misses"] == SESSIONS       # one producer per token
    assert cache["hits"] == 0                # re-fetches never re-sign


def test_gate_demands_matching_workloads(bench_doc):
    for key, value in (("sessions", SESSIONS * 2),
                       ("image_bytes", 8192),
                       ("chunk_bytes", 512)):
        other = copy.deepcopy(bench_doc)
        other["server"][key] = value
        problems = compare_to_baseline(other, bench_doc)
        assert len(problems) == 1
        assert "regenerate the baseline" in problems[0]
    mixed = copy.deepcopy(bench_doc)
    mixed["server"]["endpoint_mix"]["chunk"] = 9
    problems = compare_to_baseline(mixed, bench_doc)
    assert "endpoint_mix" in problems[0]
    assert "regenerate the baseline" in problems[0]


def test_server_only_vs_campaign_docs_keep_the_legacy_error(bench_doc):
    campaign_doc = {"campaign": {"devices": 5}}
    assert compare_to_baseline(bench_doc, campaign_doc) \
        == ["baseline or current results carry no campaign section"]
    assert compare_to_baseline(campaign_doc, bench_doc) \
        == ["baseline or current results carry no campaign section"]


def test_cli_swarm_writes_and_gates(tmp_path, capsys):
    out = str(tmp_path / "BENCH_server.json")
    rc = main(["swarm", "--sessions", "40", "--concurrency", "16",
               "--image-size", "4096", "--chunk-bytes", "1024",
               "--out", out])
    assert rc == 0
    assert "swarm: 40 sessions (0 failed)" in capsys.readouterr().out
    assert main(["report", "--validate", out]) == 0
    # Gate the run against its own artifact: clean pass.
    rc = main(["swarm", "--sessions", "40", "--concurrency", "16",
               "--image-size", "4096", "--chunk-bytes", "1024",
               "--out", str(tmp_path / "fresh.json"),
               "--baseline", out, "--tolerance", "5.0"])
    assert rc == 0
    assert "within" in capsys.readouterr().out


def test_cli_swarm_fails_on_workload_mismatched_baseline(tmp_path,
                                                         capsys):
    baseline = str(tmp_path / "baseline.json")
    rc = main(["swarm", "--sessions", "20", "--concurrency", "8",
               "--image-size", "4096", "--chunk-bytes", "1024",
               "--out", baseline])
    assert rc == 0
    capsys.readouterr()
    rc = main(["swarm", "--sessions", "30", "--concurrency", "8",
               "--image-size", "4096", "--chunk-bytes", "1024",
               "--out", str(tmp_path / "fresh.json"),
               "--baseline", baseline])
    assert rc == 1
    assert "REGRESSION:" in capsys.readouterr().out


def test_mid_body_close_is_a_session_failure_not_an_abort():
    """A server that dies between chunk frames makes the chunk-size
    readline return b''; that must surface as SwarmError (which
    ``run_swarm`` counts as one failed session), not an uncaught
    ValueError that detonates the whole gather."""
    async def main():
        client = swarm.SwarmHttpClient("127.0.0.1", 1)
        reader = asyncio.StreamReader()
        reader.feed_data(b"HTTP/1.1 200 OK\r\n"
                         b"Transfer-Encoding: chunked\r\n\r\n"
                         b"4\r\nabcd\r\n")      # one chunk lands...
        reader.feed_eof()                       # ...then the peer dies
        client._reader = reader
        with pytest.raises(swarm.SwarmError):
            await client._read_response()

    asyncio.run(main())


# -- acceptance scale (opt-in) ------------------------------------------------


@pytest.mark.serve
def test_ten_thousand_session_swarm_is_fully_correct(tmp_path):
    """The acceptance run: 10k sessions, zero failures, artifact
    accepted by validate and self-gating — and the convoy stays
    dead: ≥3,500 req/s, manifest p50 under 100 ms, and every control
    endpoint's p99 within 3x of its p50."""
    doc = swarm.run_benchmark(sessions=10_000, concurrency=256,
                              image_size=8192, chunk_bytes=2048)
    server = doc["server"]
    assert server["failed_sessions"] == 0
    assert server["sessions"] == 10_000
    assert server["req_per_s"] >= 3_500
    endpoints = server["endpoints"]
    assert endpoints["manifest"]["p50_ms"] < 100.0
    for cls in ("register", "token", "report"):
        entry = endpoints[cls]
        assert entry["p99_ms"] <= 3.0 * entry["p50_ms"], (cls, entry)
    path = str(tmp_path / "BENCH_server.json")
    swarm.write_results(copy.deepcopy(doc), path)
    assert main(["report", "--validate", path]) == 0
    assert compare_to_baseline(doc, doc) == []
