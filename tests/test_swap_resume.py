"""ResumableSwap interrupted at every *step boundary*.

``test_swap.py`` interrupts at flash-operation granularity; this file
pins down the journal protocol itself: power lost exactly after step
``k`` committed its marker (for every k), after the header became
durable but before step 1, and during the final journal-clear erase.
Each boundary must leave a journal from which a fresh ``ResumableSwap``
finishes the swap with both images intact.
"""

from __future__ import annotations

import struct

import pytest

from repro.memory import (
    FlashMemory,
    MemoryLayout,
    OpenMode,
    PowerLossError,
    ResumableSwap,
)
from repro.memory.swap import _STEPS_PER_PAIR, MAGIC

PAGE = 4096
PAIRS = 3
TOTAL_STEPS = PAIRS * _STEPS_PER_PAIR


class StopAtBoundary(ResumableSwap):
    """A swap that loses power right after ``stop_after`` journal steps.

    ``stop_after == 0`` stops after the header write — the journal is
    durable but no step has run yet.
    """

    def __init__(self, bootable, staging, status, stop_after: int) -> None:
        super().__init__(bootable, staging, status)
        self.stop_after = stop_after
        self.steps_done = 0

    def _write_journal_header(self, extent, pair_count):
        super()._write_journal_header(extent, pair_count)
        if self.stop_after == 0:
            raise PowerLossError("power lost at boundary 0")

    def _mark(self, pair, step):
        super()._mark(pair, step)
        self.steps_done += 1
        if self.steps_done == self.stop_after:
            raise PowerLossError(
                "power lost at boundary %d" % self.stop_after)


def fill(slot, pattern: int, length: int) -> bytes:
    data = bytes([pattern]) * length
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.write(data)
    handle.close()
    return data


def make_slots():
    internal = FlashMemory(96 * 1024, page_size=PAGE, name="int")
    layout = MemoryLayout.configuration_b(internal, 32 * 1024)
    a, b = layout.get("a"), layout.get("b")
    status = layout.status_slot
    data_a = fill(a, 0xAA, PAIRS * PAGE)
    data_b = fill(b, 0xBB, PAIRS * PAGE)
    return a, b, status, data_a, data_b


@pytest.mark.parametrize("boundary", range(TOTAL_STEPS + 1))
def test_resume_from_every_step_boundary(boundary):
    a, b, status, data_a, data_b = make_slots()
    with pytest.raises(PowerLossError):
        StopAtBoundary(a, b, status, stop_after=boundary).swap(PAIRS * PAGE)

    pending = ResumableSwap.pending(status)
    assert pending is not None, "journal lost at boundary %d" % boundary
    assert pending.progress.count(True) == boundary
    if boundary < TOTAL_STEPS:
        assert pending.first_pending() \
            == divmod(boundary, _STEPS_PER_PAIR)
    else:
        assert pending.complete

    ResumableSwap(a, b, status).resume(pending)
    assert a.read(0, PAIRS * PAGE) == data_b, "boundary %d" % boundary
    assert b.read(0, PAIRS * PAGE) == data_a, "boundary %d" % boundary
    assert ResumableSwap.pending(status) is None


def test_scratch_holds_bootable_page_at_step_one_boundary():
    """After step (pair, 0) the scratch page is the only copy of A[pair]
    about to be erased — boundary state must preserve it exactly."""
    a, b, status, data_a, _ = make_slots()
    with pytest.raises(PowerLossError):
        StopAtBoundary(a, b, status, stop_after=4).swap(PAIRS * PAGE)
    # Boundary 4 = pair 1 just finished step 0 (copy A[1] → scratch).
    scratch = status.read(status.flash.page_size, PAGE)
    assert scratch == data_a[PAGE:2 * PAGE]
    # Pair 0 already swapped; pair 1 untouched beyond the scratch copy.
    assert a.read(PAGE, PAGE) == data_a[PAGE:2 * PAGE]


def test_double_boundary_interruption_still_converges():
    """Lose power at a boundary, then again at a later boundary during
    the resume; the second resume must still finish."""
    a, b, status, data_a, data_b = make_slots()
    with pytest.raises(PowerLossError):
        StopAtBoundary(a, b, status, stop_after=2).swap(PAIRS * PAGE)

    pending = ResumableSwap.pending(status)
    resumer = StopAtBoundary(a, b, status, stop_after=5)
    resumer.steps_done = pending.progress.count(True)
    with pytest.raises(PowerLossError):
        resumer.resume(pending)

    pending = ResumableSwap.pending(status)
    assert pending.progress.count(True) == 5
    ResumableSwap(a, b, status).resume(pending)
    assert a.read(0, PAIRS * PAGE) == data_b
    assert b.read(0, PAIRS * PAGE) == data_a


def test_interrupted_journal_clear_still_reads_complete():
    """Power lost *during the journal-clear erase*: the interrupted
    erase clears the page tail first, so the header and markers at the
    head survive — the journal still parses as complete and the next
    resume finishes the clear instead of redoing (or losing) the swap."""
    a, b, status, data_a, data_b = make_slots()
    ResumableSwap(a, b, status).swap(PAIRS * PAGE)
    assert a.read(0, PAIRS * PAGE) == data_b

    # Reconstruct the completed journal, then interrupt its erase.
    header = struct.pack(">4sIII", MAGIC, PAIRS * PAGE, PAGE, PAIRS)
    status.write(0, header)
    status.write(len(header), b"\x00" * TOTAL_STEPS)
    status.flash.inject_power_loss(0, during="erase")
    pending = ResumableSwap.pending(status)
    assert pending is not None and pending.complete
    with pytest.raises(PowerLossError):
        ResumableSwap(a, b, status).resume(pending)
    status.flash.clear_fault()

    # The half-erased page kept its head: still a complete journal.
    pending = ResumableSwap.pending(status)
    assert pending is not None and pending.complete
    ResumableSwap(a, b, status).resume(pending)
    assert ResumableSwap.pending(status) is None
    # The images were never touched again.
    assert a.read(0, PAIRS * PAGE) == data_b
    assert b.read(0, PAIRS * PAGE) == data_a
