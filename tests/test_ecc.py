"""secp256r1 curve arithmetic tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import CurveError, P256
from repro.crypto.ecc import INFINITY, Point

G = P256.generator


def test_generator_is_on_curve():
    assert P256.contains(G)


def test_infinity_is_on_curve():
    assert P256.contains(INFINITY)
    assert INFINITY.is_infinity


def test_off_curve_point_rejected():
    assert not P256.contains(Point(G.x, (G.y + 1) % P256.p))


def test_group_order():
    assert P256.multiply(P256.n, G).is_infinity


def test_add_identity():
    assert P256.add(G, INFINITY) == G
    assert P256.add(INFINITY, G) == G


def test_add_inverse_is_infinity():
    neg = Point(G.x, (-G.y) % P256.p)
    assert P256.add(G, neg).is_infinity


def test_doubling_matches_addition():
    assert P256.add(G, G) == P256.multiply(2, G)


def test_scalar_multiplication_distributes():
    lhs = P256.multiply(7, G)
    rhs = P256.add(P256.multiply(3, G), P256.multiply(4, G))
    assert lhs == rhs


def test_multiply_zero_gives_infinity():
    assert P256.multiply(0, G).is_infinity


def test_multiply_known_vector():
    # 2G for P-256, from the NIST/SECG point-multiplication test vectors.
    two_g = P256.multiply(2, G)
    assert two_g.x == int(
        "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978",
        16)
    assert two_g.y == int(
        "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1",
        16)


def test_encode_decode_roundtrip():
    point = P256.multiply(12345, G)
    assert P256.decode(point.encode()) == point


def test_decode_rejects_bad_prefix():
    encoded = bytearray(G.encode())
    encoded[0] = 0x02
    with pytest.raises(CurveError):
        P256.decode(bytes(encoded))


def test_decode_rejects_wrong_length():
    with pytest.raises(CurveError):
        P256.decode(G.encode()[:-1])


def test_decode_rejects_off_curve():
    encoded = bytearray(G.encode())
    encoded[64] ^= 1
    with pytest.raises(CurveError):
        P256.decode(bytes(encoded))


def test_encode_infinity_raises():
    with pytest.raises(CurveError):
        INFINITY.encode()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=P256.n - 1),
       st.integers(min_value=1, max_value=P256.n - 1))
def test_double_multiply_matches_naive(u1, u2):
    point = P256.multiply(999, G)
    expected = P256.add(P256.multiply(u1, G), P256.multiply(u2, point))
    assert P256.double_multiply(u1, u2, point) == expected


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=P256.n - 1))
def test_multiply_wraps_modulo_order(k):
    assert P256.multiply(k, G) == P256.multiply(k + P256.n, G)
