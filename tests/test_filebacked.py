"""File-backed slot tests (the paper's 'assign a Linux file to each slot')."""

from __future__ import annotations

import pytest

from repro.memory import FileSlot, OpenMode, SlotIOError


@pytest.fixture()
def slot(tmp_path):
    return FileSlot(tmp_path / "slot-a.bin", size=8192, bootable=True)


def test_creates_file_filled_with_ff(slot, tmp_path):
    path = tmp_path / "slot-a.bin"
    assert path.exists()
    assert path.read_bytes() == b"\xff" * 8192


def test_reopen_existing_file(tmp_path):
    FileSlot(tmp_path / "s.bin", size=4096)
    again = FileSlot(tmp_path / "s.bin", size=4096)
    assert again.size == 4096


def test_reopen_with_wrong_size_rejected(tmp_path):
    FileSlot(tmp_path / "s.bin", size=4096)
    with pytest.raises(SlotIOError):
        FileSlot(tmp_path / "s.bin", size=8192)


def test_write_persists_to_disk(slot, tmp_path):
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.write(b"persistent image")
    assert (tmp_path / "slot-a.bin").read_bytes()[:16] == b"persistent image"


def test_read_modes(slot):
    slot.open(OpenMode.WRITE_ALL).write(b"0123456789")
    handle = slot.open(OpenMode.READ_ONLY)
    assert handle.read(4) == b"0123"
    assert handle.read_at(6, 4) == b"6789"
    handle.seek(8)
    # Reads clamp at the slot boundary; unwritten bytes read back erased.
    assert handle.read(10) == b"89" + b"\xff" * 8


def test_read_only_rejects_write(slot):
    with pytest.raises(SlotIOError):
        slot.open(OpenMode.READ_ONLY).write(b"x")


def test_write_overflow_rejected(slot):
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.seek(slot.size - 2)
    with pytest.raises(SlotIOError):
        handle.write(b"xxxx")


def test_erase_resets_content(slot):
    slot.open(OpenMode.WRITE_ALL).write(b"data")
    slot.erase()
    assert slot.read(0, 4) == b"\xff\xff\xff\xff"


def test_invalidate_clears_head(slot):
    slot.open(OpenMode.WRITE_ALL).write(b"\x00" * 8192)
    slot.invalidate()
    assert slot.read(0, 16) == b"\xff" * 16


def test_closed_handle(slot):
    handle = slot.open(OpenMode.READ_ONLY)
    handle.close()
    with pytest.raises(SlotIOError):
        handle.read(1)


def test_context_manager(slot):
    with slot.open(OpenMode.WRITE_ALL) as handle:
        handle.write(b"ctx")
    assert slot.read(0, 3) == b"ctx"


def test_invalid_size():
    with pytest.raises(ValueError):
        FileSlot("whatever.bin", size=0)


def test_name_defaults_to_basename(tmp_path):
    slot = FileSlot(tmp_path / "my-slot.bin", size=4096)
    assert slot.name == "my-slot.bin"
