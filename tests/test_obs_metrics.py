"""Unit tests for the metrics registry and the stats-surfacing binds."""

import pytest

from repro.crypto import use_engine
from repro.crypto.engine import FastEngine
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_engine,
    bind_server,
)


def test_counter_only_goes_up():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.to_value() == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_inc():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.inc(-3)
    assert gauge.to_value() == 7.0


def test_histogram_bucket_placement():
    histogram = Histogram("h", buckets=(1.0, 5.0))
    for value in (0.5, 0.9, 3.0, 100.0):
        histogram.observe(value)
    snap = histogram.to_value()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(104.4)
    assert snap["buckets"] == {"1": 2, "5": 1, "+Inf": 1}


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(5.0, 1.0))


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_snapshot_runs_collectors_and_sorts():
    registry = MetricsRegistry()
    registry.counter("zz").inc()
    registry.add_collector(lambda reg: reg.gauge("aa").set(1))
    snapshot = registry.snapshot()
    assert list(snapshot) == ["aa", "zz"]
    assert snapshot["aa"] == 1.0


def test_format_table_renders_every_metric():
    registry = MetricsRegistry()
    registry.counter("bytes").inc(42)
    registry.histogram("lat", (1.0,)).observe(0.5)
    table = registry.format_table()
    assert "bytes" in table and "42" in table
    assert "count=1" in table


def test_bind_engine_surfaces_verify_cache_counters():
    """Satellite: the fast engine's LRU verify-cache counters surface
    as ``crypto.*`` gauges."""
    engine = FastEngine()
    registry = MetricsRegistry()
    bind_engine(registry, engine)
    engine.stats.verify_calls = 7
    engine.stats.verify_cache_hits = 3
    snapshot = registry.snapshot()
    assert snapshot["crypto.verify_calls"] == 7
    assert snapshot["crypto.verify_cache_hits"] == 3
    assert "crypto.key_tables_built" in snapshot
    assert "crypto.key_tables_evicted" in snapshot


def test_bind_engine_tolerates_statless_reference_engine():
    registry = MetricsRegistry()
    with use_engine("reference") as engine:
        bind_engine(registry, engine)
        assert "crypto.verify_calls" not in registry.snapshot()


def test_bind_server_surfaces_delta_cache_stats(server):
    """Satellite: delta-cache hit/eviction stats surface as
    ``server.*`` gauges."""
    registry = MetricsRegistry()
    bind_server(registry, server)
    server.stats.delta_cache_hits = 4
    server.stats.delta_cache_evictions = 2
    snapshot = registry.snapshot()
    assert snapshot["server.delta_cache_hits"] == 4
    assert snapshot["server.delta_cache_evictions"] == 2
    assert "server.bytes_served" in snapshot


def test_device_registry_reports_flash_time_and_energy():
    from repro.sim import Testbed

    bed = Testbed.create()
    generator_firmware = b"\xAB" * 2048
    bed.release(generator_firmware, 2)
    outcome = bed.push_update()
    assert outcome.success
    snapshot = bed.device.metrics.snapshot()
    assert snapshot["flash.bytes_written"] > 0
    assert snapshot["energy.total_mj"] > 0
    assert snapshot["time.propagation_seconds"] > 0
    assert snapshot["update.latency_seconds"]["count"] == 1
    assert snapshot["net.bytes_over_air"] == outcome.bytes_over_air
    # Pipeline stage accounting flushed once at finish.
    assert snapshot["pipeline.bytes_written"] > 0
    assert snapshot["events.boot_selected"] >= 1
