"""Parallel wave executor tests: same campaign, same report, any executor.

The parallel executor exists to make real wall-clock approach the
within-wave-parallel model the report already claims — it must never
change *what* the campaign computes.  These tests run bit-identical
seeded fleets under the serial and the parallel executor and require
identical ``CampaignReport`` contents, device states, and installed
versions, in success, failure, and abort scenarios.
"""

from __future__ import annotations

from typing import List, Optional, Set

import pytest

from repro.core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.crypto import use_engine
from repro.fleet import (
    Campaign,
    DeviceRecord,
    ParallelWaveExecutor,
    RolloutPolicy,
    SerialWaveExecutor,
)
from repro.memory import MemoryLayout
from repro.net import ManifestTamperer
from repro.platform import NRF52840, ZEPHYR
from repro.sim import SimulatedDevice
from repro.workload import FirmwareGenerator
from tests.conftest import APP_ID, LINK_OFFSET

IMAGE_SIZE = 8 * 1024


def build_campaign(executor, count: int = 8,
                   flaky: Optional[Set[int]] = None,
                   policy: Optional[RolloutPolicy] = None) -> Campaign:
    """A deterministic fleet at v1 with v2 published."""
    flaky = flaky or set()
    generator = FirmwareGenerator(seed=b"fleet-parallel")
    fw_v1 = generator.firmware(IMAGE_SIZE, image_id=1)
    fw_v2 = generator.app_functionality_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))

    fleet: List[DeviceRecord] = []
    for index in range(count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x3000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="dev-%02d" % index,
            device=device,
            transport="pull" if index % 2 else "push",
            interceptor=ManifestTamperer() if index in flaky else None,
        ))

    server.publish(vendor.release(fw_v2, 2))
    return Campaign(server, fleet,
                    policy or RolloutPolicy(canary_fraction=0.25),
                    executor=executor)


def run_and_snapshot(campaign: Campaign):
    with use_engine("fast"):
        report = campaign.run()
    return (
        report.to_dict(),
        {record.name: record.state for record in campaign.fleet},
        {record.name: record.attempts for record in campaign.fleet},
        {record.name: record.device.installed_version()
         for record in campaign.fleet},
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_parallel_report_identical_on_success(workers):
    serial = run_and_snapshot(build_campaign(SerialWaveExecutor()))
    parallel = run_and_snapshot(
        build_campaign(ParallelWaveExecutor(max_workers=workers)))
    assert serial == parallel
    report = parallel[0]
    assert not report["aborted"]
    assert len(report["updated"]) == 8


def test_parallel_report_identical_with_failures():
    """A flaky non-canary device: retries and the failure list match."""
    policy = RolloutPolicy(canary_fraction=0.25, abort_failure_rate=0.5,
                           max_attempts=2)
    serial = run_and_snapshot(
        build_campaign(SerialWaveExecutor(), flaky={5}, policy=policy))
    parallel = run_and_snapshot(
        build_campaign(ParallelWaveExecutor(max_workers=4), flaky={5},
                       policy=policy))
    assert serial == parallel
    assert serial[0]["failed"] == ["dev-05"]


def test_parallel_report_identical_on_abort():
    """All canaries fail: both executors abort and skip the rest."""
    policy = RolloutPolicy(canary_fraction=0.25, abort_failure_rate=0.5,
                           max_attempts=1)
    serial = run_and_snapshot(
        build_campaign(SerialWaveExecutor(), flaky={0, 1},
                       policy=policy))
    parallel = run_and_snapshot(
        build_campaign(ParallelWaveExecutor(max_workers=4),
                       flaky={0, 1}, policy=policy))
    assert serial == parallel
    assert serial[0]["aborted"]
    assert len(serial[0]["skipped"]) == 6


def test_parallel_identical_under_both_engines():
    """Executor parity holds on the reference engine too (small fleet)."""
    with use_engine("reference"):
        serial = build_campaign(SerialWaveExecutor(), count=3).run()
        parallel = build_campaign(ParallelWaveExecutor(max_workers=3),
                                  count=3).run()
    assert serial.to_dict() == parallel.to_dict()


def test_chunked_dispatch_covers_every_device():
    """chunk_size smaller than the wave still updates everyone once."""
    executor = ParallelWaveExecutor(max_workers=2, chunk_size=3)
    snapshot = run_and_snapshot(build_campaign(executor, count=10))
    report, _, attempts, versions = snapshot
    assert len(report["updated"]) == 10
    assert all(count == 1 for count in attempts.values())
    assert all(version == 2 for version in versions.values())


def test_executor_validation():
    with pytest.raises(ValueError):
        ParallelWaveExecutor(max_workers=0)
    with pytest.raises(ValueError):
        ParallelWaveExecutor(chunk_size=0)


def test_default_executor_is_serial():
    campaign = build_campaign(None)
    assert isinstance(campaign.executor, SerialWaveExecutor)


def test_parallel_executor_defaults():
    executor = ParallelWaveExecutor()
    assert 1 <= executor.max_workers <= 16
    assert executor.chunk_size == 4 * executor.max_workers
