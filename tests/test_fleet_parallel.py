"""Parallel wave executor tests: same campaign, same report, any executor.

The parallel executor exists to make real wall-clock approach the
within-wave-parallel model the report already claims — it must never
change *what* the campaign computes.  These tests run bit-identical
seeded fleets under the serial and the parallel executor and require
identical ``CampaignReport`` contents, device states, and installed
versions, in success, failure, and abort scenarios.
"""

from __future__ import annotations

from typing import List, Optional, Set

import pytest

from repro.core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.crypto import use_engine
from repro.fleet import (
    Calibration,
    Campaign,
    DeviceRecord,
    ParallelWaveExecutor,
    ProcessWaveExecutor,
    RolloutPolicy,
    SerialWaveExecutor,
    calibrate,
    select_executor,
)
from repro.memory import MemoryLayout
from repro.net import ManifestTamperer
from repro.platform import NRF52840, ZEPHYR
from repro.sim import SimulatedDevice
from repro.workload import FirmwareGenerator
from tests.conftest import APP_ID, LINK_OFFSET

IMAGE_SIZE = 8 * 1024


def build_campaign(executor, count: int = 8,
                   flaky: Optional[Set[int]] = None,
                   policy: Optional[RolloutPolicy] = None) -> Campaign:
    """A deterministic fleet at v1 with v2 published."""
    flaky = flaky or set()
    generator = FirmwareGenerator(seed=b"fleet-parallel")
    fw_v1 = generator.firmware(IMAGE_SIZE, image_id=1)
    fw_v2 = generator.app_functionality_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))

    fleet: List[DeviceRecord] = []
    for index in range(count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x3000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="dev-%02d" % index,
            device=device,
            transport="pull" if index % 2 else "push",
            interceptor=ManifestTamperer() if index in flaky else None,
        ))

    server.publish(vendor.release(fw_v2, 2))
    return Campaign(server, fleet,
                    policy or RolloutPolicy(canary_fraction=0.25),
                    executor=executor)


def run_and_snapshot(campaign: Campaign):
    with use_engine("fast"):
        report = campaign.run()
    return (
        report.to_dict(),
        {record.name: record.state for record in campaign.fleet},
        {record.name: record.attempts for record in campaign.fleet},
        {record.name: record.device.installed_version()
         for record in campaign.fleet},
    )


#: Pooled executor factories the parity suite runs against serial.
#: Fresh instances per test — the process pool is closed after use.
POOLED = [
    pytest.param(lambda: ParallelWaveExecutor(max_workers=4),
                 id="threads"),
    pytest.param(lambda: ProcessWaveExecutor(max_workers=2),
                 id="processes"),
]


def run_pooled(make_executor, **kwargs):
    """Build + run a campaign on a pooled executor, then reap its pool."""
    executor = make_executor()
    try:
        return run_and_snapshot(build_campaign(executor, **kwargs))
    finally:
        executor.close()


@pytest.mark.parametrize("workers", [1, 4])
def test_parallel_report_identical_on_success(workers):
    serial = run_and_snapshot(build_campaign(SerialWaveExecutor()))
    parallel = run_and_snapshot(
        build_campaign(ParallelWaveExecutor(max_workers=workers)))
    assert serial == parallel
    report = parallel[0]
    assert not report["aborted"]
    assert len(report["updated"]) == 8


def test_process_report_identical_on_success():
    serial = run_and_snapshot(build_campaign(SerialWaveExecutor()))
    pooled = run_pooled(lambda: ProcessWaveExecutor(max_workers=2))
    assert serial == pooled
    assert len(pooled[0]["updated"]) == 8


@pytest.mark.parametrize("make_executor", POOLED)
def test_pooled_report_identical_with_failures(make_executor):
    """A flaky non-canary device: retries and the failure list match."""
    policy = RolloutPolicy(canary_fraction=0.25, abort_failure_rate=0.5,
                           max_attempts=2)
    serial = run_and_snapshot(
        build_campaign(SerialWaveExecutor(), flaky={5}, policy=policy))
    pooled = run_pooled(make_executor, flaky={5}, policy=policy)
    assert serial == pooled
    assert serial[0]["failed"] == ["dev-05"]


@pytest.mark.parametrize("make_executor", POOLED)
def test_pooled_report_identical_on_abort(make_executor):
    """All canaries fail: both executors abort and skip the rest."""
    policy = RolloutPolicy(canary_fraction=0.25, abort_failure_rate=0.5,
                           max_attempts=1)
    serial = run_and_snapshot(
        build_campaign(SerialWaveExecutor(), flaky={0, 1},
                       policy=policy))
    pooled = run_pooled(make_executor, flaky={0, 1}, policy=policy)
    assert serial == pooled
    assert serial[0]["aborted"]
    assert len(serial[0]["skipped"]) == 6


def test_parallel_identical_under_both_engines():
    """Executor parity holds on the reference engine too (small fleet)."""
    with use_engine("reference"):
        serial = build_campaign(SerialWaveExecutor(), count=3).run()
        parallel = build_campaign(ParallelWaveExecutor(max_workers=3),
                                  count=3).run()
    assert serial.to_dict() == parallel.to_dict()


def test_chunked_dispatch_covers_every_device():
    """chunk_size smaller than the wave still updates everyone once."""
    executor = ParallelWaveExecutor(max_workers=2, chunk_size=3)
    snapshot = run_and_snapshot(build_campaign(executor, count=10))
    report, _, attempts, versions = snapshot
    assert len(report["updated"]) == 10
    assert all(count == 1 for count in attempts.values())
    assert all(version == 2 for version in versions.values())


def test_process_chunked_dispatch_covers_every_device():
    """One chunk per record still touches every device exactly once."""
    executor = ProcessWaveExecutor(max_workers=2, chunk_size=2)
    try:
        report, _, attempts, versions = run_and_snapshot(
            build_campaign(executor, count=6))
    finally:
        executor.close()
    assert len(report["updated"]) == 6
    assert all(count == 1 for count in attempts.values())
    assert all(version == 2 for version in versions.values())


def test_process_merges_server_state():
    """Worker-side server activity lands back on the parent server."""
    executor = ProcessWaveExecutor(max_workers=2)
    campaign = build_campaign(executor, count=6)
    try:
        with use_engine("fast"):
            campaign.run()
    finally:
        executor.close()
    stats = campaign.server.stats
    # Every device requested an update; half the fleet (the v1-aware
    # pull devices) took deltas — worker counters merged, not lost.
    assert stats.requests >= 6
    assert stats.delta_updates > 0
    # The delta generated inside a worker was adopted by the parent's
    # version-pair cache and its content-addressed layer.
    assert (1, 2) in campaign.server.delta_cache_keys()
    assert len(campaign.server.artifacts) > 0


def test_process_single_worker_runs_in_process():
    """max_workers=1 degenerates to in-process serial execution."""
    executor = ProcessWaveExecutor(max_workers=1)
    serial = run_and_snapshot(build_campaign(SerialWaveExecutor()))
    pooled = run_and_snapshot(build_campaign(executor))
    executor.close()
    assert executor._pool is None  # never spawned a pool
    assert serial == pooled


def test_executor_validation():
    with pytest.raises(ValueError):
        ParallelWaveExecutor(max_workers=0)
    with pytest.raises(ValueError):
        ParallelWaveExecutor(chunk_size=0)
    with pytest.raises(ValueError):
        ProcessWaveExecutor(max_workers=0)
    with pytest.raises(ValueError):
        ProcessWaveExecutor(chunk_size=0)


def test_default_executor_is_serial():
    campaign = build_campaign(None)
    assert isinstance(campaign.executor, SerialWaveExecutor)


def test_parallel_executor_defaults():
    executor = ParallelWaveExecutor()
    assert 1 <= executor.max_workers <= 16
    assert executor.chunk_size == 4 * executor.max_workers


def test_thread_pool_persists_across_waves():
    """The regression fix: one pool serves every wave, then close()."""
    executor = ParallelWaveExecutor(max_workers=2)
    campaign = build_campaign(executor, count=8)
    with use_engine("fast"):
        campaign.run()
    assert executor._pool is not None  # survived past the first wave
    first_pool = executor._pool
    with use_engine("fast"):
        executor.run_wave(lambda record, target: None,
                          campaign.fleet[:4], 2)
    assert executor._pool is first_pool
    executor.close()
    assert executor._pool is None


# -- calibration-driven selection --------------------------------------------


def _calibration(cpu_count, pickle_seconds=1e-3, dispatch_seconds=1e-5):
    return Calibration(dispatch_seconds=dispatch_seconds,
                       pickle_seconds=pickle_seconds,
                       cpu_count=cpu_count)


def test_calibrate_measures_real_costs():
    record = build_campaign(SerialWaveExecutor(), count=1).fleet[0]
    calibration = calibrate(sample_record=record)
    assert calibration.dispatch_seconds > 0.0
    assert calibration.pickle_seconds > 0.0
    assert calibration.cpu_count >= 1
    assert set(calibration.to_dict()) == {
        "dispatch_seconds", "pickle_seconds", "cpu_count"}


def test_select_serial_for_tiny_waves():
    chosen = select_executor(1, calibration=_calibration(8))
    assert isinstance(chosen, SerialWaveExecutor)
    chosen = select_executor(50, max_workers=1,
                             calibration=_calibration(8))
    assert isinstance(chosen, SerialWaveExecutor)


def test_select_threads_for_io_dominated_waves():
    """I/O waits release the GIL, so threads win even on one core."""
    chosen = select_executor(50, io_fraction=0.9,
                             calibration=_calibration(1))
    assert isinstance(chosen, ParallelWaveExecutor)


def test_select_serial_on_single_core_cpu_bound():
    """The GIL finding: one core + CPU-bound work → serial wins."""
    chosen = select_executor(50, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=_calibration(1))
    assert isinstance(chosen, SerialWaveExecutor)


def test_select_processes_for_multicore_cpu_bound():
    chosen = select_executor(50, io_fraction=0.0,
                             per_device_seconds=0.5,
                             calibration=_calibration(8, 1e-3))
    assert isinstance(chosen, ProcessWaveExecutor)
    chosen.close()


def test_select_serial_when_work_cannot_amortise_pickle():
    chosen = select_executor(50, io_fraction=0.0,
                             per_device_seconds=1e-4,
                             calibration=_calibration(8, 1e-3))
    assert isinstance(chosen, SerialWaveExecutor)
