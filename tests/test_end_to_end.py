"""Integration tests: whole-system update flows across configurations."""

from __future__ import annotations

import pytest

from repro.core import (
    DeviceProfile,
    ENVELOPE_SIZE,
    TrustAnchors,
    UpdateAgent,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.crypto import StreamCipher, get_backend
from repro.memory import FileSlot, MemoryLayout, OpenMode
from repro.platform import CC2538, CC2650, NRF52840, CONTIKI, RIOT, ZEPHYR
from repro.sim import Testbed
from tests.conftest import APP_ID, DEVICE_ID, LINK_OFFSET


@pytest.mark.parametrize("board,os_profile,crypto", [
    (NRF52840, ZEPHYR, "tinycrypt"),
    (CC2538, RIOT, "tinydtls"),
    (CC2650, CONTIKI, "cryptoauthlib"),
], ids=["nrf52840-zephyr", "cc2538-riot", "cc2650-contiki"])
def test_pull_update_across_platforms(board, os_profile, crypto,
                                      firmware_gen):
    """The portability claim: the same flow works on every port."""
    fw_v1 = firmware_gen.firmware(12 * 1024, image_id=1)
    bed = Testbed.create(
        board=board, os_profile=os_profile, crypto_library=crypto,
        slot_configuration="b" if board is CC2650 else "a",
        slot_size=48 * 1024, initial_firmware=fw_v1,
    )
    bed.release(firmware_gen.os_version_change(fw_v1, revision=2), 2)
    outcome = bed.pull_update()
    assert outcome.success and outcome.booted_version == 2


def test_three_version_chain_with_deltas(firmware_gen):
    """v1 → v2 → v3, each step a differential update."""
    fw = firmware_gen.firmware(20 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw, slot_size=64 * 1024)
    current = fw
    for version in (2, 3):
        current = firmware_gen.os_version_change(current, revision=version)
        bed.release(current, version)
        outcome = bed.push_update()
        assert outcome.success and outcome.booted_version == version
        assert bed.server.stats.delta_updates == version - 1


def test_update_skipping_versions(firmware_gen):
    """Device on v1, server publishes v2 and v3: it jumps straight to v3."""
    fw_v1 = firmware_gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    fw_v2 = firmware_gen.os_version_change(fw_v1, revision=2)
    fw_v3 = firmware_gen.os_version_change(fw_v2, revision=3)
    bed.release(fw_v2, 2)
    bed.release(fw_v3, 3)
    outcome = bed.push_update()
    assert outcome.booted_version == 3
    # Delta was computed against v1, which the server still has.
    assert bed.server.stats.delta_updates == 1


def test_ab_alternates_slots(firmware_gen):
    fw = firmware_gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw, slot_size=64 * 1024)
    slots = []
    current = fw
    for version in (2, 3):
        current = firmware_gen.app_functionality_change(current,
                                                        revision=version)
        bed.release(current, version)
        outcome = bed.push_update()
        assert outcome.success
        result = bed.device.bootloader.boot()
        slots.append(result.slot.name)
    assert slots == ["b", "a"]  # ping-pong between the two bootable slots


def test_static_config_full_cycle(firmware_gen):
    fw_v1 = firmware_gen.firmware(16 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_configuration="b",
                         slot_size=64 * 1024)
    fw_v2 = firmware_gen.os_version_change(fw_v1, revision=2)
    bed.release(fw_v2, 2)
    outcome = bed.pull_update()
    assert outcome.success and outcome.booted_version == 2
    # In static mode the bootable slot was rewritten via a swap.
    slot_a = bed.device.layout.get("a")
    assert slot_a.read(ENVELOPE_SIZE, len(fw_v2)) == fw_v2


def test_encrypted_update_end_to_end(firmware_gen):
    """The future-work extension: confidentiality via the pipeline."""
    key, nonce = b"shared-secret-k!", b"per-device-nonce"
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id,
                          cipher=StreamCipher(key, nonce))
    fw_v1 = firmware_gen.firmware(12 * 1024, image_id=1)
    fw_v2 = firmware_gen.os_version_change(fw_v1, revision=2)
    server.publish(vendor.release(fw_v1, 1))

    board = NRF52840
    internal = board.make_internal_flash()
    layout = MemoryLayout.configuration_a(internal, 64 * 1024)
    profile = DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                            link_offset=LINK_OFFSET)
    provision_device_encrypted(server, layout, profile, key, nonce)

    agent = UpdateAgent(profile, layout, anchors,
                        get_backend("tinycrypt"),
                        cipher=StreamCipher(key, nonce))
    server.publish(vendor.release(fw_v2, 2))
    token = agent.request_token()
    image = server.prepare_update(token)
    assert image.manifest.is_encrypted
    assert image.payload != fw_v2  # confidentiality on the wire
    status = agent.feed(image.pack())
    from repro.core import FeedStatus
    assert status is FeedStatus.FIRMWARE_COMPLETE
    assert agent.staged_slot.read(ENVELOPE_SIZE, len(fw_v2)) == fw_v2


def provision_device_encrypted(server, layout, profile, key, nonce):
    """Install the factory image, decrypting the payload first."""
    from repro.core import DeviceToken, install_factory_image, UpdateImage
    from repro.core.image import SignedManifest

    token = DeviceToken(device_id=profile.device_id, nonce=0,
                        current_version=0)
    image = server.prepare_update(token)
    plaintext = StreamCipher(key, nonce).derive(
        token.pack()).process(image.payload)
    slot = layout.get("a")
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.write(image.envelope.pack())
    handle.write(plaintext)
    handle.close()


def test_file_backed_slots_support_host_testing(tmp_path, firmware_gen,
                                                identities):
    """The paper: file-backed slots allow testing without a simulator."""
    vendor_id, server_id, anchors = identities
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    fw = firmware_gen.firmware(8 * 1024, image_id=1)
    server.publish(vendor.release(fw, 1))
    image = server.prepare_update(
        __import__("repro.core", fromlist=["DeviceToken"]).DeviceToken(
            device_id=DEVICE_ID, nonce=0, current_version=0))

    slot = FileSlot(tmp_path / "slot-a.bin", size=64 * 1024, bootable=True)
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.write(image.envelope.pack())
    handle.write(image.payload)
    handle.close()

    # A second process (fresh object) can re-open and verify the content.
    reopened = FileSlot(tmp_path / "slot-a.bin", size=64 * 1024)
    assert reopened.read(ENVELOPE_SIZE, len(fw)) == fw


def test_concurrent_devices_get_distinct_images(firmware_gen):
    """Two devices updating from one server receive request-bound images."""
    fw = firmware_gen.firmware(8 * 1024, image_id=1)
    bed_a = Testbed.create(initial_firmware=fw, device_id=0x01,
                           slot_size=64 * 1024)
    fw2 = firmware_gen.os_version_change(fw, revision=2)
    bed_a.release(fw2, 2)

    bed_b = Testbed.create(initial_firmware=fw, device_id=0x02,
                           slot_size=64 * 1024)
    bed_b.release(fw2, 2)

    token_a = bed_a.device.agent.request_token()
    token_b = bed_b.device.agent.request_token()
    image_a = bed_a.server.prepare_update(token_a)
    image_b = bed_b.server.prepare_update(token_b)
    assert image_a.manifest.device_id != image_b.manifest.device_id
    assert image_a.envelope.pack() != image_b.envelope.pack()

    # Cross-delivery fails: device B refuses device A's image.
    from repro.core import WrongDevice
    with pytest.raises(WrongDevice):
        bed_b.device.agent.feed(image_a.envelope.pack())


def test_update_statistics_align(firmware_gen):
    fw = firmware_gen.firmware(8 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw, slot_size=64 * 1024)
    bed.release(firmware_gen.os_version_change(fw, revision=2), 2)
    outcome = bed.push_update()
    agent_stats = bed.device.agent.stats
    assert outcome.success
    assert agent_stats.updates_completed == 1
    assert agent_stats.payload_bytes > 0
    assert bed.server.stats.requests >= 2  # factory + update
