"""Content-addressed artifact cache: correctness under the server LRU.

Satellite coverage from the performance issue: same-key hits must be
bit-identical, the memory bound must actually evict, and a campaign run
with the cache disabled must produce byte-identical reports — the cache
may only ever change *when* work happens, never *what* is produced.
"""

from __future__ import annotations

import pickle

import pytest

from repro.compression import compress as lzss_compress
from repro.core import UpdateServer, VendorServer, make_test_identities
from repro.delta import (
    ArtifactCache,
    artifact_key,
    diff as bsdiff_diff,
    shared_cache,
)
from repro.fleet import SerialWaveExecutor
from repro.workload import FirmwareGenerator
from tests.test_fleet_parallel import build_campaign, run_and_snapshot


def make_firmware(size=4096):
    generator = FirmwareGenerator(seed=b"artifacts")
    old = generator.firmware(size, image_id=1)
    new = generator.app_functionality_change(old, revision=2)
    return old, new


# -- keying -------------------------------------------------------------------


def test_key_is_sha256_pair_plus_params():
    import hashlib
    key = artifact_key(b"old", b"new", b"bsdiff+lzss")
    assert key == (hashlib.sha256(b"old").digest()
                   + hashlib.sha256(b"new").digest()
                   + b"bsdiff+lzss")


def test_params_separate_key_domains():
    cache = ArtifactCache()
    cache.get_or_create(b"o", b"n", b"kind-a", lambda: b"A")
    assert cache.get_or_create(b"o", b"n", b"kind-b", lambda: b"B") == b"B"


# -- hit behaviour ------------------------------------------------------------


def test_same_key_hit_returns_bit_identical_artifact():
    old, new = make_firmware()
    cache = ArtifactCache()
    produced = cache.get_or_create(
        old, new, b"bsdiff+lzss",
        lambda: lzss_compress(bsdiff_diff(old, new)))

    def exploding_producer():
        raise AssertionError("hit must not re-run the producer")

    hit = cache.get_or_create(old, new, b"bsdiff+lzss", exploding_producer)
    assert hit == produced
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_server_reuses_content_across_instances():
    """Two servers over the same releases share one delta computation."""
    old, new = make_firmware()
    vendor_id, server_id, _ = make_test_identities()
    cache = ArtifactCache()
    deltas = []
    for _ in range(2):
        vendor = VendorServer(vendor_id, app_id=0x41505021,
                              link_offset=0x100)
        server = UpdateServer(server_id, artifacts=cache)
        server.publish(vendor.release(old, 1))
        server.publish(vendor.release(new, 2))
        deltas.append(server._delta_for(1, server._releases[2]))
    assert deltas[0] == deltas[1]
    assert cache.stats.hits >= 1  # second server hit the first's product


# -- memory bound -------------------------------------------------------------


def test_eviction_under_memory_bound():
    cache = ArtifactCache(max_bytes=100)
    for index in range(5):
        cache.put(b"key-%d" % index, bytes(40))
    assert cache.stats.stored_bytes <= 100
    assert cache.stats.evictions == 3
    assert len(cache) == 2
    # Oldest entries went first.
    assert cache.get(b"key-0") is None
    assert cache.get(b"key-4") == bytes(40)


def test_hit_refreshes_lru_position():
    cache = ArtifactCache(max_bytes=100)
    cache.put(b"a", bytes(40))
    cache.put(b"b", bytes(40))
    assert cache.get(b"a") is not None  # refresh a
    cache.put(b"c", bytes(40))          # evicts b, not a
    assert cache.get(b"a") is not None
    assert cache.get(b"b") is None


def test_oversized_artifact_is_passed_through_not_stored():
    cache = ArtifactCache(max_bytes=10)
    assert cache.put(b"k", bytes(100)) == bytes(100)
    assert len(cache) == 0


def test_disabled_cache_always_misses():
    cache = ArtifactCache(max_bytes=0)
    assert not cache.enabled
    runs = []
    for _ in range(3):
        cache.get_or_create(b"o", b"n", b"p",
                            lambda: runs.append(1) or b"x")
    assert len(runs) == 3
    assert len(cache) == 0


def test_cache_rejects_negative_bound():
    with pytest.raises(ValueError):
        ArtifactCache(max_bytes=-1)


# -- campaign equivalence -----------------------------------------------------


def test_disabled_cache_gives_byte_identical_campaign_reports():
    """The cache is an optimisation only: reports must not change."""
    def campaign_with(cache):
        campaign = build_campaign(SerialWaveExecutor())
        campaign.server.artifacts = cache
        return run_and_snapshot(campaign)

    enabled = campaign_with(ArtifactCache())
    disabled = campaign_with(ArtifactCache(max_bytes=0))
    assert enabled == disabled


# -- fleet plumbing -----------------------------------------------------------


def test_export_and_merge_round_trip():
    parent = ArtifactCache()
    parent.put(b"k1", b"v1")
    before = parent.snapshot_keys()

    worker = pickle.loads(pickle.dumps(parent))
    worker.put(b"k2", b"v2")
    produced = worker.export_since(before)
    assert produced == {b"k2": b"v2"}

    assert parent.merge(produced) == 1
    assert parent.get(b"k2") == b"v2"
    # Re-merging the same entries adopts nothing new.
    assert parent.merge(produced) == 0


def test_pickle_round_trip_preserves_entries_and_bound():
    cache = ArtifactCache(max_bytes=1234)
    cache.put(b"k", b"v")
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.max_bytes == 1234
    assert clone.get(b"k") == b"v"
    clone.put(b"k2", b"v2")  # the restored lock works


def test_shared_cache_is_a_singleton():
    assert shared_cache() is shared_cache()
