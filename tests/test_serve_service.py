"""The protocol-agnostic service layer: registry, tokens, ranges.

Everything here runs below both protocol faces — these are the
behaviours the HTTP and CoAP tests then prove survive their codecs
unchanged: single-use tokens, the range contract (zero-length,
past-EOF, truncation, overlap re-requests), channel publication, and
campaign spec validation.
"""

from __future__ import annotations

import pytest

from repro.serve import CHANNELS, CampaignSpec, FleetService, \
    ServiceError

DEVICE = 0x5EED0001


def service(image_size=4096, chunk_size=512):
    svc = FleetService(chunk_size=chunk_size)
    svc.seed_channels(image_size=image_size)
    return svc


def register(svc, device_id=DEVICE, channel="stable", current=1):
    return svc.register_device({"device_id": device_id,
                                "channel": channel,
                                "current_version": current})


def err(call, *args, **kwargs):
    with pytest.raises(ServiceError) as exc:
        call(*args, **kwargs)
    return exc.value


# -- channels -----------------------------------------------------------------


def test_seed_channels_is_idempotent_and_staggered():
    svc = service()
    svc.seed_channels(image_size=4096)     # second seed: no fault
    status = svc.channel_status()
    assert set(status) == set(CHANNELS)
    assert status["stable"]["latest_version"] == 2
    assert status["developer"]["latest_version"] == 3


def test_reseed_rebuilds_a_channel_that_lost_versions():
    """Regression: the releases dict used to be keyed off versions
    missing from the *developer* channel alone, so a restarted server
    whose stable channel lost its releases while developer stayed
    fully seeded crashed with a KeyError instead of re-publishing."""
    from repro.core import UpdateServer

    svc = service()
    identity = svc.channels["stable"].identity
    svc.channels["stable"] = UpdateServer(
        identity, artifacts=svc.artifacts,
        sign_fn=svc.signer.signer_for(identity))
    svc.seed_channels(image_size=4096)     # KeyError before the fix
    status = svc.channel_status()
    assert status["stable"]["latest_version"] == 2
    assert status["developer"]["latest_version"] == 3


# -- device registry ----------------------------------------------------------


def test_register_validates_ids_channels_and_versions():
    svc = service()
    assert err(register, svc, device_id=0).code == "invalid-device-id"
    assert err(register, svc, device_id=1 << 32).code \
        == "invalid-device-id"
    assert err(register, svc, device_id="x").code \
        == "invalid-device-id"
    bad_channel = err(register, svc, channel="nightly")
    assert (bad_channel.code, bad_channel.status) \
        == ("unknown-channel", 404)
    assert err(register, svc, current=1 << 16).code \
        == "invalid-version"


def test_reregistration_never_resets_the_nonce_counter():
    svc = service()
    register(svc)
    first = svc.issue_token(DEVICE)
    svc.close_token(first["token"], {"status": "failed"})
    # The device factory-resets and re-registers: the counter must
    # keep moving forward, or the old token's nonce could come back.
    entry = register(svc)
    assert entry["nonce"] == first["nonce"]
    second = svc.issue_token(DEVICE)
    assert second["nonce"] == first["nonce"] + 1
    assert second["token"] != first["token"]


def test_device_status_roundtrip_and_unknown_404():
    svc = service()
    register(svc, current=1)
    assert svc.device_status(DEVICE)["current_version"] == 1
    assert err(svc.device_status, DEVICE + 1).status == 404


# -- token lifecycle ----------------------------------------------------------


def test_token_is_single_open_per_device_and_version():
    svc = service()
    register(svc)
    issued = svc.issue_token(DEVICE)
    assert issued["target_version"] == 2
    outstanding = err(svc.issue_token, DEVICE)
    assert (outstanding.code, outstanding.status) \
        == ("token-outstanding", 409)
    # Closing the token frees the slot for a retry.
    svc.close_token(issued["token"], {"status": "failed"})
    assert svc.issue_token(DEVICE)["nonce"] == issued["nonce"] + 1


def test_up_to_date_devices_get_a_409_not_a_token():
    svc = service()
    register(svc, current=2)
    assert err(svc.issue_token, DEVICE).code == "up-to-date"
    # The developer channel is one release ahead, so the same device
    # version is updatable there.
    other = DEVICE + 1
    register(svc, device_id=other, channel="developer", current=2)
    assert svc.issue_token(other)["target_version"] == 3


def test_successful_report_bumps_version_and_burns_token():
    svc = service()
    register(svc)
    token = svc.issue_token(DEVICE)["token"]
    manifest = svc.resolve_manifest(token)
    data, total = svc.read_chunk(token, 0, None)
    assert len(data) == total == manifest["payload_size"]
    ack = svc.close_token(token, {"status": "updated"})
    assert ack["acknowledged"] is True
    assert svc.device_status(DEVICE)["current_version"] == 2
    # Every replay of the burnt token is a structured 403.
    for call in (svc.resolve_manifest,
                 lambda t: svc.read_chunk(t, 0, 16),
                 lambda t: svc.close_token(t, {"status": "updated"})):
        replay = err(call, token)
        assert (replay.code, replay.status) == ("token-replayed", 403)
    assert svc.metrics.counter("serve.token_replays").to_value() == 3


def test_manifest_is_idempotent_while_open():
    svc = service()
    register(svc)
    token = svc.issue_token(DEVICE)["token"]
    first = svc.resolve_manifest(token)
    second = svc.resolve_manifest(token)
    assert first == second
    assert first["payload_sha256"] == second["payload_sha256"]


def test_report_status_is_validated():
    svc = service()
    register(svc)
    token = svc.issue_token(DEVICE)["token"]
    assert err(svc.close_token, token, {"status": "maybe"}).code \
        == "invalid-report"
    assert err(svc.close_token, token, "nope").code == "invalid-body"
    # The failed report does not move the device forward.
    svc.close_token(token, {"status": "failed"})
    assert svc.device_status(DEVICE)["current_version"] == 1


# -- the range contract (satellite: chunk edge cases) -------------------------


@pytest.fixture()
def prepared():
    svc = service(image_size=4096, chunk_size=512)
    register(svc)
    token = svc.issue_token(DEVICE)["token"]
    svc.resolve_manifest(token)
    _full, total = svc.read_chunk(token, 0, None)
    return svc, token, total


def test_chunks_require_a_resolved_manifest():
    svc = service()
    register(svc)
    token = svc.issue_token(DEVICE)["token"]
    not_ready = err(svc.read_chunk, token, 0, 16)
    assert (not_ready.code, not_ready.status) == ("not-prepared", 409)


def test_zero_length_range_is_satisfiable_up_to_eof(prepared):
    svc, token, total = prepared
    for offset in (0, 1, total - 1, total):
        data, reported = svc.read_chunk(token, offset, 0)
        assert data == b"" and reported == total
    past = err(svc.read_chunk, token, total + 1, 0)
    assert (past.code, past.status) == ("range-unsatisfiable", 416)


def test_nonzero_range_at_or_past_eof_is_416(prepared):
    svc, token, total = prepared
    for offset in (total, total + 1, total * 10):
        past = err(svc.read_chunk, token, offset, 16)
        assert (past.code, past.status) == ("range-unsatisfiable", 416)


def test_range_ending_past_eof_truncates(prepared):
    svc, token, total = prepared
    data, _ = svc.read_chunk(token, total - 10, 4096)
    assert len(data) == 10
    full, _ = svc.read_chunk(token, 0, None)
    assert data == full[-10:]


def test_overlapping_rerequest_after_disconnect_is_identical(prepared):
    """A transport resuming mid-image re-reads an overlapping range;
    the bytes must match the first read exactly."""
    svc, token, total = prepared
    first, _ = svc.read_chunk(token, 0, 1024)
    resumed, _ = svc.read_chunk(token, 512, 1024)
    assert resumed[:512] == first[512:1024]
    again, _ = svc.read_chunk(token, 0, 1024)
    assert again == first


def test_negative_offset_or_length_is_400(prepared):
    svc, token, _total = prepared
    assert err(svc.read_chunk, token, -1, 16).code == "invalid-range"
    assert err(svc.read_chunk, token, 0, -1).code == "invalid-range"


# -- campaign specs -----------------------------------------------------------


def test_campaign_spec_validation():
    assert CampaignSpec.from_dict({"name": "ok-1"}).devices == 8
    cases = [
        ({}, "needs a 'name'"),
        ({"name": "bad name"}, "name must be"),
        ({"name": "x", "devices": 0}, "devices"),
        ({"name": "x", "image_size": 16}, "image_size"),
        ({"name": "x", "channel": "nightly"}, "channel"),
        ({"name": "x", "bogus": 1}, "unknown spec keys"),
        ("not-a-dict", "JSON object"),
    ]
    for body, fragment in cases:
        with pytest.raises(ServiceError) as exc:
            CampaignSpec.from_dict(body)
        assert exc.value.code == "invalid-spec"
        assert fragment in exc.value.detail


def test_campaign_create_runs_to_done_and_rejects_duplicates():
    svc = FleetService()
    status = svc.create_campaign({"name": "demo", "devices": 4,
                                  "image_size": 2048, "wait": True})
    assert status["state"] == "done"
    assert len(status["report"]["updated"]) == 4
    assert status["slo"]["verdict"] == "ok"
    duplicate = err(svc.create_campaign, {"name": "demo"})
    assert (duplicate.code, duplicate.status) \
        == ("campaign-exists", 409)
    assert err(svc.campaign_status, "nope").status == 404


def test_slo_pause_is_visible_and_refresh_merges_the_report():
    """An impossible p95 target pauses after the canary; the status
    endpoint shows the PAUSE verdict; a clear-slos refresh re-drives
    the remainder and the merged report covers the whole fleet."""
    svc = FleetService()
    status = svc.create_campaign(
        {"name": "slo", "devices": 8, "image_size": 2048,
         "slo_p95_seconds": 0.0001, "wait": True})
    assert status["state"] == "paused"
    assert status["slo"]["verdict"] == "breached"
    assert "pause" in status["slo"]["wave_actions"]
    assert len(status["report"]["updated"]) == 2      # the canary
    assert len(status["report"]["pending"]) == 6
    refreshed = svc.refresh_campaign(
        "slo", {"clear_slos": True, "wait": True})
    assert refreshed["state"] == "done"
    assert refreshed["refreshes"] == 1
    report = refreshed["report"]
    assert len(report["updated"]) == 8
    assert report["pending"] == []
    assert report["success_rate"] == 1.0


def test_journaled_pause_refuses_in_place_refresh(tmp_path):
    svc = FleetService(journal_dir=str(tmp_path))
    status = svc.create_campaign(
        {"name": "sealed", "devices": 4, "image_size": 2048,
         "slo_p95_seconds": 0.0001, "wait": True})
    assert status["state"] == "paused"
    sealed = err(svc.refresh_campaign, "sealed", {"clear_slos": True})
    assert (sealed.code, sealed.status) == ("refresh-journaled", 409)


def test_delete_campaign_clears_persisted_state(tmp_path):
    svc = FleetService(journal_dir=str(tmp_path))
    svc.create_campaign({"name": "gone", "devices": 2,
                         "image_size": 2048, "wait": True})
    assert (tmp_path / "gone.spec.json").exists()
    assert (tmp_path / "gone.journal").exists()
    svc.delete_campaign("gone")
    assert not (tmp_path / "gone.spec.json").exists()
    assert not (tmp_path / "gone.journal").exists()
    assert err(svc.campaign_status, "gone").status == 404


def test_openmetrics_document_covers_service_and_channels():
    svc = service()
    register(svc)
    svc.issue_token(DEVICE)
    text = svc.openmetrics()
    assert text.endswith("# EOF\n")
    assert 'device="service"' in text
    assert 'device="channel-stable"' in text
    assert "upkit_serve_requests_total" in text
