"""Crypto-backend profile and cost-accounting tests."""

from __future__ import annotations

import pytest

from repro.crypto import (
    ATECC508,
    CRYPTOAUTHLIB,
    HSMBackend,
    SoftwareBackend,
    TINYCRYPT,
    TINYDTLS,
    available_backends,
    generate_keypair,
    get_backend,
    sha256,
)


@pytest.fixture()
def keypair():
    private = generate_keypair(b"backend-key")
    return private, private.public_key()


def test_get_backend_by_name():
    assert isinstance(get_backend("tinydtls"), SoftwareBackend)
    assert isinstance(get_backend("TinyCrypt"), SoftwareBackend)
    assert isinstance(get_backend("cryptoauthlib"), HSMBackend)


def test_get_backend_unknown_raises():
    with pytest.raises(KeyError):
        get_backend("openssl")


def test_available_backends():
    names = set(available_backends())
    assert names == {"tinydtls", "tinycrypt", "cryptoauthlib"}


def test_profile_calibration_deltas():
    """Table I's library relationships must hold in the profiles."""
    assert 1000 < TINYCRYPT.flash_bytes - TINYDTLS.flash_bytes < 1200
    assert CRYPTOAUTHLIB.flash_bytes < TINYDTLS.flash_bytes
    assert CRYPTOAUTHLIB.ram_bytes < TINYDTLS.ram_bytes
    assert CRYPTOAUTHLIB.hardware and not TINYDTLS.hardware


def test_software_backend_verifies(keypair):
    private, public = keypair
    backend = get_backend("tinycrypt")
    signature = private.sign(b"msg")
    assert backend.verify(public, signature, b"msg")
    assert not backend.verify(public, signature, b"other")


def test_backend_cost_accounting(keypair):
    private, public = keypair
    backend = get_backend("tinycrypt")
    assert backend.elapsed_seconds() == 0.0
    backend.verify(public, private.sign(b"m"), b"m")
    one_verify = backend.elapsed_seconds()
    assert one_verify >= backend.profile.verify_seconds
    backend.verify(public, private.sign(b"m"), b"m")
    assert backend.elapsed_seconds() > one_verify
    backend.reset_counters()
    assert backend.elapsed_seconds() == 0.0


def test_backend_hash_time_scales_with_bytes():
    backend = get_backend("tinydtls")
    backend.digest(b"x" * 100_000)
    small = backend.elapsed_seconds()
    backend.digest(b"x" * 1_000_000)
    assert backend.elapsed_seconds() > small * 5


def test_track_hashed_counts_toward_cost():
    backend = get_backend("tinydtls")
    backend.track_hashed(1_450_000)
    assert backend.elapsed_seconds() == pytest.approx(1.0)


def test_hsm_backend_uses_stored_key(keypair):
    private, public = keypair
    backend = get_backend("cryptoauthlib")
    backend.provision_key(0, public)
    assert backend.hsm.is_locked(0)
    signature = private.sign(b"firmware")
    assert backend.verify(public, signature, b"firmware")


def test_hsm_backend_falls_back_to_external(keypair):
    private, public = keypair
    backend = HSMBackend(hsm=ATECC508())  # nothing provisioned
    signature = private.sign(b"firmware")
    assert backend.verify(public, signature, b"firmware")


def test_hsm_verify_is_faster_than_software():
    assert CRYPTOAUTHLIB.verify_seconds < TINYCRYPT.verify_seconds / 5


def test_digest_matches_module_sha256():
    backend = get_backend("tinydtls")
    assert backend.digest(b"abc") == sha256(b"abc")


def test_verify_digest_path(keypair):
    private, public = keypair
    backend = get_backend("tinycrypt")
    digest = sha256(b"payload")
    assert backend.verify_digest(public, private.sign_digest(digest), digest)
    assert backend.verify_count == 1
