"""Documentation health checks."""

from __future__ import annotations

import importlib
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PACKAGES = [
    "repro", "repro.core", "repro.crypto", "repro.compression",
    "repro.delta", "repro.memory", "repro.net", "repro.sim",
    "repro.platform", "repro.footprint", "repro.baselines",
    "repro.workload", "repro.fleet", "repro.suit", "repro.analysis",
    "repro.tools", "repro.obs", "repro.faults",
]


@pytest.mark.parametrize("dotted", PACKAGES)
def test_every_package_has_a_docstring(dotted):
    module = importlib.import_module(dotted)
    assert module.__doc__, "%s lacks a module docstring" % dotted


@pytest.mark.parametrize("dotted", PACKAGES)
def test_every_export_resolves_and_is_documented(dotted):
    module = importlib.import_module(dotted)
    exported = getattr(module, "__all__", [])
    assert exported, "%s exports nothing" % dotted
    for name in exported:
        obj = getattr(module, name)  # raises if __all__ lies
        if isinstance(obj, type):
            assert obj.__doc__, "%s.%s lacks a docstring" % (dotted, name)


def test_api_generator_runs():
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "docs",
                                      "generate_api.py")],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr
    api_path = os.path.join(REPO_ROOT, "docs", "API.md")
    assert os.path.exists(api_path)
    content = open(api_path).read()
    assert "## `repro.core`" in content
    assert "UpdateAgent" in content


@pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                  "EXPERIMENTS.md"])
def test_top_level_docs_exist(name):
    path = os.path.join(REPO_ROOT, name)
    assert os.path.exists(path)
    assert len(open(path).read()) > 1000
