"""Columnar campaign parity: ScaleCampaign must match Campaign bit-for-bit.

The columnar path (one numpy row per device, one hydrated cohort
representative per wave, event-driven retry timers) is only admissible
because it produces *byte-identical* reports to the hydrated
:class:`~repro.fleet.Campaign`.  These tests run the same seeded
scenarios — healthy rollout, flaky-link chaos with retries, a dead
radio that quarantines — through both flavours and require identity on
the full :class:`CampaignReport` dict and on every per-device entry.
Alongside: unit tests for the event scheduler, the columnar store, and
the vectorised slot-digest path.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.crypto import use_engine
from repro.crypto.engine import get_engine
from repro.fleet import (
    Campaign,
    ColumnarFleet,
    DeviceRecord,
    DeviceSpec,
    DeviceState,
    EventScheduler,
    RetryPolicy,
    RolloutPolicy,
    ScaleCampaign,
    ScaleReport,
    SerialWaveExecutor,
)
from repro.fleet.columnar import ROW_DTYPE, STATE_CODES
from repro.memory import MemoryLayout
from repro.net import Link, Outage, TransportRetryPolicy
from repro.net.link import COAP_6LOWPAN
from repro.platform import NRF52840, ZEPHYR
from repro.sim import SimulatedDevice
from repro.workload import FirmwareGenerator
from tests.conftest import APP_ID, LINK_OFFSET

IMAGE_SIZE = 8 * 1024


# -- twin-campaign scaffolding ------------------------------------------------


def flaky_link(failures_per_outage: int = 3) -> Link:
    return Link(COAP_6LOWPAN, outages=(
        Outage(at_byte=512, failures=failures_per_outage),
        Outage(at_byte=3000, failures=failures_per_outage),
        Outage(at_byte=7000, failures=failures_per_outage),
    ))


def dead_link() -> Link:
    return Link(COAP_6LOWPAN, outages=(Outage(at_byte=0, failures=999),))


def _make_device(anchors, device_id: int) -> SimulatedDevice:
    internal = NRF52840.make_internal_flash()
    layout = MemoryLayout.configuration_a(internal, 128 * 1024)
    profile = DeviceProfile(device_id=device_id, app_id=APP_ID,
                            link_offset=LINK_OFFSET)
    return SimulatedDevice(board=NRF52840, os_profile=ZEPHYR,
                           layout=layout, profile=profile, anchors=anchors)


def build_twins(count: int, links=None):
    """The same seeded workload, hydrated and columnar.

    ``links`` maps device index -> Link *factory* (links are stateful:
    outage schedules consume themselves, so each flavour must get a
    fresh instance); linked devices are declared ``unique`` in the
    columnar fleet (their outage schedules make their outcomes diverge
    from the rest of their would-be cohort).

    Both flavours get their *own* servers so request logs, token
    nonces, and release state never cross-contaminate.
    """
    links = links or {}

    def build_servers():
        gen = FirmwareGenerator(seed=b"fleet-columnar")
        fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
        fw_v2 = gen.app_functionality_change(fw_v1, revision=2)
        vendor_id, server_id, anchors = make_test_identities()
        vendor = VendorServer(vendor_id, app_id=APP_ID,
                              link_offset=LINK_OFFSET)
        return vendor, UpdateServer(server_id), anchors, fw_v1, fw_v2

    # Hydrated flavour: provision everyone up front, then publish v2.
    vendor, server, anchors, fw_v1, fw_v2 = build_servers()
    server.publish(vendor.release(fw_v1, 1))
    hydrated_fleet = []
    for index in range(count):
        device = _make_device(anchors, 0x3000 + index)
        provision_device(server, device.layout.get("a"),
                         device.profile.device_id)
        make_link = links.get(index)
        hydrated_fleet.append(DeviceRecord(
            name="dev-%02d" % index, device=device, transport="pull",
            link=make_link() if make_link else None))
    server.publish(vendor.release(fw_v2, 2))

    # Columnar flavour: identical releases, lazy provisioning against a
    # v1-only server view.
    vendor_c, server_c, anchors_c, fw_v1_c, fw_v2_c = build_servers()
    release_v1 = vendor_c.release(fw_v1_c, 1)
    server_c.publish(release_v1)
    _, server_id_c, _ = make_test_identities()
    provisioning = UpdateServer(server_id_c)
    provisioning.publish(release_v1)
    server_c.publish(vendor_c.release(fw_v2_c, 2))

    def spec_fn(index: int) -> DeviceSpec:
        return DeviceSpec(name="dev-%02d" % index,
                          device_id=0x3000 + index, transport="pull",
                          unique=index in links)

    def hydrator(spec: DeviceSpec) -> DeviceRecord:
        device = _make_device(anchors_c, spec.device_id)
        provision_device(provisioning, device.layout.get("a"),
                         spec.device_id)
        make_link = links.get(spec.device_id - 0x3000)
        return DeviceRecord(name=spec.name, device=device,
                            transport=spec.transport,
                            link=make_link() if make_link else None)

    columnar_fleet = ColumnarFleet(count, spec_fn, baseline_version=1)
    return (server, hydrated_fleet, anchors,
            server_c, columnar_fleet, hydrator, anchors_c)


def assert_parity(hydrated_report, hydrated_fleet, scale_report):
    """Full-report and per-device bit-for-bit identity."""
    assert (scale_report.to_campaign_report().to_dict()
            == hydrated_report.to_dict())
    for index, record in enumerate(hydrated_fleet):
        assert (scale_report.device_entry(index)
                == ScaleReport.record_entry(record)), record.name


def run_twins(count, links=None, policy=None, retry=None):
    (server, hydrated_fleet, anchors,
     server_c, columnar_fleet, hydrator, anchors_c) = build_twins(
        count, links=links)
    policy = policy or RolloutPolicy(canary_fraction=0.25,
                                     abort_failure_rate=1.0)
    hydrated_report = Campaign(server, hydrated_fleet, policy,
                               retry=retry).run()
    scale_report = ScaleCampaign(server_c, columnar_fleet, hydrator,
                                 policy, retry=retry,
                                 anchors=anchors_c).run()
    return hydrated_report, hydrated_fleet, scale_report


# -- parity: healthy / chaos / quarantine ------------------------------------


def test_healthy_run_byte_identical():
    hydrated_report, hydrated_fleet, scale_report = run_twins(8)
    assert len(hydrated_report.updated) == 8
    assert_parity(hydrated_report, hydrated_fleet, scale_report)
    # Lazy materialisation did its job: one cohort, two waves, so two
    # hydrations cover eight devices.
    assert scale_report.hydrations == 2


def test_chaos_run_with_retries_byte_identical():
    """The flaky-link acceptance scenario from test_fleet_retry, run
    through both flavours: same retries, same backoff accounting, same
    interruption counts, identical report."""
    retry = RetryPolicy(
        max_attempts=4,
        transport_retry=TransportRetryPolicy(max_attempts=3))
    hydrated_report, hydrated_fleet, scale_report = run_twins(
        4, links={1: flaky_link},
        policy=RolloutPolicy(canary_fraction=0.25,
                             abort_failure_rate=1.0),
        retry=retry)
    assert hydrated_report.failed == []
    assert "dev-01" in hydrated_report.updated
    assert hydrated_report.link_interruptions >= 1
    assert hydrated_report.retries >= 1
    assert_parity(hydrated_report, hydrated_fleet, scale_report)


def test_quarantine_path_byte_identical():
    """A dead radio quarantines identically in both flavours."""
    retry = RetryPolicy(
        max_attempts=2, quarantine_after=2,
        transport_retry=TransportRetryPolicy(max_attempts=2))
    hydrated_report, hydrated_fleet, scale_report = run_twins(
        4, links={0: dead_link},
        policy=RolloutPolicy(canary_fraction=0.25,
                             abort_failure_rate=0.5),
        retry=retry)
    assert hydrated_report.quarantined == ["dev-00"]
    assert not hydrated_report.aborted
    assert len(hydrated_report.updated) == 3
    assert_parity(hydrated_report, hydrated_fleet, scale_report)
    assert scale_report.count(DeviceState.QUARANTINED) == 1


def test_columnar_campaign_is_deterministic():
    def run():
        _, _, scale_report = run_twins(4, links={1: flaky_link},
                                       retry=RetryPolicy(
            max_attempts=4,
            transport_retry=TransportRetryPolicy(max_attempts=3)))
        return scale_report.to_campaign_report().to_dict()

    assert run() == run()


def test_parity_under_fast_engine():
    """The batched content-cache verify path changes no output byte."""
    with use_engine("fast") as engine:
        engine.clear_caches()
        hydrated_report, hydrated_fleet, scale_report = run_twins(6)
        assert_parity(hydrated_report, hydrated_fleet, scale_report)
        # The vendor signature was verified through the content cache:
        # one miss (first wave), then a hit per later wave.
        stats = engine.content_cache.stats_snapshot()
    assert stats.misses == 1
    assert stats.hits == len(scale_report.wave_indices) - 1


# -- batched digest path ------------------------------------------------------


def test_digest_matches_agrees_with_per_device_engine_hash():
    """The vectorised column compare is bit-for-bit the per-device
    engine.sha256-and-compare loop."""
    _, _, scale_report = run_twins(6)
    fleet = scale_report.fleet
    gen = FirmwareGenerator(seed=b"fleet-columnar")
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    fw_v2 = gen.app_functionality_change(fw_v1, revision=2)
    target_digest = get_engine().sha256(fw_v2)
    mask = fleet.digest_matches(target_digest)
    for index in range(fleet.count):
        row_digest = bytes(fleet.rows["slot_digest"][index])
        assert bool(mask[index]) == (row_digest == target_digest)
    # Everyone updated, so every row carries the target digest.
    assert bool(mask.all())
    assert not fleet.digest_matches(get_engine().sha256(fw_v1)).any()


def test_digest_helpers_validate_and_stamp():
    fleet = ColumnarFleet.uniform(4, device_id_base=0x100)
    with pytest.raises(ValueError):
        fleet.digest_matches(b"short")
    digest = bytes(range(32))
    fleet.stamp_digest(np.array([1, 3]), digest)
    mask = fleet.digest_matches(digest)
    assert mask.tolist() == [False, True, False, True]


# -- scheduler unit tests -----------------------------------------------------


def test_scheduler_orders_by_time_then_sequence():
    fired = []
    scheduler = EventScheduler()
    scheduler.at(2.0, "b")
    scheduler.at(1.0, "a")
    scheduler.at(2.0, "c")  # same time: insertion order breaks the tie
    scheduler.run(lambda event: fired.append((event.time, event.kind)))
    assert fired == [(1.0, "a"), (2.0, "b"), (2.0, "c")]
    assert scheduler.processed == 3


def test_scheduler_time_is_monotonic():
    scheduler = EventScheduler()
    scheduler.at(5.0, "later")
    scheduler.pop()
    assert scheduler.now == 5.0
    with pytest.raises(ValueError):
        scheduler.at(4.0, "past")


def test_scheduler_handlers_can_reschedule():
    """Run-to-quiescence: handlers enqueue follow-ups mid-run."""
    scheduler = EventScheduler()
    fired = []

    def handle(event):
        fired.append(event.kind)
        if event.kind == "first":
            scheduler.after(1.0, "second")

    scheduler.at(0.0, "first")
    scheduler.run(handle)
    assert fired == ["first", "second"]
    assert scheduler.now == 1.0


# -- columnar store unit tests ------------------------------------------------


def test_row_dtype_is_compact():
    """The memory claim the bench artifact records: ~100 B per device,
    three orders of magnitude under the ~33 KB hydrated pickle."""
    assert ROW_DTYPE.itemsize <= 128
    fleet = ColumnarFleet.uniform(1000, device_id_base=0x100)
    assert fleet.nbytes() == 1000 * ROW_DTYPE.itemsize
    assert fleet.bytes_per_row == ROW_DTYPE.itemsize


def test_uniform_fleet_cohorts_by_transport():
    fleet = ColumnarFleet.uniform(10, device_id_base=0x100,
                                  transports=("push", "pull"))
    assert fleet.cohort_count == 2
    assert fleet.name(3) == "dev-000003"
    assert fleet.spec(4).device_id == 0x104
    # Representatives are the first member of each cohort in row order.
    assert sorted(fleet.cohort_representative.values()) == [0, 1]


def test_unique_devices_get_their_own_cohort():
    def spec_fn(index):
        return DeviceSpec(name="d%d" % index, device_id=index,
                          transport="pull", unique=index == 2)

    fleet = ColumnarFleet(4, spec_fn)
    assert fleet.cohort_count == 2
    assert int(fleet.rows["cohort"][2]) not in (
        int(fleet.rows["cohort"][0]), int(fleet.rows["cohort"][1]))


def test_state_bookkeeping_and_validation():
    fleet = ColumnarFleet.uniform(5, device_id_base=0x100)
    assert fleet.pending_indices().tolist() == [0, 1, 2, 3, 4]
    fleet.set_states(np.array([1, 3]), DeviceState.UPDATED)
    assert fleet.count_state(DeviceState.UPDATED) == 2
    assert fleet.pending_indices().tolist() == [0, 2, 4]
    assert fleet.state_of(1) is DeviceState.UPDATED
    assert (fleet.indices_in_state(DeviceState.UPDATED).tolist()
            == [1, 3])
    with pytest.raises(ValueError):
        ColumnarFleet(0, lambda i: DeviceSpec(name="x", device_id=1))
    with pytest.raises(ValueError):
        ColumnarFleet(1, lambda i: DeviceSpec(name="x", device_id=1),
                      baseline_digest=b"not 32 bytes")


def test_state_codes_are_stable():
    """Codes are persisted in bench artifacts; renumbering is a break."""
    assert {state.value: code for state, code in STATE_CODES.items()} \
        == {"pending": 0, "updated": 1, "failed": 2, "skipped": 3,
            "quarantined": 4}


def test_scale_campaign_requires_a_pending_device():
    (server, _, _, server_c, columnar_fleet, hydrator,
     anchors_c) = build_twins(2)
    columnar_fleet.set_states(np.array([0, 1]), DeviceState.UPDATED)
    campaign = ScaleCampaign(server_c, columnar_fleet, hydrator)
    with pytest.raises(ValueError):
        campaign.run()


def test_scale_report_survives_json_round_trip():
    import json

    _, _, scale_report = run_twins(4)
    payload = json.loads(json.dumps(scale_report.summary()))
    assert payload["updated"] == 4
    assert payload["columnar_bytes_per_row"] == ROW_DTYPE.itemsize
    assert payload["hydrations"] == scale_report.hydrations
