"""Verifier-module tests: every rejection class, both call sites."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    DeviceProfile,
    DeviceToken,
    DigestMismatch,
    IncompatibleLinkOffset,
    PayloadKind,
    SignatureInvalid,
    SignedManifest,
    SizeExceeded,
    StaleVersion,
    TokenMismatch,
    Verifier,
    WrongApplication,
    WrongDevice,
)
from tests.conftest import APP_ID, DEVICE_ID, LINK_OFFSET


@pytest.fixture()
def token():
    return DeviceToken(device_id=DEVICE_ID, nonce=0xBEEF, current_version=1)


@pytest.fixture()
def envelope(published, token):
    vendor, server = published
    return server.prepare_update(token).envelope


@pytest.fixture()
def verifier(anchors, backend):
    return Verifier(anchors, backend)


def rebind(envelope: SignedManifest, **changes) -> SignedManifest:
    """Rewrite manifest fields without re-signing (attacker move)."""
    manifest = dataclasses.replace(envelope.manifest, **changes)
    return SignedManifest(manifest=manifest,
                          vendor_signature=envelope.vendor_signature,
                          server_signature=envelope.server_signature)


def agent_validate(verifier, envelope, profile, token,
                   installed_version=0, slot_capacity=10 ** 6):
    verifier.validate_for_agent(envelope, profile=profile, token=token,
                                installed_version=installed_version,
                                slot_capacity=slot_capacity)


def test_valid_envelope_passes(verifier, envelope, profile, token):
    agent_validate(verifier, envelope, profile, token)


def test_vendor_signature_tamper_detected(verifier, envelope, profile,
                                          token):
    # Changing a vendor-authenticated field breaks the vendor signature.
    forged = rebind(envelope, size=envelope.manifest.size + 1)
    with pytest.raises(SignatureInvalid) as err:
        agent_validate(verifier, forged, profile, token)
    assert err.value.which == "vendor"


def test_server_signature_tamper_detected(verifier, envelope, profile,
                                          token):
    # Changing a token field leaves the vendor signature intact (it is
    # canonical) but breaks the update server's signature.
    forged = rebind(envelope, nonce=envelope.manifest.nonce ^ 1)
    with pytest.raises(SignatureInvalid) as err:
        agent_validate(verifier, forged, profile, token)
    assert err.value.which == "update-server"


def test_swapped_signatures_detected(verifier, envelope, profile, token):
    swapped = SignedManifest(manifest=envelope.manifest,
                             vendor_signature=envelope.server_signature,
                             server_signature=envelope.vendor_signature)
    with pytest.raises(SignatureInvalid):
        agent_validate(verifier, swapped, profile, token)


def test_wrong_device_rejected(verifier, published, profile, token):
    _, server = published
    other_token = DeviceToken(device_id=DEVICE_ID + 1, nonce=token.nonce,
                              current_version=0)
    envelope = server.prepare_update(other_token).envelope
    with pytest.raises(WrongDevice):
        agent_validate(verifier, envelope, profile, token)


def test_nonce_mismatch_rejected(verifier, published, profile, token):
    """A replayed image (signed for an older request) must be rejected."""
    _, server = published
    old_token = DeviceToken(device_id=DEVICE_ID, nonce=0xAAAA,
                            current_version=0)
    replayed = server.prepare_update(old_token).envelope
    with pytest.raises(TokenMismatch):
        agent_validate(verifier, replayed, profile, token)


def test_stale_version_rejected(verifier, envelope, profile, token):
    with pytest.raises(StaleVersion):
        agent_validate(verifier, envelope, profile, token,
                       installed_version=envelope.manifest.version)


def test_equal_version_rejected(verifier, envelope, profile, token):
    with pytest.raises(StaleVersion):
        agent_validate(verifier, envelope, profile, token,
                       installed_version=1)


def test_wrong_app_rejected(verifier, identities, token, profile, fw_v1):
    from repro.core import UpdateServer, VendorServer

    vendor = VendorServer(identities[0], app_id=APP_ID + 1,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(identities[1])
    server.publish(vendor.release(fw_v1, 1))
    envelope = server.prepare_update(token).envelope
    with pytest.raises(WrongApplication):
        agent_validate(verifier, envelope, profile, token)


def test_wrong_link_offset_rejected(verifier, identities, token, profile,
                                    fw_v1):
    from repro.core import UpdateServer, VendorServer

    vendor = VendorServer(identities[0], app_id=APP_ID,
                          link_offset=LINK_OFFSET + 0x1000)
    server = UpdateServer(identities[1])
    server.publish(vendor.release(fw_v1, 1))
    envelope = server.prepare_update(token).envelope
    with pytest.raises(IncompatibleLinkOffset):
        agent_validate(verifier, envelope, profile, token)


def test_size_exceeding_slot_rejected(verifier, envelope, profile, token):
    with pytest.raises(SizeExceeded):
        agent_validate(verifier, envelope, profile, token,
                       slot_capacity=envelope.manifest.size - 1)


def test_delta_for_wrong_old_version_rejected(verifier, published, profile,
                                              fw_v1, firmware_gen):
    vendor, server = published
    server.publish(vendor.release(
        firmware_gen.os_version_change(fw_v1), 2))
    # Token claims current version 1, delta is built for 1; then the
    # device's *actual* token says current version differs.
    delta_token = DeviceToken(DEVICE_ID, nonce=0xBEEF, current_version=1)
    envelope = server.prepare_update(delta_token).envelope
    assert envelope.manifest.is_delta
    live_token = DeviceToken(DEVICE_ID, nonce=0xBEEF, current_version=3)
    with pytest.raises(TokenMismatch):
        agent_validate(verifier, envelope, profile, live_token)


def test_delta_rejected_when_device_opted_out(verifier, published, fw_v1,
                                              firmware_gen, token):
    vendor, server = published
    server.publish(vendor.release(
        firmware_gen.os_version_change(fw_v1), 2))
    envelope = server.prepare_update(token).envelope
    assert envelope.manifest.is_delta
    no_diff = DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                            link_offset=LINK_OFFSET,
                            supports_differential=False)
    with pytest.raises(TokenMismatch):
        agent_validate(verifier, envelope, no_diff, token)


# -- bootloader-side validation ------------------------------------------------


def test_bootloader_validation_passes(verifier, envelope, profile):
    verifier.validate_for_bootloader(envelope, profile)


def test_bootloader_accepts_factory_device_id_zero(verifier, published,
                                                   profile):
    _, server = published
    factory = server.prepare_update(
        DeviceToken(device_id=0, nonce=0, current_version=0)).envelope
    verifier.validate_for_bootloader(factory, profile)


def test_bootloader_rejects_other_device(verifier, published, profile):
    _, server = published
    foreign = server.prepare_update(
        DeviceToken(device_id=0x999, nonce=0, current_version=0)).envelope
    with pytest.raises(WrongDevice):
        verifier.validate_for_bootloader(foreign, profile)


# -- firmware digest --------------------------------------------------------------


def test_verify_firmware_ok(verifier, envelope, fw_v1, token):
    verifier.verify_firmware(
        envelope.manifest,
        lambda off, n: fw_v1[off:off + n],
    )


def test_verify_firmware_detects_bitflip(verifier, envelope, fw_v1):
    tampered = bytearray(fw_v1)
    tampered[1234] ^= 0x01
    with pytest.raises(DigestMismatch):
        verifier.verify_firmware(
            envelope.manifest,
            lambda off, n: bytes(tampered[off:off + n]),
        )


def test_verify_firmware_detects_truncation(verifier, envelope, fw_v1):
    short = fw_v1[:len(fw_v1) // 2]
    with pytest.raises(DigestMismatch):
        verifier.verify_firmware(
            envelope.manifest,
            lambda off, n: short[off:off + n],
        )
