"""ECDSA (secp256r1 / SHA-256) tests, including RFC 6979 vectors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    P256,
    PrivateKey,
    PublicKey,
    Signature,
    SignatureError,
    generate_keypair,
)

# RFC 6979 A.2.5 (P-256, SHA-256, message "sample").
RFC6979_KEY = int(
    "C9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721", 16)
RFC6979_R = int(
    "EFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716", 16)
RFC6979_S = int(
    "F7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8", 16)


@pytest.fixture()
def keypair():
    private = generate_keypair(b"test-key")
    return private, private.public_key()


def test_rfc6979_vector_r_matches():
    key = PrivateKey(RFC6979_KEY)
    signature = key.sign(b"sample")
    assert signature.r == RFC6979_R
    # The implementation normalises to low-s; the vector's s is high.
    assert signature.s in (RFC6979_S, P256.n - RFC6979_S)


def test_rfc6979_public_key_vector():
    key = PrivateKey(RFC6979_KEY)
    point = key.public_key().point
    assert point.x == int(
        "60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6",
        16)
    assert point.y == int(
        "7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299",
        16)


def test_sign_verify_roundtrip(keypair):
    private, public = keypair
    signature = private.sign(b"firmware image")
    assert public.verify(signature, b"firmware image")


def test_verify_rejects_wrong_message(keypair):
    private, public = keypair
    signature = private.sign(b"original")
    assert not public.verify(signature, b"tampered")


def test_verify_rejects_wrong_key(keypair):
    private, _ = keypair
    other = generate_keypair(b"other-key").public_key()
    assert not other.verify(private.sign(b"msg"), b"msg")


def test_signature_deterministic(keypair):
    private, _ = keypair
    assert private.sign(b"x").encode() == private.sign(b"x").encode()


def test_signatures_differ_per_message(keypair):
    private, _ = keypair
    assert private.sign(b"a").encode() != private.sign(b"b").encode()


def test_low_s_normalisation(keypair):
    private, _ = keypair
    for message in (b"m1", b"m2", b"m3", b"m4"):
        assert private.sign(message).s <= P256.n // 2


def test_signature_encode_decode_roundtrip(keypair):
    private, public = keypair
    signature = private.sign(b"msg")
    decoded = Signature.decode(signature.encode())
    assert decoded == signature
    assert public.verify(decoded, b"msg")


def test_signature_decode_rejects_wrong_length():
    with pytest.raises(SignatureError):
        Signature.decode(b"\x01" * 63)


def test_signature_decode_rejects_zero_scalars():
    with pytest.raises(SignatureError):
        Signature.decode(b"\x00" * 64)


def test_signature_decode_rejects_out_of_range():
    blob = P256.n.to_bytes(32, "big") + (1).to_bytes(32, "big")
    with pytest.raises(SignatureError):
        Signature.decode(blob)


def test_private_key_range_validation():
    with pytest.raises(SignatureError):
        PrivateKey(0)
    with pytest.raises(SignatureError):
        PrivateKey(P256.n)


def test_generate_keypair_deterministic():
    assert (generate_keypair(b"seed").scalar
            == generate_keypair(b"seed").scalar)
    assert (generate_keypair(b"seed-a").scalar
            != generate_keypair(b"seed-b").scalar)


def test_generate_keypair_rejects_empty_seed():
    with pytest.raises(SignatureError):
        generate_keypair(b"")


def test_public_key_fingerprint_stable(keypair):
    _, public = keypair
    assert public.fingerprint() == public.fingerprint()
    assert len(public.fingerprint()) == 32


def test_public_key_encode_decode(keypair):
    _, public = keypair
    assert PublicKey.decode(public.encode()).point == public.point


def test_flipped_signature_bits_fail(keypair):
    private, public = keypair
    encoded = bytearray(private.sign(b"msg").encode())
    encoded[10] ^= 0x40
    tampered = Signature.decode(bytes(encoded))
    assert not public.verify(tampered, b"msg")


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_roundtrip_property(message):
    private = generate_keypair(b"prop-key")
    assert private.public_key().verify(private.sign(message), message)
