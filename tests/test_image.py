"""Update-image framing tests."""

from __future__ import annotations

import pytest

from repro.core import (
    ENVELOPE_SIZE,
    MANIFEST_SIZE,
    Manifest,
    ManifestFormatError,
    PayloadKind,
    SIGNATURE_SIZE,
    SignedManifest,
    UpdateImage,
)
from repro.crypto import sha256


def make_envelope(payload_size=100, **overrides) -> SignedManifest:
    fields = dict(
        version=2,
        size=payload_size,
        digest=sha256(b"x" * payload_size),
        link_offset=0x8000,
        app_id=1,
        payload_kind=PayloadKind.FULL,
        payload_size=payload_size,
    )
    fields.update(overrides)
    return SignedManifest(
        manifest=Manifest(**fields),
        vendor_signature=b"\x01" * SIGNATURE_SIZE,
        server_signature=b"\x02" * SIGNATURE_SIZE,
    )


def test_envelope_size_constant():
    assert ENVELOPE_SIZE == MANIFEST_SIZE + 2 * SIGNATURE_SIZE
    assert len(make_envelope().pack()) == ENVELOPE_SIZE


def test_envelope_roundtrip():
    envelope = make_envelope()
    parsed = SignedManifest.unpack(envelope.pack())
    assert parsed == envelope


def test_envelope_rejects_wrong_length():
    with pytest.raises(ManifestFormatError):
        SignedManifest.unpack(b"\x00" * (ENVELOPE_SIZE + 1))


def test_envelope_rejects_short_signature():
    with pytest.raises(ManifestFormatError):
        SignedManifest(
            manifest=make_envelope().manifest,
            vendor_signature=b"\x01" * 63,
            server_signature=b"\x02" * SIGNATURE_SIZE,
        )


def test_server_signed_region_binds_vendor_signature():
    envelope = make_envelope()
    region = envelope.server_signed_region()
    assert region == envelope.manifest.pack() + envelope.vendor_signature


def test_decoded_signature_rejects_garbage():
    envelope = make_envelope(
    )
    bad = SignedManifest(
        manifest=envelope.manifest,
        vendor_signature=b"\x00" * SIGNATURE_SIZE,  # r = s = 0: invalid
        server_signature=envelope.server_signature,
    )
    with pytest.raises(ManifestFormatError):
        bad.decoded_vendor_signature()


def test_image_roundtrip():
    envelope = make_envelope(payload_size=100)
    image = UpdateImage(envelope=envelope, payload=b"x" * 100)
    parsed = UpdateImage.unpack(image.pack())
    assert parsed == image
    assert parsed.total_size == ENVELOPE_SIZE + 100


def test_image_payload_length_must_match_manifest():
    envelope = make_envelope(payload_size=100)
    with pytest.raises(ManifestFormatError):
        UpdateImage(envelope=envelope, payload=b"x" * 99)


def test_image_unpack_rejects_truncation():
    envelope = make_envelope(payload_size=100)
    blob = UpdateImage(envelope=envelope, payload=b"x" * 100).pack()
    with pytest.raises(ManifestFormatError):
        UpdateImage.unpack(blob[:-1])
    with pytest.raises(ManifestFormatError):
        UpdateImage.unpack(blob[:ENVELOPE_SIZE - 1])


def test_image_manifest_shortcut():
    envelope = make_envelope()
    image = UpdateImage(envelope=envelope, payload=b"x" * 100)
    assert image.manifest is envelope.manifest
