"""Retry-storm actuation: budget bucket, breakers, governor gate."""

import pytest

from repro.fleet import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    RetryBudget,
    RetryGovernor,
)


# -- token bucket -------------------------------------------------------------


def test_budget_spends_to_empty_then_sheds():
    budget = RetryBudget(capacity=2)
    assert budget.take(0.0)
    assert budget.take(0.0)
    assert not budget.take(0.0)
    assert budget.spent == 2
    assert budget.exhausted == 1


def test_budget_refills_over_virtual_time():
    budget = RetryBudget(capacity=2, refill_per_second=0.5)
    assert budget.take(0.0) and budget.take(0.0)
    assert not budget.take(1.0)      # only 0.5 tokens back
    assert budget.take(4.0)          # 2.0 refilled, one spent
    assert budget.take(3.0)          # non-monotonic now: clamped, the
    assert not budget.take(3.5)      # leftover token spends, 0.25 isn't 1
    budget2 = RetryBudget(capacity=2, refill_per_second=100.0)
    budget2.take(0.0)
    budget2.take(1.0)
    assert budget2.tokens <= budget2.capacity


def test_budget_state_roundtrip():
    budget = RetryBudget(capacity=4, refill_per_second=0.25)
    budget.take(1.0)
    budget.take(2.0)
    budget.take(2.0)
    state = budget.state_dict()
    twin = RetryBudget(capacity=4, refill_per_second=0.25)
    twin.load_state(state)
    assert twin.state_dict() == budget.state_dict()
    assert twin.take(10.0) == budget.take(10.0)


def test_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(capacity=0)
    with pytest.raises(ValueError):
        RetryBudget(refill_per_second=-1.0)


# -- circuit breaker ----------------------------------------------------------


def test_breaker_lifecycle_closed_open_half_open():
    breaker = CircuitBreaker(BreakerPolicy(pressure_threshold=3,
                                           open_seconds=30.0))
    assert breaker.admit(0.0) is None
    assert not breaker.suspect
    breaker.note_pressure(2, 0.0)
    assert breaker.state is BreakerState.CLOSED
    breaker.note_pressure(1, 5.0)              # threshold reached
    assert breaker.state is BreakerState.OPEN
    assert breaker.admit(10.0) == pytest.approx(35.0)  # deferred
    # Past the horizon: half-open, the caller becomes the probe.
    assert breaker.admit(40.0) is None
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.suspect
    # Any pressure in half-open re-opens immediately.
    breaker.note_pressure(1, 41.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_count == 2
    # A successful probe closes and clears pressure.
    assert breaker.admit(100.0) is None
    breaker.note_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.pressure == 0


def test_breaker_state_roundtrip():
    policy = BreakerPolicy(pressure_threshold=2, open_seconds=10.0)
    breaker = CircuitBreaker(policy)
    breaker.note_pressure(2, 7.0)
    twin = CircuitBreaker(policy)
    twin.load_state(breaker.state_dict())
    assert twin.state is BreakerState.OPEN
    assert twin.admit(8.0) == breaker.admit(8.0)


# -- governor gate ------------------------------------------------------------


def governor(capacity=2, threshold=3, open_seconds=30.0):
    return RetryGovernor(
        budget=RetryBudget(capacity=capacity),
        breaker_policy=BreakerPolicy(pressure_threshold=threshold,
                                     open_seconds=open_seconds))


def test_first_attempts_on_healthy_domain_are_free():
    gov = governor(capacity=1)
    for _ in range(5):
        decision = gov.admit("dom-a", 0.0, retry=False)
        assert decision.allow and not decision.caution
    assert gov.budget.spent == 0       # nothing charged
    assert gov.allows == 5


def test_retries_spend_budget_then_shed():
    gov = governor(capacity=2)
    assert gov.admit("dom-a", 0.0, retry=True).allow
    assert gov.admit("dom-a", 0.0, retry=True).allow
    decision = gov.admit("dom-a", 0.0, retry=True)
    assert not decision.allow and decision.shed
    assert gov.sheds == 1


def test_tripped_domain_defers_then_probes_with_caution():
    gov = governor(capacity=4, threshold=3, open_seconds=30.0)
    # A failed attempt with interruptions trips the domain breaker.
    gov.note_outcome("dom-a", 1.0, success=False, interruptions=3)
    decision = gov.admit("dom-a", 2.0)
    assert not decision.allow and not decision.shed
    assert decision.defer_until == pytest.approx(31.0)
    assert gov.defers == 1
    # Other domains stay unaffected.
    assert gov.admit("dom-b", 2.0).allow
    # Past the horizon: one cautious probe, charged to the budget.
    spent_before = gov.budget.spent
    probe = gov.admit("dom-a", 40.0)
    assert probe.allow and probe.caution
    assert gov.budget.spent == spent_before + 1
    # The probe succeeding cleanly closes the breaker.
    gov.note_outcome("dom-a", 41.0, success=True, interruptions=0)
    clean = gov.admit("dom-a", 42.0)
    assert clean.allow and not clean.caution


def test_interrupted_success_can_trip_the_breaker():
    gov = governor(threshold=4)
    # A mildly bumpy success closes cleanly: pressure does not linger.
    gov.note_outcome("dom-a", 1.0, success=True, interruptions=2)
    assert gov.breakers["dom-a"].state is BreakerState.CLOSED
    assert gov.breakers["dom-a"].pressure == 0
    # A success that burned threshold-many resumes trips it anyway:
    # the domain is sick even though the attempt limped through.
    gov.note_outcome("dom-a", 2.0, success=True, interruptions=4)
    assert gov.breakers["dom-a"].state is BreakerState.OPEN


def test_retry_storm_signal_trips_the_breaker():
    gov = governor(threshold=3)
    gov.note_retry_storm("dom-a", now=5.0)
    assert gov.storm_signals == 1
    assert gov.breakers["dom-a"].state is BreakerState.OPEN
    assert not gov.admit("dom-a", 6.0).allow


def test_governor_without_domain_is_a_budget_only_gate():
    gov = governor(capacity=1)
    assert gov.admit(None, 0.0, retry=True).allow
    assert gov.admit(None, 0.0, retry=True).shed
    gov.note_outcome(None, 0.0, success=False)   # no breaker, no crash
    assert gov.breakers == {}


def test_governor_state_roundtrip_is_exact():
    gov = governor(capacity=3)
    gov.admit("dom-a", 0.0, retry=True)
    gov.note_outcome("dom-a", 1.0, success=False, interruptions=2)
    gov.note_retry_storm("dom-b", now=2.0)
    gov.admit("dom-b", 3.0)
    state = gov.state_dict()
    twin = governor(capacity=3)
    twin.load_state(state)
    assert twin.state_dict() == state
    assert twin.to_dict() == gov.to_dict()
    # Restored governor makes the same decisions.
    assert twin.admit("dom-b", 4.0).allow == gov.admit("dom-b", 4.0).allow


# -- end-to-end: a governed campaign sheds a storm ----------------------------


def test_governed_campaign_sheds_storm_instead_of_amplifying():
    """A correlated storm point from the chaos lab: the governed run
    must spend fewer server requests than the ungoverned twin and
    quarantine (not brick) what it sheds."""
    from repro.fleet import Campaign
    from repro.tools import chaos

    lab = chaos.CorrelatedLab(devices=8, image_size=4096, seed=0)
    point = chaos.CorrelatedPoint(domains=2, severity=6, kinds="storm")
    plan = chaos._correlated_plan(point, lab.seed)

    server_u, fleet_u, _ = lab.build_fleet(plan, 4096, attacker=False)
    Campaign(server_u, fleet_u, chaos._correlated_policy(),
             retry=chaos._correlated_retry()).run()

    server_g, fleet_g, domain_of = lab.build_fleet(plan, 4096,
                                                   attacker=False)
    gov = chaos.make_correlated_governor(lab.devices)
    report = Campaign(server_g, fleet_g, chaos._correlated_policy(),
                      retry=chaos._correlated_retry(), governor=gov,
                      domain_of=domain_of).run()

    assert server_g.stats.requests < server_u.stats.requests
    assert gov.sheds > 0
    summary = gov.to_dict()
    assert any(entry["opened_count"] >= 1
               for entry in summary["breakers"].values())
    # Shed devices are deferred for later remediation, never lost:
    # every fleet member is accounted updated/failed/quarantined.
    accounted = (len(report.updated) + len(report.failed)
                 + len(report.quarantined))
    assert accounted == lab.devices
