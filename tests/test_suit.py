"""SUIT manifest, COSE signing, and UpKit↔SUIT conversion tests."""

from __future__ import annotations

import pytest

from repro.core import Manifest, PayloadKind
from repro.crypto import generate_keypair, sha256
from repro.suit import (
    SuitEnvelope,
    SuitError,
    SuitManifest,
    export_release,
    suit_to_upkit,
    upkit_to_suit,
    uuid_from_identifier,
)
from repro.suit.convert import VENDOR_NAMESPACE


@pytest.fixture()
def key():
    return generate_keypair(b"suit-key")


@pytest.fixture()
def suit_manifest():
    return SuitManifest(
        sequence_number=7,
        vendor_id=uuid_from_identifier(VENDOR_NAMESPACE, 0),
        class_id=uuid_from_identifier(VENDOR_NAMESPACE, 0xAABB),
        digest=sha256(b"firmware"),
        image_size=4096,
        payload_size=4096,
        payload_kind=0,
    )


def make_upkit_manifest(**overrides) -> Manifest:
    fields = dict(
        version=3, size=2048, digest=sha256(b"fw"), link_offset=0x8000,
        app_id=0xAABB, device_id=0x1122, nonce=0xBEEF, old_version=2,
        payload_kind=PayloadKind.DELTA_LZSS, payload_size=500,
    )
    fields.update(overrides)
    return Manifest(**fields)


# -- SUIT manifest structure ---------------------------------------------------


def test_manifest_cbor_roundtrip(suit_manifest):
    assert SuitManifest.from_cbor(suit_manifest.to_cbor()) == suit_manifest


def test_manifest_validation():
    vendor = uuid_from_identifier(VENDOR_NAMESPACE, 0)
    with pytest.raises(SuitError):
        SuitManifest(sequence_number=-1, vendor_id=vendor,
                     class_id=vendor, digest=b"\x00" * 32, image_size=1)
    with pytest.raises(SuitError):
        SuitManifest(sequence_number=1, vendor_id=b"short",
                     class_id=vendor, digest=b"\x00" * 32, image_size=1)
    with pytest.raises(SuitError):
        SuitManifest(sequence_number=1, vendor_id=vendor,
                     class_id=vendor, digest=b"\x00" * 31, image_size=1)


def test_from_cbor_rejects_garbage():
    with pytest.raises(SuitError):
        SuitManifest.from_cbor(b"not cbor at all")
    with pytest.raises(SuitError):
        SuitManifest.from_cbor(b"\x01")  # a bare int


def test_uuid_derivation_properties():
    a = uuid_from_identifier(VENDOR_NAMESPACE, 1)
    b = uuid_from_identifier(VENDOR_NAMESPACE, 2)
    assert a != b
    assert a == uuid_from_identifier(VENDOR_NAMESPACE, 1)
    assert len(a) == 16
    assert a[6] >> 4 == 5        # version nibble
    assert a[8] >> 6 == 0b10     # RFC 4122 variant


# -- COSE signing ---------------------------------------------------------------


def test_envelope_sign_verify(suit_manifest, key):
    envelope = SuitEnvelope.sign(suit_manifest, key)
    assert envelope.verify(key.public_key())


def test_envelope_rejects_wrong_key(suit_manifest, key):
    envelope = SuitEnvelope.sign(suit_manifest, key)
    other = generate_keypair(b"other").public_key()
    assert not envelope.verify(other)


def test_envelope_cbor_roundtrip(suit_manifest, key):
    envelope = SuitEnvelope.sign(suit_manifest, key)
    parsed = SuitEnvelope.from_cbor(envelope.to_cbor())
    assert parsed.manifest == suit_manifest
    assert parsed.verify(key.public_key())


def test_tampered_manifest_breaks_verification(suit_manifest, key):
    envelope = SuitEnvelope.sign(suit_manifest, key)
    blob = bytearray(envelope.to_cbor())
    # Flip a byte inside the manifest bstr (the sequence number area).
    index = blob.rindex(bytes([suit_manifest.sequence_number]))
    blob[index] ^= 0x01
    with pytest.raises(SuitError):
        # Digest mismatch is caught already at envelope parsing.
        SuitEnvelope.from_cbor(bytes(blob))


def test_envelope_from_cbor_rejects_bad_structure(key, suit_manifest):
    with pytest.raises(SuitError):
        SuitEnvelope.from_cbor(b"\x01")
    from repro.suit import dumps
    with pytest.raises(SuitError):
        SuitEnvelope.from_cbor(dumps({3: b"manifest"}))  # no auth wrapper


# -- conversion -------------------------------------------------------------------


def test_upkit_to_suit_maps_fields():
    upkit = make_upkit_manifest()
    suit = upkit_to_suit(upkit)
    assert suit.sequence_number == upkit.version
    assert suit.digest == upkit.digest
    assert suit.image_size == upkit.size
    assert suit.payload_size == upkit.payload_size
    assert suit.class_id == uuid_from_identifier(VENDOR_NAMESPACE,
                                                 upkit.app_id)


def test_roundtrip_preserves_token_binding():
    upkit = make_upkit_manifest()
    back = suit_to_upkit(upkit_to_suit(upkit))
    assert back == upkit


def test_roundtrip_canonical_release_manifest():
    upkit = make_upkit_manifest(device_id=0, nonce=0, old_version=0,
                                payload_kind=PayloadKind.FULL,
                                payload_size=2048)
    back = suit_to_upkit(upkit_to_suit(upkit))
    assert back == upkit


def test_suit_to_upkit_requires_app_id_extension(suit_manifest):
    with pytest.raises(ValueError):
        suit_to_upkit(suit_manifest)  # built without the extension


def test_suit_to_upkit_checks_class_id_consistency():
    upkit = make_upkit_manifest()
    suit = upkit_to_suit(upkit)
    import dataclasses
    forged = dataclasses.replace(
        suit, class_id=uuid_from_identifier(VENDOR_NAMESPACE, 0x9999))
    with pytest.raises(ValueError):
        suit_to_upkit(forged)


def test_export_release_end_to_end(key):
    """Vendor release → signed SUIT envelope → verified import."""
    from repro.core import SigningIdentity, VendorServer

    vendor = VendorServer(SigningIdentity("vendor", key), app_id=0xAABB,
                          link_offset=0x8000)
    release = vendor.release(b"\x42" * 1024, 5)
    blob = export_release(release, key)

    envelope = SuitEnvelope.from_cbor(blob)
    assert envelope.verify(key.public_key())
    imported = suit_to_upkit(envelope.manifest)
    assert imported.version == 5
    assert imported.digest == release.manifest.digest
    assert imported.size == 1024


# -- property-based conversion tests ----------------------------------------------


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=40, deadline=None)
@given(
    version=st.integers(min_value=1, max_value=2 ** 16 - 1),
    size=st.integers(min_value=1, max_value=2 ** 31),
    app_id=st.integers(min_value=0, max_value=2 ** 32 - 1),
    device_id=st.integers(min_value=0, max_value=2 ** 32 - 1),
    nonce=st.integers(min_value=0, max_value=2 ** 32 - 1),
    payload_kind=st.sampled_from(PayloadKind.ALL),
)
def test_conversion_roundtrip_property(version, size, app_id, device_id,
                                       nonce, payload_kind):
    upkit = Manifest(
        version=version, size=size, digest=sha256(b"fw"),
        link_offset=0x1000, app_id=app_id, device_id=device_id,
        nonce=nonce, old_version=0, payload_kind=payload_kind,
        payload_size=min(size, 100),
    )
    suit = upkit_to_suit(upkit)
    # The SUIT CBOR structure itself round-trips...
    assert SuitManifest.from_cbor(suit.to_cbor()) == suit
    # ...and so does the UpKit view of it.
    assert suit_to_upkit(suit) == upkit
