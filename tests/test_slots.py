"""Slot and memory-layout tests."""

from __future__ import annotations

import pytest

from repro.memory import (
    FlashMemory,
    MemoryLayout,
    OpenMode,
    Slot,
    SlotError,
    SlotIOError,
)


@pytest.fixture()
def device():
    return FlashMemory(64 * 1024, page_size=4096)


@pytest.fixture()
def slot(device):
    return Slot("s", device, 0, 16 * 1024, bootable=True)


def test_slot_alignment_enforced(device):
    with pytest.raises(SlotError):
        Slot("bad", device, 100, 4096, bootable=True)
    with pytest.raises(SlotError):
        Slot("bad", device, 0, 5000, bootable=True)


def test_slot_must_fit_device(device):
    with pytest.raises(SlotError):
        Slot("big", device, 0, device.size + 4096, bootable=True)


def test_write_all_mode_erases_whole_slot(slot, device):
    slot.write(0, b"\x00" * 100)  # dirty the slot
    handle = slot.open(OpenMode.WRITE_ALL)
    assert slot.is_erased()
    handle.write(b"image")
    assert slot.read(0, 5) == b"image"
    # WRITE_ALL pre-erased everything: exactly slot-size/page-size erases.
    assert device.stats.pages_erased == slot.size // device.page_size


def test_sequential_rewrite_erases_lazily(slot, device):
    slot.erase()
    device.reset_stats()
    handle = slot.open(OpenMode.SEQUENTIAL_REWRITE)
    handle.write(b"x" * 100)  # touches only page 0
    assert device.stats.pages_erased == 1
    handle.write(b"y" * 4096)  # crosses into page 1
    assert device.stats.pages_erased == 2


def test_sequential_rewrite_does_not_re_erase(slot, device):
    handle = slot.open(OpenMode.SEQUENTIAL_REWRITE)
    handle.write(b"a" * 10)
    handle.write(b"b" * 10)  # same page: no second erase
    assert device.stats.erase_counts[0] == 1


def test_read_only_mode_rejects_writes(slot):
    handle = slot.open(OpenMode.READ_ONLY)
    with pytest.raises(SlotIOError):
        handle.write(b"x")


def test_handle_read_and_seek(slot):
    slot.open(OpenMode.WRITE_ALL).write(b"0123456789")
    handle = slot.open(OpenMode.READ_ONLY)
    assert handle.read(4) == b"0123"
    assert handle.tell() == 4
    handle.seek(8)
    assert handle.read(2) == b"89"
    assert handle.read_at(2, 3) == b"234"


def test_read_clamps_at_slot_end(slot):
    handle = slot.open(OpenMode.READ_ONLY)
    handle.seek(slot.size - 2)
    assert len(handle.read(100)) == 2


def test_write_overflow_rejected(slot):
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.seek(slot.size - 4)
    with pytest.raises(SlotIOError):
        handle.write(b"too long")


def test_closed_handle_rejected(slot):
    handle = slot.open(OpenMode.READ_ONLY)
    handle.close()
    with pytest.raises(SlotIOError):
        handle.read(1)


def test_context_manager(slot):
    with slot.open(OpenMode.WRITE_ALL) as handle:
        handle.write(b"ctx")
    with pytest.raises(SlotIOError):
        handle.write(b"after close")


def test_invalidate_erases_only_first_page(slot, device):
    slot.open(OpenMode.WRITE_ALL).write(b"\x00" * 10_000)
    device.reset_stats()
    slot.invalidate()
    assert device.stats.pages_erased == 1
    assert slot.read(0, 4) == b"\xff\xff\xff\xff"
    assert slot.read(4096, 1) == b"\x00"  # rest untouched


def test_slot_bounds(slot):
    with pytest.raises(SlotError):
        slot.read(slot.size - 1, 2)
    with pytest.raises(SlotError):
        slot.write(slot.size, b"x")


# -- layouts ----------------------------------------------------------------


def test_configuration_a_two_bootable(device):
    layout = MemoryLayout.configuration_a(device, 16 * 1024)
    assert layout.is_ab
    assert [slot.name for slot in layout.bootable_slots] == ["a", "b"]


def test_configuration_b_static(device):
    layout = MemoryLayout.configuration_b(device, 16 * 1024)
    assert not layout.is_ab
    assert layout.get("a").bootable
    assert not layout.get("b").bootable


def test_configuration_b_external_staging(device):
    external = FlashMemory(64 * 1024, page_size=4096, name="ext")
    layout = MemoryLayout.configuration_b(device, 16 * 1024,
                                          external=external)
    assert layout.get("b").flash is external
    assert layout.get("b").offset == 0


def test_configuration_b_recovery_requires_external(device):
    with pytest.raises(SlotError):
        MemoryLayout.configuration_b(device, 16 * 1024, recovery=True)
    external = FlashMemory(64 * 1024, page_size=4096, name="ext")
    layout = MemoryLayout.configuration_b(device, 16 * 1024,
                                          external=external, recovery=True)
    assert not layout.get("recovery").bootable


def test_layout_validation(device):
    with pytest.raises(SlotError):
        MemoryLayout([])
    non_bootable = Slot("x", device, 0, 4096, bootable=False)
    with pytest.raises(SlotError):
        MemoryLayout([non_bootable])
    a = Slot("dup", device, 0, 4096, bootable=True)
    b = Slot("dup", device, 4096, 4096, bootable=True)
    with pytest.raises(SlotError):
        MemoryLayout([a, b])


def test_get_unknown_slot(device):
    layout = MemoryLayout.configuration_a(device, 16 * 1024)
    with pytest.raises(SlotError):
        layout.get("nope")


def test_copy_slot(device):
    layout = MemoryLayout.configuration_a(device, 16 * 1024)
    src, dst = layout.get("a"), layout.get("b")
    src.open(OpenMode.WRITE_ALL).write(b"payload" * 100)
    layout.copy_slot(src, dst, length=700)
    assert dst.read(0, 700) == src.read(0, 700)


def test_copy_slot_too_large_rejected(device):
    layout = MemoryLayout.configuration_a(device, 16 * 1024)
    with pytest.raises(SlotError):
        layout.copy_slot(layout.get("a"), layout.get("b"),
                         length=32 * 1024)


def test_swap_slots(device):
    layout = MemoryLayout.configuration_a(device, 16 * 1024)
    a, b = layout.get("a"), layout.get("b")
    a.open(OpenMode.WRITE_ALL).write(b"AAAA")
    b.open(OpenMode.WRITE_ALL).write(b"BBBB")
    layout.swap_slots(a, b)
    assert a.read(0, 4) == b"BBBB"
    assert b.read(0, 4) == b"AAAA"


def test_swap_slots_partial_length(device):
    layout = MemoryLayout.configuration_a(device, 16 * 1024)
    a, b = layout.get("a"), layout.get("b")
    a.open(OpenMode.WRITE_ALL).write(b"\x01" * 16 * 1024)
    b.open(OpenMode.WRITE_ALL).write(b"\x02" * 16 * 1024)
    device.reset_stats()
    layout.swap_slots(a, b, length=4096)
    assert a.read(0, 4096) == b"\x02" * 4096
    # Pages beyond the swapped extent are untouched.
    assert a.read(8192, 100) == b"\x01" * 100


def test_swap_requires_equal_sizes(device):
    a = Slot("a", device, 0, 8192, bootable=True)
    b = Slot("b", device, 8192, 4096, bootable=False)
    layout = MemoryLayout([a, b])
    with pytest.raises(SlotError):
        layout.swap_slots(a, b)


def test_total_busy_seconds_deduplicates_devices(device):
    layout = MemoryLayout.configuration_a(device, 16 * 1024)
    layout.get("a").erase()
    assert layout.total_busy_seconds() == device.stats.busy_seconds
