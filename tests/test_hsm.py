"""ATECC508 HSM simulation tests."""

from __future__ import annotations

import pytest

from repro.crypto import (
    ATECC508,
    HSMError,
    KeyNotFoundError,
    SlotLockedError,
    generate_keypair,
)
from repro.crypto.sha256 import sha256


@pytest.fixture()
def hsm():
    return ATECC508()


@pytest.fixture()
def keypair():
    private = generate_keypair(b"hsm-key")
    return private, private.public_key()


def test_write_and_read_slot(hsm, keypair):
    _, public = keypair
    hsm.write_pubkey(3, public)
    assert hsm.read_pubkey(3).point == public.point


def test_read_empty_slot_raises(hsm):
    with pytest.raises(KeyNotFoundError):
        hsm.read_pubkey(0)


def test_locked_slot_cannot_be_rewritten(hsm, keypair):
    _, public = keypair
    hsm.write_pubkey(1, public)
    hsm.lock_slot(1)
    assert hsm.is_locked(1)
    other = generate_keypair(b"attacker").public_key()
    with pytest.raises(SlotLockedError):
        hsm.write_pubkey(1, other)
    # The original key survives the attempted overwrite.
    assert hsm.read_pubkey(1).point == public.point


def test_unlocked_slot_can_be_rewritten(hsm, keypair):
    _, public = keypair
    hsm.write_pubkey(1, public)
    other = generate_keypair(b"rotation").public_key()
    hsm.write_pubkey(1, other)
    assert hsm.read_pubkey(1).point == other.point


def test_cannot_lock_empty_slot(hsm):
    with pytest.raises(KeyNotFoundError):
        hsm.lock_slot(5)


def test_slot_bounds(hsm, keypair):
    _, public = keypair
    with pytest.raises(HSMError):
        hsm.write_pubkey(16, public)
    with pytest.raises(HSMError):
        hsm.write_pubkey(-1, public)


def test_verify_stored_by_fingerprint(hsm, keypair):
    private, public = keypair
    hsm.write_pubkey(2, public)
    digest = sha256(b"message")
    signature = private.sign_digest(digest)
    assert hsm.verify_stored(public.fingerprint(), signature, digest)


def test_verify_stored_rejects_bad_signature(hsm, keypair):
    private, public = keypair
    hsm.write_pubkey(2, public)
    signature = private.sign_digest(sha256(b"message"))
    assert not hsm.verify_stored(public.fingerprint(), signature,
                                 sha256(b"other"))


def test_verify_stored_unknown_fingerprint_raises(hsm, keypair):
    private, public = keypair
    signature = private.sign_digest(sha256(b"m"))
    with pytest.raises(KeyNotFoundError):
        hsm.verify_stored(public.fingerprint(), signature, sha256(b"m"))


def test_verify_external(hsm, keypair):
    private, public = keypair
    digest = sha256(b"m")
    assert hsm.verify_external(public, private.sign_digest(digest), digest)


def test_monotonic_counter(hsm):
    assert hsm.counter == 0
    assert hsm.increment_counter() == 1
    assert hsm.increment_counter() == 2
    assert hsm.counter == 2
