"""Fleet-scale acceptance: bounded-memory campaigns at 10k (tier-1) and 1M.

The ``fleet_scale`` marker selects the columnar-campaign scale checks
(``pytest -m fleet_scale``).  The tier-1 subset runs a 10,000-device
campaign and asserts the two properties the architecture promises —
hydrations stay at cohorts-per-wave (not fleet size) and resident
memory grows by columnar rows (not hydrated pickles).  The full
million-device acceptance run hides behind the ``perf`` marker with
the other heavyweight benches.

Alongside: regression tests for the calibration probe that vetoes the
process pool on hosts where forking measurably loses (the
``process_speedup: 0.62`` single-core inversion in BENCH_fleet.json).
"""

from __future__ import annotations

import resource

import pytest

np = pytest.importorskip("numpy")

from repro.fleet import (
    Calibration,
    ProcessWaveExecutor,
    SerialWaveExecutor,
    calibrate,
    select_executor,
)
from repro.fleet.columnar import ROW_DTYPE
from repro.tools.bench import _build_scale_campaign, bench_fleet_scale


def _peak_rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# -- bounded tier-1 scale check ----------------------------------------------


@pytest.mark.fleet_scale
def test_ten_thousand_devices_bounded_memory():
    """10k devices: a handful of hydrations, columnar-sized memory.

    ``ru_maxrss`` is a process-lifetime high-water mark, so the bound
    is on its *growth* across the campaign: the hydrated path would
    materialise 10k × ~33 KB ≈ 330 MB of device records, the columnar
    path allocates 10k × ~86 B ≈ 860 KB of rows plus a few hydrated
    representatives.  200 MB of headroom keeps the assertion meaningful
    without being flaky.
    """
    before_kb = _peak_rss_kb()
    campaign = _build_scale_campaign(10_000, 8 * 1024)
    report = campaign.run()
    grown_kb = _peak_rss_kb() - before_kb

    summary = report.summary()
    assert summary["updated"] == 10_000
    assert not summary["aborted"]
    # Lazy materialisation: 2 cohorts (push/pull) x 2 waves.
    assert summary["cohorts"] == 2
    assert summary["waves"] == 2
    assert summary["hydrations"] == 4
    assert summary["columnar_bytes_total"] == 10_000 * ROW_DTYPE.itemsize
    assert grown_kb < 200 * 1024


@pytest.mark.fleet_scale
def test_event_count_is_independent_of_fleet_size():
    """The event loop scales with cohorts and retries, not devices."""
    small = _build_scale_campaign(100, 8 * 1024).run()
    large = _build_scale_campaign(5_000, 8 * 1024).run()
    assert small.events_processed == large.events_processed
    assert small.hydrations == large.hydrations


@pytest.mark.fleet_scale
@pytest.mark.perf
def test_million_device_campaign_acceptance():
    """The ISSUE acceptance criterion, end to end through the bench
    harness: 1M devices complete with bounded RSS and the artifact's
    sampled per-device entries byte-identical to the hydrated path."""
    summary = bench_fleet_scale(device_count=1_000_000)
    assert summary["updated"] == 1_000_000
    assert summary["sampled_parity"] is True
    assert summary["hydrations"] == 4
    assert summary["devices_per_s"] > 10_000
    # 1M rows ≈ 86 MB; anything in the low hundreds of MB is columnar,
    # 33 GB would be the hydrated path.
    assert summary["peak_rss_kb"] < 2 * 1024 * 1024
    assert summary["pickle_bytes_per_record"] \
        > 100 * summary["columnar_bytes_per_row"]


# -- columnar <-> hydrated parity under correlated chaos (PR 7) ---------------


def _correlated_parity_fixture(device_count, image_size, plan,
                               transfer_bytes):
    """Both campaign flavours over the same seeded, domain-wired fleet.

    The hydrated reference gives every device its own link carrying its
    domain's correlated schedule; the columnar path carries the domain
    in each :class:`DeviceSpec` (part of the cohort key) and lets
    :class:`ScaleCampaign` wire the identical link onto each cohort
    representative at hydration.
    """
    from repro.core import (DeviceProfile, UpdateServer, VendorServer,
                            make_test_identities, provision_device)
    from repro.fleet import (Campaign, ColumnarFleet, DeviceRecord,
                             DeviceSpec, RetryPolicy, RolloutPolicy,
                             ScaleCampaign, SerialWaveExecutor)
    from repro.memory import MemoryLayout
    from repro.net import BLE_GATT, COAP_6LOWPAN
    from repro.platform import NRF52840, ZEPHYR
    from repro.sim import SimulatedDevice
    from repro.tools.bench import APP_ID, LINK_OFFSET
    from repro.tools.chaos import SWEEP_TRANSPORT_RETRY
    from repro.workload import FirmwareGenerator

    generator = FirmwareGenerator(seed=b"corr-parity")
    fw_v1 = generator.firmware(image_size, image_id=1)
    fw_v2 = generator.os_version_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    release_v1 = vendor.release(fw_v1, 1)
    release_v2 = vendor.release(fw_v2, 2)

    def fresh_server():
        server = UpdateServer(server_id)
        server.publish(release_v1)
        return server

    def domain_name(index):
        return plan.domain_of(index, device_count).name

    def transport(index):
        return "pull" if index % 2 else "push"

    def link_for(index):
        return plan.link_for(
            plan.position_of(domain_name(index)), max(1, transfer_bytes),
            profile=(BLE_GATT if transport(index) == "push"
                     else COAP_6LOWPAN))

    def make_device(server, device_id):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=device_id, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(board=NRF52840, os_profile=ZEPHYR,
                                 layout=layout, profile=profile,
                                 anchors=anchors)
        provision_device(server, layout.get("a"), device_id)
        return device

    policy = RolloutPolicy(canary_fraction=0.1)
    retry = RetryPolicy(max_attempts=2, jitter=0.0,
                        transport_retry=SWEEP_TRANSPORT_RETRY)

    # Hydrated reference --------------------------------------------------
    hydrated_server = fresh_server()
    hydrated_fleet = [
        DeviceRecord(name="corr-%05d" % index,
                     device=make_device(hydrated_server, 0x4000 + index),
                     transport=transport(index), link=link_for(index))
        for index in range(device_count)]
    hydrated_server.publish(release_v2)
    hydrated = Campaign(hydrated_server, hydrated_fleet, policy,
                        executor=SerialWaveExecutor(), retry=retry)

    # Columnar path -------------------------------------------------------
    scale_server = fresh_server()
    provisioning = fresh_server()
    scale_server.publish(release_v2)

    def spec_fn(index):
        return DeviceSpec(name="corr-%05d" % index,
                          device_id=0x4000 + index,
                          transport=transport(index),
                          domain=domain_name(index))

    def hydrator(spec):
        return DeviceRecord(name=spec.name,
                            device=make_device(provisioning,
                                               spec.device_id),
                            transport=spec.transport)

    scale = ScaleCampaign(scale_server,
                          ColumnarFleet(device_count, spec_fn,
                                        baseline_version=1),
                          hydrator, policy, retry=retry,
                          anchors=anchors, domain_plan=plan,
                          transfer_bytes=transfer_bytes)
    return hydrated, scale


def _whole_campaign_plan(seed=9):
    from repro.faults import DomainEvent, DomainPlan, FaultDomain, \
        FaultKind

    # Whole-campaign windows: activation is admit-time independent, so
    # the hydrated path (links built up front) and the columnar path
    # (links built at each wave's admit time) see identical schedules.
    return DomainPlan(
        [FaultDomain("dom-00", kind="gateway"),
         FaultDomain("dom-01", kind="gateway")],
        [DomainEvent(FaultKind.LINK_STORM, at=0.0, duration=3600.0,
                     severity=2),
         DomainEvent(FaultKind.LOSS_FRONT, at=0.0, duration=3600.0,
                     severity=1)],
        seed=seed)


@pytest.mark.fleet_scale
def test_columnar_parity_under_correlated_chaos():
    """Satellite (PR 7): the columnar path under a domain storm stays
    byte-identical to the hydrated reference — campaign report and
    every per-device entry."""
    from repro.fleet import ScaleReport

    image_size = 8 * 1024
    hydrated, scale = _correlated_parity_fixture(
        40, image_size, _whole_campaign_plan(), image_size)
    hydrated_report = hydrated.run()
    scale_report = scale.run()

    # The storm actually bit: members survived interruptions.
    assert sum(r.interruptions for r in hydrated.fleet) > 0
    assert scale_report.to_campaign_report().to_dict() \
        == hydrated_report.to_dict()
    for index, record in enumerate(hydrated.fleet):
        assert scale_report.device_entry(index) \
            == ScaleReport.record_entry(record), record.name


@pytest.mark.fleet_scale
def test_ten_thousand_devices_under_domain_outage():
    """10k columnar devices through a correlated storm: domains join
    the cohort key (transports x domains cohorts), every member still
    updates, hydrations stay cohort-sized, never fleet-sized."""
    image_size = 8 * 1024
    plan = _whole_campaign_plan(seed=4)
    _, scale = _correlated_parity_fixture(10_000, image_size, plan,
                                          image_size)
    report = scale.run()
    summary = report.summary()
    assert summary["updated"] == 10_000
    assert not summary["aborted"]
    assert summary["cohorts"] == 4          # 2 transports x 2 domains
    # One hydration per (wave, cohort-present-in-wave): the block-wise
    # domain assignment means the canary wave needn't touch every
    # cohort, so this is bounded by cohorts*waves, not equal to it.
    assert summary["cohorts"] <= summary["hydrations"] \
        <= summary["cohorts"] * summary["waves"]
    # Sampled entries replicate the representative's storm survival.
    entry = report.device_entry(1_234)
    assert entry["state"] == "updated"
    assert entry["interruptions"] > 0


# -- executor probe regression (the 1-core process_speedup inversion) ---------


def _calibration(cpu_count, process_speedup=None):
    return Calibration(dispatch_seconds=1e-5, pickle_seconds=1e-3,
                       cpu_count=cpu_count,
                       process_speedup=process_speedup)


def test_single_core_never_selects_process_pool():
    """cpu_count == 1 vetoes the process pool outright, whatever the
    per-device arithmetic promises."""
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=_calibration(1))
    assert isinstance(chosen, SerialWaveExecutor)


def test_measured_sub_1x_speedup_vetoes_process_pool():
    """The regression: a multi-core calibration whose probe *measured*
    forking losing (speedup < 1.0) must not pick ProcessWaveExecutor —
    the BENCH artifact's process_speedup: 0.62 inversion."""
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=_calibration(8,
                                                      process_speedup=0.62))
    assert isinstance(chosen, SerialWaveExecutor)


def test_measured_speedup_above_1x_allows_process_pool():
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=_calibration(8,
                                                      process_speedup=1.9))
    assert isinstance(chosen, ProcessWaveExecutor)
    chosen.close()


def test_probe_measures_a_real_speedup_ratio():
    calibration = calibrate(probe_processes=True)
    assert calibration.process_speedup is not None
    assert calibration.process_speedup >= 0.0
    # The probed ratio rides into the bench artifact.
    assert "process_speedup" in calibration.to_dict()
    # Un-probed calibrations keep the original 3-key dict shape.
    assert "process_speedup" not in calibrate().to_dict()


def test_selection_with_probed_calibration_on_this_host():
    """End to end on the actual host: whatever the probe measures, the
    chosen executor must be consistent with it."""
    calibration = calibrate(probe_processes=True)
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=calibration)
    if calibration.cpu_count <= 1 or calibration.process_speedup < 1.0:
        assert isinstance(chosen, SerialWaveExecutor)
    else:
        assert isinstance(chosen, ProcessWaveExecutor)
    if hasattr(chosen, "close"):
        chosen.close()
