"""Fleet-scale acceptance: bounded-memory campaigns at 10k (tier-1) and 1M.

The ``fleet_scale`` marker selects the columnar-campaign scale checks
(``pytest -m fleet_scale``).  The tier-1 subset runs a 10,000-device
campaign and asserts the two properties the architecture promises —
hydrations stay at cohorts-per-wave (not fleet size) and resident
memory grows by columnar rows (not hydrated pickles).  The full
million-device acceptance run hides behind the ``perf`` marker with
the other heavyweight benches.

Alongside: regression tests for the calibration probe that vetoes the
process pool on hosts where forking measurably loses (the
``process_speedup: 0.62`` single-core inversion in BENCH_fleet.json).
"""

from __future__ import annotations

import resource

import pytest

np = pytest.importorskip("numpy")

from repro.fleet import (
    Calibration,
    ProcessWaveExecutor,
    SerialWaveExecutor,
    calibrate,
    select_executor,
)
from repro.fleet.columnar import ROW_DTYPE
from repro.tools.bench import _build_scale_campaign, bench_fleet_scale


def _peak_rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# -- bounded tier-1 scale check ----------------------------------------------


@pytest.mark.fleet_scale
def test_ten_thousand_devices_bounded_memory():
    """10k devices: a handful of hydrations, columnar-sized memory.

    ``ru_maxrss`` is a process-lifetime high-water mark, so the bound
    is on its *growth* across the campaign: the hydrated path would
    materialise 10k × ~33 KB ≈ 330 MB of device records, the columnar
    path allocates 10k × ~86 B ≈ 860 KB of rows plus a few hydrated
    representatives.  200 MB of headroom keeps the assertion meaningful
    without being flaky.
    """
    before_kb = _peak_rss_kb()
    campaign = _build_scale_campaign(10_000, 8 * 1024)
    report = campaign.run()
    grown_kb = _peak_rss_kb() - before_kb

    summary = report.summary()
    assert summary["updated"] == 10_000
    assert not summary["aborted"]
    # Lazy materialisation: 2 cohorts (push/pull) x 2 waves.
    assert summary["cohorts"] == 2
    assert summary["waves"] == 2
    assert summary["hydrations"] == 4
    assert summary["columnar_bytes_total"] == 10_000 * ROW_DTYPE.itemsize
    assert grown_kb < 200 * 1024


@pytest.mark.fleet_scale
def test_event_count_is_independent_of_fleet_size():
    """The event loop scales with cohorts and retries, not devices."""
    small = _build_scale_campaign(100, 8 * 1024).run()
    large = _build_scale_campaign(5_000, 8 * 1024).run()
    assert small.events_processed == large.events_processed
    assert small.hydrations == large.hydrations


@pytest.mark.fleet_scale
@pytest.mark.perf
def test_million_device_campaign_acceptance():
    """The ISSUE acceptance criterion, end to end through the bench
    harness: 1M devices complete with bounded RSS and the artifact's
    sampled per-device entries byte-identical to the hydrated path."""
    summary = bench_fleet_scale(device_count=1_000_000)
    assert summary["updated"] == 1_000_000
    assert summary["sampled_parity"] is True
    assert summary["hydrations"] == 4
    assert summary["devices_per_s"] > 10_000
    # 1M rows ≈ 86 MB; anything in the low hundreds of MB is columnar,
    # 33 GB would be the hydrated path.
    assert summary["peak_rss_kb"] < 2 * 1024 * 1024
    assert summary["pickle_bytes_per_record"] \
        > 100 * summary["columnar_bytes_per_row"]


# -- executor probe regression (the 1-core process_speedup inversion) ---------


def _calibration(cpu_count, process_speedup=None):
    return Calibration(dispatch_seconds=1e-5, pickle_seconds=1e-3,
                       cpu_count=cpu_count,
                       process_speedup=process_speedup)


def test_single_core_never_selects_process_pool():
    """cpu_count == 1 vetoes the process pool outright, whatever the
    per-device arithmetic promises."""
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=_calibration(1))
    assert isinstance(chosen, SerialWaveExecutor)


def test_measured_sub_1x_speedup_vetoes_process_pool():
    """The regression: a multi-core calibration whose probe *measured*
    forking losing (speedup < 1.0) must not pick ProcessWaveExecutor —
    the BENCH artifact's process_speedup: 0.62 inversion."""
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=_calibration(8,
                                                      process_speedup=0.62))
    assert isinstance(chosen, SerialWaveExecutor)


def test_measured_speedup_above_1x_allows_process_pool():
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=_calibration(8,
                                                      process_speedup=1.9))
    assert isinstance(chosen, ProcessWaveExecutor)
    chosen.close()


def test_probe_measures_a_real_speedup_ratio():
    calibration = calibrate(probe_processes=True)
    assert calibration.process_speedup is not None
    assert calibration.process_speedup >= 0.0
    # The probed ratio rides into the bench artifact.
    assert "process_speedup" in calibration.to_dict()
    # Un-probed calibrations keep the original 3-key dict shape.
    assert "process_speedup" not in calibrate().to_dict()


def test_selection_with_probed_calibration_on_this_host():
    """End to end on the actual host: whatever the probe measures, the
    chosen executor must be consistent with it."""
    calibration = calibrate(probe_processes=True)
    chosen = select_executor(500, io_fraction=0.0,
                             per_device_seconds=10.0,
                             calibration=calibration)
    if calibration.cpu_count <= 1 or calibration.process_speedup < 1.0:
        assert isinstance(chosen, SerialWaveExecutor)
    else:
        assert isinstance(chosen, ProcessWaveExecutor)
    if hasattr(chosen, "close"):
        chosen.close()
