"""Footprint-model tests: Tables I/II calibration and structural ablations."""

from __future__ import annotations

import pytest

from repro.crypto import CRYPTOAUTHLIB, TINYCRYPT, TINYDTLS
from repro.footprint import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    agent_build,
    bootloader_build,
    build_summary,
    format_table,
    table1_rows,
    table2_rows,
)
from repro.platform import CONTIKI, RIOT, ZEPHYR, get_os


def test_table1_matches_paper_within_tolerance():
    for os_name, crypto, flash, ram in table1_rows():
        paper_flash, paper_ram = PAPER_TABLE1[(os_name, crypto)]
        assert abs(flash - paper_flash) / paper_flash < 0.002, (os_name,
                                                                crypto)
        assert ram == paper_ram


def test_table2_matches_paper_exactly():
    for approach, os_name, flash, ram in table2_rows():
        assert (flash, ram) == PAPER_TABLE2[(os_name, approach)]


def test_zephyr_bootloader_smallest_flash_largest_ram():
    """Table I's headline: Zephyr ≈15% less flash, ≈20% more RAM."""
    zephyr = bootloader_build(ZEPHYR, TINYDTLS)
    riot = bootloader_build(RIOT, TINYDTLS)
    contiki = bootloader_build(CONTIKI, TINYDTLS)
    assert zephyr.flash < riot.flash and zephyr.flash < contiki.flash
    assert 0.10 < 1 - zephyr.flash / riot.flash < 0.20
    assert zephyr.ram > riot.ram and zephyr.ram > contiki.ram
    assert 0.15 < zephyr.ram / riot.ram - 1 < 0.30


def test_tinydtls_smaller_than_tinycrypt():
    """TinyDTLS builds ≈1.1 kB smaller, for every OS."""
    for os_profile in (ZEPHYR, RIOT, CONTIKI):
        small = bootloader_build(os_profile, TINYDTLS)
        large = bootloader_build(os_profile, TINYCRYPT)
        assert 1000 < large.flash - small.flash < 1200
        assert small.ram == large.ram


def test_cryptoauthlib_saves_ten_percent():
    """HSM offload: ~10% less flash than Contiki+TinyDTLS."""
    hsm = bootloader_build(CONTIKI, CRYPTOAUTHLIB)
    sw = bootloader_build(CONTIKI, TINYDTLS)
    assert 0.07 < 1 - hsm.flash / sw.flash < 0.12


def test_contiki_pull_agent_smallest():
    """Table II: Contiki uses 64%/17% less flash than Zephyr/RIOT."""
    zephyr = agent_build(ZEPHYR, "pull")
    riot = agent_build(RIOT, "pull")
    contiki = agent_build(CONTIKI, "pull")
    assert contiki.flash < riot.flash < zephyr.flash
    assert 1 - contiki.flash / zephyr.flash == pytest.approx(0.64, abs=0.02)
    assert 1 - contiki.flash / riot.flash == pytest.approx(0.17, abs=0.02)
    assert 1 - contiki.ram / zephyr.ram == pytest.approx(0.73, abs=0.02)
    assert 1 - contiki.ram / riot.ram == pytest.approx(0.36, abs=0.03)


def test_push_much_smaller_than_pull_on_zephyr():
    push = agent_build(ZEPHYR, "push")
    pull = agent_build(ZEPHYR, "pull")
    assert push.flash < pull.flash / 2
    assert push.ram < pull.ram / 3


def test_push_requires_ble_support():
    with pytest.raises(ValueError):
        agent_build(CONTIKI, "push")
    with pytest.raises(ValueError):
        agent_build(RIOT, "push")


def test_invalid_approach_rejected():
    with pytest.raises(ValueError):
        agent_build(ZEPHYR, "serial")


def test_pipeline_and_memory_module_costs_match_paper():
    """Sect. VI-A states pipeline=1632 B and memory=2024 B of flash, with
    2137 B of pipeline RAM (the lzss buffer)."""
    build = agent_build(ZEPHYR, "push")
    assert build.component("upkit-pipeline").flash == 1632
    assert build.component("upkit-pipeline").ram == 2137
    assert build.component("upkit-memory").flash == 2024


def test_differential_ablation_shrinks_build():
    """Footnote 5: differential support costs agent memory."""
    with_diff = agent_build(ZEPHYR, "push", differential=True)
    without = agent_build(ZEPHYR, "push", differential=False)
    assert without.flash < with_diff.flash
    assert without.ram < with_diff.ram
    assert with_diff.flash - without.flash == 1632 - 410


def test_crypto_swap_moves_all_builds_equally():
    delta_boot = (bootloader_build(ZEPHYR, TINYCRYPT).flash
                  - bootloader_build(ZEPHYR, TINYDTLS).flash)
    delta_agent = (agent_build(ZEPHYR, "push", crypto=TINYCRYPT).flash
                   - agent_build(ZEPHYR, "push", crypto=TINYDTLS).flash)
    assert delta_boot == delta_agent


def test_platform_independent_fraction_high_for_bootloader():
    """The paper reports ~91% platform-independent bootloader code."""
    for os_profile in (ZEPHYR, RIOT, CONTIKI):
        build = bootloader_build(os_profile, TINYDTLS)
        assert build.platform_independent_fraction > 0.80


def test_agent_mostly_platform_specific_stack():
    """The pull agent's footprint is dominated by OS network stacks."""
    build = agent_build(ZEPHYR, "pull")
    assert build.platform_independent_fraction < 0.15


def test_component_lookup():
    build = agent_build(ZEPHYR, "pull")
    assert build.component("upkit-fsm").flash == 1250
    with pytest.raises(KeyError):
        build.component("nonexistent")


def test_format_table_renders():
    text = format_table(("a", "bb"), [(1, 2), (33, 44)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "33" in lines[3]


def test_build_summary_contains_total():
    summary = build_summary(agent_build(ZEPHYR, "push"))
    assert "TOTAL" in summary
    assert "ble-gatt" in summary


def test_get_os_lookup():
    assert get_os("Zephyr") is ZEPHYR
    with pytest.raises(KeyError):
        get_os("freertos")
