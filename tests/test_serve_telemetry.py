"""Serve-plane telemetry: access log, route metrics, watchdog, healthz.

The faces account *server* behaviour here — requests by route/status,
bytes served, event-loop scheduling lag — and surface liveness over
``GET /healthz`` on both protocol faces.  The parity test pins that
the HTTP and CoAP healthz bodies carry the same key set: one service,
two codecs.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    CoapDatagramRelay,
    CoapDeviceClient,
    CoapFront,
    EventLoopWatchdog,
    FleetService,
    HttpServer,
    ServeTelemetry,
)
from repro.serve.coapface import _coap_route_label
from repro.serve.httpd import _route_label
from repro.tools.swarm import SwarmHttpClient, run_http_session

DEVICE = 0x40DD0001


# -- ServeTelemetry unit behaviour --------------------------------------------


def test_observe_request_feeds_counters_histogram_and_ring():
    registry = MetricsRegistry()
    telemetry = ServeTelemetry(registry)
    telemetry.request_started()
    telemetry.observe_request("http", "GET /images/{token}", 206,
                              1024, 0.004, trace_id="ab" * 16)
    assert registry.counter(
        "serve.requests_by_route.get_images_token.206").to_value() == 1
    assert registry.counter("serve.bytes_served").to_value() == 1024
    assert registry.gauge(
        "serve.in_flight_requests").to_value() == 0
    record = telemetry.records[-1]
    assert record["route"] == "GET /images/{token}"
    assert record["status"] == 206
    assert record["trace_id"] == "ab" * 16
    assert record["duration_ms"] == 4.0


def test_slow_request_record_carries_span_tree():
    telemetry = ServeTelemetry(MetricsRegistry(), slow_request_ms=10.0)
    telemetry.request_started()
    spans = [{"name": "http.request", "span_id": 1,
              "duration_ms": 25.0}]
    telemetry.observe_request("http", "POST /campaigns", 201, 64,
                              0.025, span_tree=spans)
    slow = [r for r in telemetry.records
            if r.get("event") == "slow_request"]
    assert len(slow) == 1
    assert slow[0]["spans"] == spans
    assert telemetry.registry.counter(
        "serve.slow_requests").to_value() == 1


def test_access_log_file_is_json_lines(tmp_path):
    path = tmp_path / "access.jsonl"
    telemetry = ServeTelemetry(MetricsRegistry(),
                               access_log_path=str(path))
    telemetry.request_started()
    telemetry.observe_request("http", "GET /healthz", 200, 128, 0.001)
    telemetry.request_started()
    telemetry.observe_request("coap", "GET manifests/{token}", 200,
                              512, 0.002, trace_id="cd" * 16)
    telemetry.close()
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["route"] == "GET /healthz"
    assert first["trace_id"] is None
    assert second["proto"] == "coap"
    assert second["trace_id"] == "cd" * 16


def test_watchdog_samples_lag_and_flags_stalls():
    """A deliberate synchronous stall on the loop thread must show up
    as scheduling lag and (over the stall threshold) a loop_stall
    record — the signal that attributes a frozen server."""
    import time as _time

    telemetry = ServeTelemetry(MetricsRegistry())
    watchdog = EventLoopWatchdog(telemetry, interval=0.01,
                                 stall_ms=30.0)

    async def main():
        watchdog.start()
        await asyncio.sleep(0.03)       # a few clean samples
        _time.sleep(0.08)               # block the loop thread
        await asyncio.sleep(0.03)       # let the watchdog observe it
        await watchdog.stop()

    asyncio.run(main())
    assert len(telemetry._lag_samples) >= 2
    assert telemetry.lag_p99_ms() >= 30.0
    assert telemetry.registry.counter(
        "serve.loop.stalls").to_value() >= 1
    stalls = [r for r in telemetry.records
              if r.get("event") == "loop_stall"]
    assert stalls and stalls[0]["lag_ms"] >= 30.0


# -- route labels stay low-cardinality ----------------------------------------


def test_http_route_labels_fold_identifiers():
    assert _route_label("GET", "/images/deadbeef?offset=0") == \
        "GET /images/{token}"
    assert _route_label("POST", "/devices/123/token") == \
        "POST /devices/{id}/token"
    assert _route_label("GET", "/healthz") == "GET /healthz"
    assert _route_label("GET", "/totally/unknown/path") == "GET <other>"


def test_coap_route_labels_fold_identifiers():
    class Req:
        def __init__(self, code, path):
            self.code = code
            self._path = path

        def uri_path(self):
            return self._path

    from repro.net.coap import CoapCode
    assert _coap_route_label(Req(CoapCode.GET, "images/ff01")) == \
        "GET images/{token}"
    assert _coap_route_label(Req(CoapCode.POST, "devices")) == \
        "POST devices"
    assert _coap_route_label(Req(CoapCode.GET, "healthz")) == \
        "GET healthz"
    assert _coap_route_label(Req(CoapCode.GET, "nope/x")) == \
        "GET <other>"


# -- healthz parity across faces ----------------------------------------------


def _http_healthz():
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as client:
                await run_http_session(client, DEVICE, 1024)
                status, _h, raw = await client.request("GET", "/healthz")
                assert status == 200
                return json.loads(raw)

    return asyncio.run(main())


def _coap_healthz():
    service = FleetService(chunk_size=1024)
    service.seed_channels(image_size=4096)
    front = CoapFront(service)
    relay = CoapDatagramRelay(front)
    client = CoapDeviceClient(relay, DEVICE, block_size=256)

    async def main():
        await client.run_session()
        return json.loads(await client._get_blockwise("healthz"))

    return asyncio.run(main())


def test_healthz_parity_between_http_and_coap_faces():
    """Same service snapshot over both codecs: identical key set, same
    registry-derived values after one full device session each."""
    http_body = _http_healthz()
    coap_body = _coap_healthz()
    assert set(http_body) == set(coap_body)
    for body in (http_body, coap_body):
        assert body["status"] == "ok"
        assert body["devices_registered"] == 1
        assert body["open_tokens"] == 0
        assert body["in_flight_requests"] >= 0
        assert body["uptime_seconds"] >= 0.0


def test_healthz_is_advertised_and_counts_itself():
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as client:
                _s, _h, raw = await client.request("GET", "/")
                assert "GET /healthz" in json.loads(raw)["endpoints"]
                await client.request("GET", "/healthz")
                await client.request("GET", "/healthz")
                return service
    service = asyncio.run(main())
    assert service.metrics.counter(
        "serve.requests_by_route.get_healthz.200").to_value() == 2


def test_serve_counters_cover_routes_bytes_and_dedup():
    """The satellite counters: requests by route/status and bytes
    served on HTTP; dedup-cache hits on the lossy CoAP face."""
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as client:
                await run_http_session(client, DEVICE, 1024)
        return service

    service = asyncio.run(main())
    metrics = service.metrics
    assert metrics.counter(
        "serve.requests_by_route.post_devices.201").to_value() == 1
    assert metrics.counter(
        "serve.requests_by_route.get_images_token.206").to_value() >= 1
    assert metrics.counter("serve.bytes_served").to_value() > 4096
    assert metrics.counter("serve.token_replays").to_value() == 0

    lossy = FleetService(chunk_size=1024)
    lossy.seed_channels(image_size=4096)
    relay = CoapDatagramRelay(CoapFront(lossy), drop_every=2)
    outcome = asyncio.run(
        CoapDeviceClient(relay, DEVICE, block_size=256).run_session())
    assert outcome["digest_ok"] is True
    assert lossy.metrics.counter(
        "serve.coap_dedup_hits").to_value() > 0


def test_metrics_endpoint_exposes_serve_families():
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as client:
                await run_http_session(client, DEVICE, 1024)
                _s, _h, raw = await client.request("GET", "/metrics")
                return raw.decode("utf-8")

    text = asyncio.run(main())
    assert "upkit_serve_bytes_served" in text
    assert "upkit_serve_latency_ms_" in text
    assert "upkit_serve_in_flight_requests" in text
