"""BLE ATT/GATT framing tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    AttOpcode,
    AttPacket,
    BleError,
    Command,
    ControlCommand,
    DEFAULT_ATT_MTU,
    Handle,
    Status,
    StatusNotification,
)


def test_att_packet_roundtrip():
    packet = AttPacket(AttOpcode.WRITE_COMMAND, Handle.DATA, b"payload")
    decoded = AttPacket.decode(packet.encode())
    assert decoded == packet


def test_att_packet_little_endian_handle():
    packet = AttPacket(AttOpcode.WRITE_REQUEST, 0x0010, b"")
    encoded = packet.encode()
    assert encoded[1:3] == b"\x10\x00"  # LE per the Bluetooth core spec


def test_att_decode_rejects_short():
    with pytest.raises(BleError):
        AttPacket.decode(b"\x12\x10")


def test_att_decode_rejects_unknown_opcode():
    with pytest.raises(BleError):
        AttPacket.decode(b"\x99\x10\x00")


def test_value_fits_default_mtu():
    ok = AttPacket(AttOpcode.WRITE_COMMAND, Handle.DATA, b"x" * 20)
    too_big = AttPacket(AttOpcode.WRITE_COMMAND, Handle.DATA, b"x" * 21)
    assert ok.value_fits()
    assert not too_big.value_fits()
    assert too_big.value_fits(att_mtu=247)  # DLE-extended MTU


def test_default_mtu_gives_20_byte_values():
    """The 20 B/packet of the Fig. 8a link profile comes from ATT_MTU 23."""
    assert DEFAULT_ATT_MTU - 3 == 20


def test_control_command_roundtrip():
    command = ControlCommand(Command.REQUEST_TOKEN, b"\x01\x02")
    assert ControlCommand.decode(command.encode()) == command


def test_control_command_rejects_empty():
    with pytest.raises(BleError):
        ControlCommand.decode(b"")


def test_control_command_rejects_unknown():
    with pytest.raises(BleError):
        ControlCommand.decode(b"\x77")


def test_status_notification_roundtrip():
    note = StatusNotification(Status.TOKEN, b"\x11" * 10)
    assert StatusNotification.decode(note.encode()) == note


def test_status_notification_rejects_unknown():
    with pytest.raises(BleError):
        StatusNotification.decode(b"\x55payload")


@settings(max_examples=40, deadline=None)
@given(
    opcode=st.sampled_from(list(AttOpcode)),
    handle=st.integers(min_value=0, max_value=0xFFFF),
    value=st.binary(max_size=100),
)
def test_att_roundtrip_property(opcode, handle, value):
    packet = AttPacket(opcode, handle, value)
    assert AttPacket.decode(packet.encode()) == packet
