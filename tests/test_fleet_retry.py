"""Campaign-level retry: flaky links converge, dead radios quarantine.

The acceptance scenario: a device whose link drops repeatedly used to
fail its campaign outright.  With transport resume plus a campaign
:class:`~repro.fleet.RetryPolicy` the same deterministic outage
schedule now converges — and a genuinely dead radio lands in
QUARANTINED instead of dragging the whole rollout into an abort.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.fleet import (
    Campaign,
    DeviceRecord,
    DeviceState,
    RetryPolicy,
    RolloutPolicy,
)
from repro.memory import MemoryLayout
from repro.net import Link, Outage, TransportRetryPolicy
from repro.net.link import COAP_6LOWPAN
from repro.platform import NRF52840, ZEPHYR
from repro.sim import SimulatedDevice
from repro.workload import FirmwareGenerator
from tests.conftest import APP_ID, LINK_OFFSET

IMAGE_SIZE = 8 * 1024


@pytest.fixture()
def release_chain():
    gen = FirmwareGenerator(seed=b"fleet-retry")
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    fw_v2 = gen.app_functionality_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))
    return vendor, server, anchors, fw_v2


def make_fleet(server, anchors, count: int,
               links: "dict[int, Link]" = {}) -> List[DeviceRecord]:
    fleet = []
    for index in range(count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x3000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="dev-%02d" % index,
            device=device,
            transport="pull",
            link=links.get(index),
        ))
    return fleet


def flaky_link(failures_per_outage: int = 3) -> Link:
    """A deterministic outage storm: drops at three byte offsets."""
    return Link(COAP_6LOWPAN, outages=(
        Outage(at_byte=512, failures=failures_per_outage),
        Outage(at_byte=3000, failures=failures_per_outage),
        Outage(at_byte=7000, failures=failures_per_outage),
    ))


def test_flaky_device_fails_without_retry_policy(release_chain):
    """Baseline: the same outage schedule fails a retry-less campaign."""
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 3, links={1: flaky_link()})
    server.publish(vendor.release(fw_v2, 2))
    report = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.34, abort_failure_rate=1.0,
        max_attempts=1)).run()
    assert "dev-01" in report.failed
    assert fleet[1].device.installed_version() == 1


def test_flaky_device_converges_with_resume_and_retry(release_chain):
    """The acceptance scenario: resume + RetryPolicy turn the identical
    deterministic outage schedule into a converged update."""
    vendor, server, anchors, fw_v2 = release_chain
    fleet = make_fleet(server, anchors, 3, links={1: flaky_link()})
    server.publish(vendor.release(fw_v2, 2))
    retry = RetryPolicy(
        max_attempts=4,
        transport_retry=TransportRetryPolicy(max_attempts=3))
    report = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.34, abort_failure_rate=1.0),
        retry=retry).run()
    assert report.failed == []
    assert "dev-01" in report.updated
    assert fleet[1].device.installed_version() == 2
    # Convergence took campaign retries *and* transport resumes; both
    # are visible in the report.
    assert fleet[1].attempts > 1
    assert report.retries >= 1
    assert report.link_interruptions >= 1
    # The inter-attempt backoff was metered on the device's own clock.
    breakdown = fleet[1].device.clock.elapsed_by_label()
    assert breakdown.get("backoff", 0.0) > 0


def test_flaky_campaign_is_deterministic(release_chain):
    vendor, server, anchors, fw_v2 = release_chain

    def run():
        gen = FirmwareGenerator(seed=b"fleet-retry")
        fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
        fw_new = gen.app_functionality_change(fw_v1, revision=2)
        vendor_id, server_id, anchors_ = make_test_identities()
        vendor_ = VendorServer(vendor_id, app_id=APP_ID,
                               link_offset=LINK_OFFSET)
        server_ = UpdateServer(server_id)
        server_.publish(vendor_.release(fw_v1, 1))
        fleet = make_fleet(server_, anchors_, 2,
                           links={0: flaky_link()})
        server_.publish(vendor_.release(fw_new, 2))
        retry = RetryPolicy(
            max_attempts=4, jitter=0.2, seed=11,
            transport_retry=TransportRetryPolicy(max_attempts=3))
        report = Campaign(server_, fleet, RolloutPolicy(
            canary_fraction=0.5, abort_failure_rate=1.0),
            retry=retry).run()
        return (tuple(report.updated), report.retries,
                report.link_interruptions,
                fleet[0].device.clock.now)

    assert run() == run()


def test_dead_radio_quarantines_instead_of_aborting(release_chain):
    """A device whose link never recovers is quarantined; the campaign
    proceeds and the abort computation ignores it."""
    vendor, server, anchors, fw_v2 = release_chain
    dead = Link(COAP_6LOWPAN, outages=(Outage(at_byte=0, failures=999),))
    fleet = make_fleet(server, anchors, 4, links={0: dead})
    server.publish(vendor.release(fw_v2, 2))
    retry = RetryPolicy(
        max_attempts=2, quarantine_after=2,
        transport_retry=TransportRetryPolicy(max_attempts=2))
    report = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.25, abort_failure_rate=0.5),
        retry=retry).run()
    # The dead canary is quarantined, NOT failed: the wave failure rate
    # stays at zero and the rollout reaches everyone else.
    assert not report.aborted
    assert report.quarantined == ["dev-00"]
    assert report.failed == []
    assert len(report.updated) == 3
    assert fleet[0].state is DeviceState.QUARANTINED
    # Quarantined devices still count against the success rate.
    assert report.success_rate == pytest.approx(3 / 4)


def test_retry_policy_validation_and_jitter_determinism():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(quarantine_after=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    policy = RetryPolicy(backoff_initial=10.0, jitter=0.2, seed=5)
    # Same (attempt, device) → same delay; different devices differ.
    assert policy.delay(1, "dev-a") == policy.delay(1, "dev-a")
    assert policy.delay(1, "dev-a") != policy.delay(1, "dev-b")
    # Exponential growth holds under jitter bounds.
    assert policy.delay(3, "dev-a") > policy.delay(1, "dev-a") * 2 * 0.8


def test_quarantine_report_serializes(release_chain):
    import json

    vendor, server, anchors, fw_v2 = release_chain
    dead = Link(COAP_6LOWPAN, outages=(Outage(at_byte=0, failures=999),))
    fleet = make_fleet(server, anchors, 2, links={1: dead})
    server.publish(vendor.release(fw_v2, 2))
    retry = RetryPolicy(max_attempts=2, quarantine_after=2,
                        transport_retry=TransportRetryPolicy(
                            max_attempts=2))
    report = Campaign(server, fleet, RolloutPolicy(
        canary_fraction=0.5, abort_failure_rate=1.0),
        retry=retry).run()
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["quarantined"] == ["dev-01"]
    assert payload["retries"] >= 1
    assert payload["link_interruptions"] >= 1
