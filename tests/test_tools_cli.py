"""CLI tooling tests: keygen → release → prepare → verify → inspect."""

from __future__ import annotations

import json
import os

import pytest

from repro.tools import main


@pytest.fixture()
def keys_dir(tmp_path):
    out = tmp_path / "keys"
    assert main(["keygen", "--out", str(out)]) == 0
    return out


@pytest.fixture()
def release_file(tmp_path, keys_dir, firmware_gen):
    firmware = firmware_gen.firmware(8 * 1024, image_id=1)
    fw_path = tmp_path / "fw.bin"
    fw_path.write_bytes(firmware)
    out = tmp_path / "release.bin"
    code = main([
        "release", "--firmware", str(fw_path), "--version", "1",
        "--app-id", "0x55504B49", "--link-offset", "0x8000",
        "--vendor-key", str(keys_dir / "vendor.key"), "--out", str(out),
    ])
    assert code == 0
    return out


def prepare_image(tmp_path, keys_dir, release_file, nonce="0xBEEF",
                  extra=()):
    out = tmp_path / "image.bin"
    code = main([
        "prepare", "--release", str(release_file),
        "--server-key", str(keys_dir / "server.key"),
        "--device-id", "0x11223344", "--nonce", nonce,
        "--out", str(out), *extra,
    ])
    assert code == 0
    return out


def test_keygen_writes_four_files(keys_dir):
    names = sorted(os.listdir(keys_dir))
    assert names == ["server.key", "server.pub", "vendor.key",
                     "vendor.pub"]


def test_keygen_deterministic_from_seed(tmp_path):
    main(["keygen", "--out", str(tmp_path / "a"), "--vendor-seed", "s1"])
    main(["keygen", "--out", str(tmp_path / "b"), "--vendor-seed", "s1"])
    assert ((tmp_path / "a" / "vendor.key").read_bytes()
            == (tmp_path / "b" / "vendor.key").read_bytes())


def test_full_cli_flow_verifies(tmp_path, keys_dir, release_file):
    image = prepare_image(tmp_path, keys_dir, release_file)
    code = main([
        "verify", "--image", str(image),
        "--vendor-pub", str(keys_dir / "vendor.pub"),
        "--server-pub", str(keys_dir / "server.pub"),
    ])
    assert code == 0


def test_verify_detects_tampering(tmp_path, keys_dir, release_file):
    image = prepare_image(tmp_path, keys_dir, release_file)
    blob = bytearray(image.read_bytes())
    blob[10] ^= 0xFF
    image.write_bytes(bytes(blob))
    code = main([
        "verify", "--image", str(image),
        "--vendor-pub", str(keys_dir / "vendor.pub"),
        "--server-pub", str(keys_dir / "server.pub"),
    ])
    assert code == 1


def test_verify_rejects_wrong_keys(tmp_path, keys_dir, release_file):
    image = prepare_image(tmp_path, keys_dir, release_file)
    other = tmp_path / "other-keys"
    main(["keygen", "--out", str(other), "--vendor-seed", "attacker",
          "--server-seed", "attacker2"])
    code = main([
        "verify", "--image", str(image),
        "--vendor-pub", str(other / "vendor.pub"),
        "--server-pub", str(other / "server.pub"),
    ])
    assert code == 1


def test_inspect_prints_manifest(tmp_path, keys_dir, release_file,
                                 capsys):
    image = prepare_image(tmp_path, keys_dir, release_file,
                          nonce="0xCAFE")
    capsys.readouterr()  # drop the prepare subcommand's status line
    assert main(["inspect", "--image", str(image)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["nonce"] == "0x0000CAFE"
    assert payload["is_delta"] is False


def test_export_and_import_suit(tmp_path, keys_dir, release_file, capsys):
    suit_path = tmp_path / "release.suit"
    code = main(["export-suit", "--release", str(release_file),
                 "--vendor-key", str(keys_dir / "vendor.key"),
                 "--out", str(suit_path)])
    assert code == 0
    assert suit_path.stat().st_size > 100
    capsys.readouterr()
    code = main(["import-suit", "--envelope", str(suit_path),
                 "--vendor-pub", str(keys_dir / "vendor.pub")])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["sequence_number"] == 1


def test_import_suit_rejects_wrong_key(tmp_path, keys_dir, release_file):
    suit_path = tmp_path / "release.suit"
    main(["export-suit", "--release", str(release_file),
          "--vendor-key", str(keys_dir / "vendor.key"),
          "--out", str(suit_path)])
    other = tmp_path / "other"
    main(["keygen", "--out", str(other), "--vendor-seed", "attacker"])
    code = main(["import-suit", "--envelope", str(suit_path),
                 "--vendor-pub", str(other / "vendor.pub")])
    assert code == 1


def test_import_suit_rejects_tampered_envelope(tmp_path, keys_dir,
                                               release_file):
    suit_path = tmp_path / "release.suit"
    main(["export-suit", "--release", str(release_file),
          "--vendor-key", str(keys_dir / "vendor.key"),
          "--out", str(suit_path)])
    blob = bytearray(suit_path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    suit_path.write_bytes(bytes(blob))
    code = main(["import-suit", "--envelope", str(suit_path),
                 "--vendor-pub", str(keys_dir / "vendor.pub")])
    assert code == 1


def test_simulate_subcommand(capsys):
    code = main(["simulate", "--board", "cc2538", "--os", "riot",
                 "--transport", "pull", "--size", "16384"])
    assert code == 0
    out = capsys.readouterr().out
    assert "booted version 2" in out
    assert "propagation" in out and "loading" in out


def test_simulate_full_image(capsys):
    code = main(["simulate", "--size", "16384", "--full",
                 "--slots", "b"])
    assert code == 0
    out = capsys.readouterr().out
    assert "static slots" in out


def test_prepare_differential(tmp_path, keys_dir, firmware_gen, capsys):
    """A release chain: v1 on disk, v2 released, delta prepared."""
    fw_v1 = firmware_gen.firmware(8 * 1024, image_id=1)
    fw_v2 = firmware_gen.os_version_change(fw_v1, revision=2)
    v1_path = tmp_path / "fw1.bin"
    v1_path.write_bytes(fw_v1)
    v2_path = tmp_path / "fw2.bin"
    v2_path.write_bytes(fw_v2)
    release2 = tmp_path / "release2.bin"
    main(["release", "--firmware", str(v2_path), "--version", "2",
          "--app-id", "0x1", "--link-offset", "0x8000",
          "--vendor-key", str(keys_dir / "vendor.key"),
          "--out", str(release2)])
    image = tmp_path / "delta.bin"
    code = main([
        "prepare", "--release", str(release2),
        "--server-key", str(keys_dir / "server.key"),
        "--device-id", "0x11223344", "--nonce", "0x1",
        "--current-version", "1", "--old-firmware", str(v1_path),
        "--out", str(image),
    ])
    assert code == 0
    capsys.readouterr()
    main(["inspect", "--image", str(image)])
    payload = json.loads(capsys.readouterr().out)
    assert payload["is_delta"] is True
    assert payload["old_version"] == 1
    assert payload["payload_size"] < payload["size"]
