"""Energy accounting under interrupted transfers (sim/energy.py).

An interrupted transfer still burned the radio: bytes delivered before
the outage were paid for, the backoff wait shows up on the virtual
clock, and an abandoned update wasted real energy — exactly the
accounting the paper's early-rejection argument rests on.  These tests
pin the meter's invariants under that failure traffic.
"""

import pytest

from repro.net import BLE_GATT, Link, PushTransport
from repro.net.link import Outage
from repro.net.transports import TransportRetryPolicy
from repro.sim import Testbed


def make_bed():
    # Full-image transfers: a delta between these constant images would
    # be ~250 bytes and never reach the 500-byte outage threshold.
    bed = Testbed.create(initial_firmware=b"\x11" * 2048,
                         supports_differential=False)
    bed.release(b"\x22" * 2048, 2)
    return bed


def run_push(bed, link, retry):
    transport = PushTransport(bed.device, bed.server, link=link,
                              retry=retry)
    return transport.run_update()


def test_interrupted_transfer_still_charges_the_radio():
    bed = make_bed()
    link = Link(BLE_GATT, outages=[Outage(at_byte=500)])
    retry = TransportRetryPolicy(max_attempts=3, backoff_initial=2.0)
    outcome = run_push(bed, link, retry)
    assert outcome.success
    assert outcome.interruptions == 1
    meter = bed.device.meter
    assert meter.energy_mj("radio_rx") > 0
    # The resumed transfer re-delivered nothing it already had, but the
    # pre-outage bytes were charged: total radio energy exceeds what a
    # byte-perfect single pass of the image alone would imply zero of.
    assert bed.device.agent.stats.transfers_interrupted == 1
    assert bed.device.agent.stats.transfers_resumed == 1


def test_backoff_shows_up_in_the_phase_breakdown():
    bed = make_bed()
    link = Link(BLE_GATT, outages=[Outage(at_byte=500)])
    retry = TransportRetryPolicy(max_attempts=3, backoff_initial=2.0,
                                 jitter=0.0)
    assert run_push(bed, link, retry).success
    by_label = bed.device.clock.elapsed_by_label()
    assert by_label.get("backoff", 0.0) == pytest.approx(2.0)


def test_abandoned_update_wasted_energy_is_accounted():
    bed = make_bed()
    # More consecutive failures than the retry budget tolerates.
    link = Link(BLE_GATT, outages=[Outage(at_byte=500, failures=5)])
    retry = TransportRetryPolicy(max_attempts=2, backoff_initial=1.0)
    outcome = run_push(bed, link, retry)
    assert not outcome.success
    assert bed.device.agent.stats.updates_abandoned == 1
    meter = bed.device.meter
    # The failed attempt still burned radio and flash energy.
    assert meter.energy_mj("radio_rx") > 0
    assert meter.energy_mj("flash") > 0
    assert bed.device.installed_version() == 1


def test_meter_invariants_hold_under_interruption():
    bed = make_bed()
    link = Link(BLE_GATT, outages=[Outage(at_byte=500)])
    retry = TransportRetryPolicy(max_attempts=3, backoff_initial=2.0)
    assert run_push(bed, link, retry).success
    meter = bed.device.meter
    breakdown = meter.breakdown_mj()
    assert all(value >= 0 for value in breakdown.values())
    assert meter.energy_mj() == pytest.approx(sum(breakdown.values()))
    assert meter.energy_mj() == pytest.approx(
        meter.charge_mc() * meter.supply_volts)


def test_interrupted_costs_more_than_clean():
    clean = make_bed()
    assert clean.push_update().success
    interrupted = make_bed()
    link = Link(BLE_GATT, outages=[Outage(at_byte=500, failures=2)])
    retry = TransportRetryPolicy(max_attempts=4, backoff_initial=2.0)
    assert run_push(interrupted, link, retry).success
    # Same firmware, same link profile: the outage can only add time
    # (backoff) — and never removes delivered-byte energy.
    assert interrupted.device.clock.now > clean.device.clock.now
    assert interrupted.device.meter.energy_mj("radio_rx") \
        >= clean.device.meter.energy_mj("radio_rx")


def test_interruption_metrics_and_events_surface():
    bed = make_bed()
    link = Link(BLE_GATT, outages=[Outage(at_byte=500)])
    retry = TransportRetryPolicy(max_attempts=3, backoff_initial=2.0)
    assert run_push(bed, link, retry).success
    snapshot = bed.device.metrics.snapshot()
    assert snapshot["transport.interruptions"] == 1
    assert snapshot["transport.resumes"] == 1
    assert snapshot["events.transfer_interrupted"] == 1
    assert snapshot["events.transfer_resumed"] == 1
    assert snapshot["time.backoff_seconds"] > 0
