"""Correlated chaos sweep: grid shape, determinism, bounded tier-1 run.

Tier-1 drives a bounded slice of the correlated grid (both event
families, a coordinator kill) and the determinism audit; the full
>=64-point acceptance grid is opt-in via ``pytest -m chaos``.
"""

import json

import pytest

from repro.tools import chaos
from repro.tools.cli import main as cli_main
from repro.tools.report import validate_data

DEVICES = 8


# -- grid ---------------------------------------------------------------------


def test_full_grid_meets_the_acceptance_floor():
    grid = chaos.build_correlated_grid()
    assert len(grid) >= 64
    kills = [point for point in grid if point.kill is not None]
    assert kills                                    # includes kill points
    assert {point.kinds for point in grid} == set(chaos.CORRELATED_EVENT_KINDS)
    assert {point.domains for point in grid} == {2, 3}
    assert len(set(grid)) == len(grid)              # no duplicate cells
    assert chaos.build_correlated_grid() == grid    # deterministic


def test_point_validation():
    with pytest.raises(ValueError):
        chaos.CorrelatedPoint(domains=0, severity=1, kinds="storm")
    with pytest.raises(ValueError):
        chaos.CorrelatedPoint(domains=1, severity=0, kinds="storm")
    with pytest.raises(ValueError):
        chaos.CorrelatedPoint(domains=1, severity=1, kinds="hailstorm")
    with pytest.raises(ValueError):
        chaos.CorrelatedPoint(domains=1, severity=1, kinds="storm",
                              kill="late")
    point = chaos.CorrelatedPoint(domains=2, severity=4, kinds="herd",
                                  kill="mid")
    assert point.label == "herd/d2/s4/kill-mid"


def test_lab_rejects_toy_fleets():
    with pytest.raises(ValueError):
        chaos.CorrelatedLab(devices=3)


# -- bounded tier-1 sweep -----------------------------------------------------


BOUNDED_GRID = chaos.build_correlated_grid(
    domain_counts=(2,), severities=(4,), kinds=("storm", "herd"),
    kills=(None, "early"))


@pytest.fixture(scope="module")
def bounded_report():
    return chaos.run_correlated_sweep(devices=DEVICES, seed=0,
                                      grid=BOUNDED_GRID)


def test_bounded_sweep_never_bricks(bounded_report):
    assert bounded_report.bricked_total == 0, \
        chaos.format_correlated_summary(bounded_report)


def test_bounded_sweep_resumes_are_byte_identical(bounded_report):
    kills = [result for result in bounded_report.results
             if result.kill is not None]
    assert len(kills) == 2
    for result in kills:
        assert result.kill["resume_identical"], result.point.label
        assert result.kill["token_parity"], result.point.label
        assert result.kill["reflash_free"], result.point.label


def test_governed_amplification_is_bounded_ungoverned_is_not(
        bounded_report):
    # The acceptance bound: with the retry budget + breakers attached,
    # backhaul amplification stays under 2x the clean campaign.
    assert 0.0 < bounded_report.budgeted_max < 2.0
    # The ungoverned twin visibly amplifies the storm (the severity-4
    # storm exhausts the transport resume budget, so every member
    # lands on the campaign retry path).
    storm = next(result for result in bounded_report.results
                 if result.point.kinds == "storm"
                 and result.point.kill is None)
    assert storm.unbounded_amplification > storm.amplification
    assert storm.governor["sheds"] > 0


def test_sweep_report_serializes_and_validates_as_schema_v4(
        bounded_report, tmp_path):
    report = chaos.ChaosReport(
        seed=0, slot_configuration="b", transport="push",
        image_size=8192,
        calibration=chaos.Calibration(ops_any=2, ops_write=1,
                                      ops_erase=1, transfer_bytes=8192,
                                      fed_bytes=8192))
    report.correlated = bounded_report.to_dict()
    path = chaos.write_report(report, str(tmp_path / "chaos.json"))
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    assert data["schema_version"] == 4
    assert validate_data("chaos", 4, data) == []
    correlated = data["correlated"]
    assert correlated["grid_points"] == len(BOUNDED_GRID)
    assert correlated["resume_identical_all"] is True
    assert correlated["journal"]["appends"] > 0
    # Every embedded plan replays: domains + events round-trip.
    from repro.faults import DomainPlan
    for entry in correlated["results"]:
        restored = DomainPlan.from_dict(entry["plan"])
        assert restored.to_dict() == entry["plan"]
        if entry["kill"] is not None:
            assert restored.coordinator_kills() \
                == [entry["kill"]["append_index"]]


def test_schema_v4_validation_catches_divergence():
    base = {"calibration": {}, "results": [], "bricked": 0,
            "interrupted_phases": {}}
    assert any("correlated" in problem
               for problem in validate_data("chaos", 4, dict(base)))
    assert validate_data("chaos", 4, dict(base, correlated=None)) == []
    bad = dict(base, correlated={
        "devices": 4, "grid_points": 1, "domains": [2],
        "results": [{"bricked": 1}], "bricked": 0, "kills": 1,
        "resume_identical_all": False,
        "retry_amplification": {}, "journal": {}})
    problems = validate_data("chaos", 4, bad)
    assert any("bricked" in problem for problem in problems)
    assert any("diverged" in problem for problem in problems)


# -- determinism audit (satellite) --------------------------------------------


def test_same_seed_sweeps_serialize_identically():
    grid = chaos.build_correlated_grid(
        domain_counts=(2,), severities=(4,), kinds=("storm",),
        kills=(None, "early"))
    one = chaos.run_correlated_sweep(devices=DEVICES, seed=11, grid=grid)
    two = chaos.run_correlated_sweep(devices=DEVICES, seed=11, grid=grid)
    assert json.dumps(one.to_dict(), sort_keys=True) \
        == json.dumps(two.to_dict(), sort_keys=True)
    # A different seed reaches the domain and attacker RNGs: the
    # reports differ (coordinates move, scalars shift).
    three = chaos.run_correlated_sweep(devices=DEVICES, seed=12,
                                       grid=grid)
    assert json.dumps(three.to_dict(), sort_keys=True) \
        != json.dumps(one.to_dict(), sort_keys=True)


# -- CLI ----------------------------------------------------------------------


def test_cli_chaos_correlated_writes_v4_artifact(tmp_path, capsys):
    out = str(tmp_path / "CHAOS_report.json")
    status = cli_main(["chaos", "--points", "16", "--image-size", "8192",
                       "--correlated", "--devices", str(DEVICES),
                       "--domains", "2", "--grid", "2", "--out", out])
    assert status == 0
    captured = capsys.readouterr().out
    assert "correlated sweep:" in captured
    assert "resumes byte-identical" in captured
    status = cli_main(["report", "--validate", out])
    assert status == 0


# -- the full acceptance grid (opt-in) ----------------------------------------


@pytest.mark.chaos
def test_full_correlated_grid_meets_acceptance():
    """>=64 grid points incl. coordinator kills: 0 bricked, byte-exact
    resumes, governed amplification < 2x, ungoverned above it."""
    report = chaos.run_correlated_sweep()
    assert len(report.results) >= 64
    assert report.bricked_total == 0, \
        chaos.format_correlated_summary(report)
    assert report.kill_count >= 16
    assert report.resume_identical_all
    for result in report.results:
        if result.kill is not None:
            assert result.kill["token_parity"], result.point.label
            assert result.kill["reflash_free"], result.point.label
    assert 0.0 < report.budgeted_max < 2.0
    assert report.unbounded_max > report.budgeted_max
