"""Adversarial fuzzing: no mutation of a signed image may be accepted.

These tests state UpKit's security contract as properties and let
hypothesis hunt for counterexamples: any byte-level mutation of the
envelope must be rejected, any chunking of a valid image must be
accepted, and malformed protocol inputs must raise typed errors, never
crash or install.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DeviceProfile,
    DeviceToken,
    FeedStatus,
    ManifestFormatError,
    SignedManifest,
    UpdateError,
    UpdateServer,
    VendorServer,
    Verifier,
    VerificationError,
    make_test_identities,
)
from repro.crypto import get_backend
from repro.net.ble import AttPacket, BleError
from repro.net.coap import CoapError, CoapMessage

APP_ID = 0x55504B49
DEVICE_ID = 0x11223344
LINK_OFFSET = 0x8000


@pytest.fixture(scope="module")
def signed_setup():
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    firmware = bytes(range(256)) * 16
    server.publish(vendor.release(firmware, 2))
    token = DeviceToken(device_id=DEVICE_ID, nonce=0xBEEF,
                        current_version=0)
    image = server.prepare_update(token)
    profile = DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                            link_offset=LINK_OFFSET)
    verifier = Verifier(anchors, get_backend("tinycrypt"))
    return image, token, profile, verifier


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(position=st.integers(min_value=0, max_value=10 ** 6),
       mask=st.integers(min_value=1, max_value=255))
def test_any_envelope_mutation_is_rejected(signed_setup, position, mask):
    """Flip any byte of the signed envelope: validation must fail."""
    image, token, profile, verifier = signed_setup
    blob = bytearray(image.envelope.pack())
    blob[position % len(blob)] ^= mask
    try:
        envelope = SignedManifest.unpack(bytes(blob))
    except ManifestFormatError:
        return  # structurally rejected — fine
    with pytest.raises(VerificationError):
        verifier.validate_for_agent(
            envelope, profile=profile, token=token,
            installed_version=1, slot_capacity=10 ** 6)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(nonce=st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_only_the_matching_nonce_is_accepted(signed_setup, nonce):
    image, token, profile, verifier = signed_setup
    live_token = DeviceToken(device_id=DEVICE_ID, nonce=nonce,
                             current_version=0)
    if nonce == token.nonce:
        verifier.validate_for_agent(
            image.envelope, profile=profile, token=live_token,
            installed_version=1, slot_capacity=10 ** 6)
    else:
        with pytest.raises(VerificationError):
            verifier.validate_for_agent(
                image.envelope, profile=profile, token=live_token,
                installed_version=1, slot_capacity=10 ** 6)


@settings(max_examples=20, deadline=None)
@given(chunk_sizes=st.lists(st.integers(min_value=1, max_value=500),
                            min_size=1, max_size=50))
def test_any_chunking_of_a_valid_image_completes(chunk_sizes):
    """The FSM is insensitive to how the transport fragments bytes."""
    from repro.memory import FlashMemory, MemoryLayout
    from repro.core import UpdateAgent, provision_device

    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    firmware = bytes(range(256)) * 8
    server.publish(vendor.release(firmware, 1))
    flash = FlashMemory(64 * 1024, page_size=4096)
    layout = MemoryLayout.configuration_a(flash, 16 * 1024)
    profile = DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                            link_offset=LINK_OFFSET,
                            supports_differential=False)
    provision_device(server, layout.get("a"), DEVICE_ID)
    server.publish(vendor.release(firmware + b"v2", 2))

    agent = UpdateAgent(profile, layout, anchors,
                        get_backend("tinycrypt"))
    token = agent.request_token()
    blob = server.prepare_update(token).pack()

    offset = 0
    status = None
    index = 0
    while offset < len(blob):
        size = chunk_sizes[index % len(chunk_sizes)]
        index += 1
        size = min(size, len(blob) - offset)
        status = agent.feed(blob[offset:offset + size])
        offset += size
    assert status is FeedStatus.FIRMWARE_COMPLETE


@settings(max_examples=80, deadline=None)
@given(data=st.binary(max_size=120))
def test_coap_decoder_never_crashes(data):
    """Arbitrary bytes either parse or raise CoapError — nothing else."""
    try:
        CoapMessage.decode(data)
    except CoapError:
        pass


@settings(max_examples=80, deadline=None)
@given(data=st.binary(max_size=60))
def test_att_decoder_never_crashes(data):
    try:
        AttPacket.decode(data)
    except BleError:
        pass


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=300))
def test_slot_inspection_never_crashes(data):
    """Arbitrary slot contents never crash header inspection."""
    from repro.core import inspect_slot
    from repro.memory import FlashMemory, Slot

    flash = FlashMemory(8 * 1024, page_size=4096, strict=False)
    slot = Slot("x", flash, 0, 8 * 1024, bootable=True)
    slot.write(0, data)
    inspect_slot(slot)  # returns an envelope or None, never raises


@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=1, max_size=200))
def test_agent_rejects_garbage_manifests(data):
    """Random bytes as a manifest always end in CLEANING, not install."""
    from repro.core import AgentState, UpdateAgent, provision_device
    from repro.memory import FlashMemory, MemoryLayout

    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(b"\x01" * 1024, 1))
    flash = FlashMemory(32 * 1024, page_size=4096)
    layout = MemoryLayout.configuration_a(flash, 8 * 1024)
    provision_device(server, layout.get("a"), DEVICE_ID)
    profile = DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                            link_offset=LINK_OFFSET)
    agent = UpdateAgent(profile, layout, anchors,
                        get_backend("tinycrypt"))
    agent.request_token()
    garbage = (data * (200 // len(data) + 1))[:194]
    try:
        status = agent.feed(garbage)
        # Only a NEED_MORE is acceptable without an exception (short feed).
        assert status is not FeedStatus.FIRMWARE_COMPLETE
    except UpdateError:
        assert agent.state is AgentState.WAITING
