"""Simulation substrate tests: clock, energy meter, device, testbed."""

from __future__ import annotations

import pytest

from repro.platform import CC2650, NRF52840, CONTIKI
from repro.sim import EnergyMeter, Testbed, VirtualClock


# -- clock --------------------------------------------------------------------


def test_clock_advances():
    clock = VirtualClock()
    clock.advance(1.5, "radio")
    clock.advance(0.5, "flash")
    assert clock.now == pytest.approx(2.0)


def test_clock_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_clock_label_accounting():
    clock = VirtualClock()
    clock.advance(1.0, "a")
    clock.advance(2.0, "b")
    clock.advance(3.0, "a")
    assert clock.elapsed_by_label() == {"a": 4.0, "b": 2.0}


def test_clock_reset():
    clock = VirtualClock()
    clock.advance(1.0)
    clock.reset()
    assert clock.now == 0.0
    assert clock.elapsed_by_label() == {}


# -- energy meter -----------------------------------------------------------------


def test_energy_meter_integrates_charge():
    meter = EnergyMeter(supply_volts=3.0)
    meter.add("radio", seconds=2.0, current_ma=5.0)  # 10 mC
    assert meter.charge_mc("radio") == pytest.approx(10.0)
    assert meter.energy_mj("radio") == pytest.approx(30.0)


def test_energy_meter_totals_and_breakdown():
    meter = EnergyMeter()
    meter.add("radio", 1.0, 6.0)
    meter.add("cpu", 1.0, 4.0)
    assert meter.charge_mc() == pytest.approx(10.0)
    assert set(meter.breakdown_mj()) == {"radio", "cpu"}


def test_energy_meter_rejects_negative():
    with pytest.raises(ValueError):
        EnergyMeter().add("x", -1.0, 5.0)


def test_energy_meter_reset():
    meter = EnergyMeter()
    meter.add("x", 1.0, 1.0)
    meter.reset()
    assert meter.charge_mc() == 0.0


# -- testbed / device -----------------------------------------------------------------


def test_testbed_provisions_version_one():
    bed = Testbed.create(initial_firmware=b"\x11" * 2048,
                         slot_size=64 * 1024)
    assert bed.device.installed_version() == 1


def test_testbed_provisioning_costs_zeroed():
    bed = Testbed.create(initial_firmware=b"\x11" * 2048,
                         slot_size=64 * 1024)
    assert bed.device.clock.now == 0.0
    for slot in bed.device.layout.slots:
        assert slot.flash.stats.busy_seconds == 0.0


def test_testbed_static_configuration():
    bed = Testbed.create(initial_firmware=b"\x22" * 2048,
                         slot_configuration="b", slot_size=64 * 1024)
    assert not bed.device.layout.is_ab


def test_testbed_cc2650_uses_external_flash():
    bed = Testbed.create(board=CC2650, os_profile=CONTIKI,
                         crypto_library="cryptoauthlib",
                         slot_configuration="b",
                         initial_firmware=b"\x33" * 2048,
                         slot_size=48 * 1024)
    staging = bed.device.layout.get("b")
    assert "external" in staging.flash.name


def test_testbed_invalid_configuration():
    with pytest.raises(ValueError):
        Testbed.create(slot_configuration="c")


def test_device_reboot_accounts_loading_time():
    bed = Testbed.create(initial_firmware=b"\x44" * 2048,
                         slot_size=64 * 1024)
    result = bed.device.reboot()
    assert result.version == 1
    phases = bed.device.phase_breakdown()
    assert phases.get("loading", 0) >= NRF52840.reboot_seconds


def test_device_radio_accounting():
    bed = Testbed.create(initial_firmware=b"\x55" * 2048,
                         slot_size=64 * 1024)
    bed.device.account_radio(2.0, "rx")
    assert bed.device.clock.now == pytest.approx(2.0)
    assert bed.device.meter.charge_mc("radio_rx") == pytest.approx(
        2.0 * NRF52840.radio_rx_ma)


def test_reset_meters():
    bed = Testbed.create(initial_firmware=b"\x66" * 2048,
                         slot_size=64 * 1024)
    bed.device.account_radio(1.0, "rx")
    bed.reset_meters()
    assert bed.device.clock.now == 0.0
    assert bed.device.meter.charge_mc() == 0.0


def test_release_then_update_changes_version(firmware_gen):
    fw_v1 = firmware_gen.firmware(8 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    bed.release(firmware_gen.app_functionality_change(fw_v1), 2)
    outcome = bed.push_update()
    assert outcome.success
    assert bed.device.installed_version() == 2


def test_board_factories():
    internal = NRF52840.make_internal_flash()
    assert internal.size == 1024 * 1024
    assert NRF52840.has_external_flash is False
    with pytest.raises(ValueError):
        NRF52840.make_external_flash()
    external = CC2650.make_external_flash()
    assert "external" in external.name
