"""CoAP codec and blockwise-transfer tests (RFC 7252 / 7959)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    Block,
    CoapCode,
    CoapError,
    CoapMessage,
    CoapOption,
    CoapResourceServer,
    CoapType,
    blockwise_get,
)


def make_get(path="fw", mid=7, token=b"\xAB") -> CoapMessage:
    message = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                          message_id=mid, token=token)
    message.add_option(CoapOption.URI_PATH, path.encode())
    return message


# -- message codec --------------------------------------------------------------


def test_roundtrip_simple():
    message = make_get()
    decoded = CoapMessage.decode(message.encode())
    assert decoded.mtype == CoapType.CON
    assert decoded.code == CoapCode.GET
    assert decoded.message_id == 7
    assert decoded.token == b"\xAB"
    assert decoded.uri_path() == "fw"


def test_roundtrip_with_payload():
    message = make_get()
    message.payload = b"chunk data"
    decoded = CoapMessage.decode(message.encode())
    assert decoded.payload == b"chunk data"


def test_roundtrip_multi_segment_path():
    message = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                          message_id=1)
    message.add_option(CoapOption.URI_PATH, b"api")
    message.add_option(CoapOption.URI_PATH, b"v1")
    message.add_option(CoapOption.URI_PATH, b"firmware")
    assert CoapMessage.decode(message.encode()).uri_path() \
        == "api/v1/firmware"


def test_option_delta_extended_encoding():
    """Options with number gaps > 12 use the extended delta byte."""
    message = CoapMessage(mtype=CoapType.NON, code=CoapCode.GET,
                          message_id=2)
    message.add_option(CoapOption.URI_PATH, b"x")      # 11
    message.add_option(CoapOption.BLOCK2, b"\x06")     # 23: delta 12
    message.add_option(CoapOption.SIZE2, b"\x00\x10")  # 28
    message.add_option(100, b"custom")                 # big delta: ext
    decoded = CoapMessage.decode(message.encode())
    assert decoded.option(100) == b"custom"
    assert decoded.option(CoapOption.SIZE2) == b"\x00\x10"


def test_long_option_value_extended_length():
    message = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                          message_id=3)
    message.add_option(CoapOption.URI_QUERY, b"q" * 300)
    decoded = CoapMessage.decode(message.encode())
    assert decoded.option(CoapOption.URI_QUERY) == b"q" * 300


def test_decode_rejects_short_header():
    with pytest.raises(CoapError):
        CoapMessage.decode(b"\x40\x01")


def test_decode_rejects_bad_version():
    blob = bytearray(make_get().encode())
    blob[0] = (2 << 6) | (blob[0] & 0x3F)
    with pytest.raises(CoapError):
        CoapMessage.decode(bytes(blob))


def test_decode_rejects_payload_marker_without_payload():
    blob = make_get().encode() + b"\xFF"
    with pytest.raises(CoapError):
        CoapMessage.decode(blob)


def test_token_length_validation():
    with pytest.raises(CoapError):
        CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                    message_id=1, token=b"x" * 9)


def test_message_id_validation():
    with pytest.raises(CoapError):
        CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                    message_id=70000)


# -- Block option ----------------------------------------------------------------


@pytest.mark.parametrize("num,more,size", [
    (0, False, 16), (0, True, 64), (5, True, 64), (1000, False, 1024),
])
def test_block_roundtrip(num, more, size):
    block = Block(num=num, more=more, size=size)
    assert Block.decode(block.encode()) == block


def test_block_zero_encodes_empty():
    assert Block(num=0, more=False, size=16).encode() == b""
    assert Block.decode(b"") == Block(num=0, more=False, size=16)


def test_block_rejects_bad_size():
    with pytest.raises(CoapError):
        Block(num=0, more=False, size=100)


def test_block_rejects_reserved_szx():
    with pytest.raises(CoapError):
        Block.decode(b"\x07")


# -- resource server ---------------------------------------------------------------


@pytest.fixture()
def server():
    srv = CoapResourceServer()
    srv.register("small", b"tiny")
    srv.register("big", bytes(range(256)) * 4)  # 1024 bytes
    srv.register("echo-query", lambda query: b"query=" + query)
    return srv


def test_get_small_resource(server):
    response = CoapMessage.decode(server.handle(make_get("small").encode()))
    assert response.code == CoapCode.CONTENT
    assert response.payload == b"tiny"
    assert response.block2() == Block(num=0, more=False, size=64)


def test_not_found(server):
    response = CoapMessage.decode(
        server.handle(make_get("missing").encode()))
    assert response.code == CoapCode.NOT_FOUND


def test_non_get_rejected(server):
    message = make_get("small")
    message.code = CoapCode.POST
    response = CoapMessage.decode(server.handle(message.encode()))
    assert response.code == CoapCode.BAD_REQUEST


def test_blockwise_get_reassembles(server):
    assert blockwise_get(server, "big", block_size=64) \
        == bytes(range(256)) * 4
    assert blockwise_get(server, "big", block_size=256) \
        == bytes(range(256)) * 4


def test_blockwise_get_callback_counts_exchanges(server):
    exchanges = []
    blockwise_get(server, "big", block_size=128,
                  on_exchange=lambda req, rsp: exchanges.append(
                      (len(req), len(rsp))))
    assert len(exchanges) == 1024 // 128


def test_callable_resource_receives_query(server):
    body = blockwise_get(server, "echo-query", query=b"abc123")
    assert body == b"query=abc123"


def test_block_out_of_range(server):
    message = make_get("small")
    message.add_option(CoapOption.BLOCK2,
                       Block(num=99, more=False, size=64).encode())
    response = CoapMessage.decode(server.handle(message.encode()))
    assert response.code == CoapCode.BAD_REQUEST


def test_response_echoes_token_and_mid(server):
    request = make_get("small", mid=1234, token=b"\x01\x02")
    response = CoapMessage.decode(server.handle(request.encode()))
    assert response.message_id == 1234
    assert response.token == b"\x01\x02"
    assert response.mtype == CoapType.ACK


@settings(max_examples=40, deadline=None)
@given(
    mid=st.integers(min_value=0, max_value=0xFFFF),
    token=st.binary(max_size=8),
    payload=st.binary(max_size=300),
    options=st.lists(
        st.tuples(st.integers(min_value=1, max_value=2000),
                  st.binary(max_size=50)),
        max_size=5),
)
def test_roundtrip_property(mid, token, payload, options):
    message = CoapMessage(mtype=CoapType.NON, code=CoapCode.CONTENT,
                          message_id=mid, token=token, payload=payload)
    for number, value in options:
        message.add_option(number, value)
    decoded = CoapMessage.decode(message.encode())
    assert decoded.message_id == mid
    assert decoded.token == token
    assert decoded.payload == payload
    assert sorted(decoded.options) == sorted(
        (n, v) for n, v in message.options)
