"""End-to-end `cli fleetview` tests (the acceptance gate).

A bounded 12-device fleet keeps the tier-1 run fast; the full default
50-device campaign runs under the opt-in ``fleetview`` marker (mirroring
the trace/chaos pattern).
"""

from __future__ import annotations

import json

import pytest

from repro.tools.cli import main
from repro.tools.fleetview import run_fleetview


@pytest.fixture(scope="module")
def fleetview_paths(tmp_path_factory):
    """Run ``cli fleetview`` once (bounded fleet) for the whole module."""
    directory = tmp_path_factory.mktemp("fleetview")
    json_path = directory / "FLEET_telemetry.json"
    prom_path = directory / "FLEET_metrics.prom"
    rc = main(["fleetview", "--devices", "12", "--image-size", "8192",
               "--out", str(json_path), "--metrics-out", str(prom_path)])
    assert rc == 0, "healthy bounded fleet must exit 0"
    return json_path, prom_path


@pytest.fixture(scope="module")
def fleetview_doc(fleetview_paths):
    with open(fleetview_paths[0]) as fh:
        return json.load(fh)


def test_artifact_is_schema_stamped_and_validates(fleetview_paths,
                                                  fleetview_doc):
    assert fleetview_doc["report_kind"] == "fleetview"
    assert fleetview_doc["schema_version"] == 1
    rc = main(["report", "--validate", str(fleetview_paths[0])])
    assert rc == 0


def test_every_device_updates_and_the_verdict_is_ok(fleetview_doc):
    assert fleetview_doc["devices"] == 12
    assert fleetview_doc["slo_verdict"] == "ok"
    campaign = fleetview_doc["campaign"]
    assert len(campaign["updated"]) == 12
    assert campaign["failed"] == []
    assert campaign["quarantined"] == []
    assert not campaign["aborted"] and not campaign["paused"]


def test_injected_straggler_and_storm_are_detected(fleetview_doc):
    straggler = fleetview_doc["injected"]["straggler"]
    storm = fleetview_doc["injected"]["storm"]
    assert straggler != storm
    found = {(anomaly["device"], anomaly["kind"])
             for wave in fleetview_doc["telemetry"]["waves"]
             for anomaly in wave["health"]["anomalies"]}
    assert ("%s" % straggler, "straggler") in found
    assert ("%s" % storm, "retry-storm") in found


def test_openmetrics_artifact_is_well_formed(fleetview_paths):
    text = fleetview_paths[1].read_text()
    assert text.endswith("# EOF\n")
    lines = text.splitlines()
    # One family per TYPE line; every sample carries a device label.
    assert any(line.startswith("# TYPE upkit_") for line in lines)
    assert any('device="fleet-000"' in line for line in lines)
    assert any('device="fleet-011"' in line for line in lines)
    # Counters got the mandatory _total suffix.
    assert any("_total{" in line for line in lines)
    # Histogram exposition: cumulative buckets end at +Inf.
    assert any('le="+Inf"' in line for line in lines)


def test_tight_slo_breaches_and_exits_nonzero(tmp_path):
    json_path = tmp_path / "breach.json"
    prom_path = tmp_path / "breach.prom"
    rc = main(["fleetview", "--devices", "12", "--image-size", "8192",
               "--slo-p95", "0.001",
               "--out", str(json_path), "--metrics-out", str(prom_path)])
    assert rc == 1
    with open(json_path) as fh:
        doc = json.load(fh)
    assert doc["slo_verdict"] == "breached"
    # The PAUSE action stopped the rollout after the canary wave.
    assert doc["campaign"]["paused"]
    assert len(doc["campaign"]["pending"]) > 0
    # A breached run still validates as an artifact.
    assert main(["report", "--validate", str(json_path)]) == 0


@pytest.mark.fleetview
def test_default_fifty_device_campaign_is_healthy(tmp_path):
    """ISSUE acceptance: the full 50-device default campaign."""
    result = run_fleetview()
    assert result.devices == 50
    assert result.telemetry.verdict() == "ok"
    assert len(result.campaign_report["updated"]) == 50
    found = {(anomaly["device"], anomaly["kind"])
             for anomaly in result.telemetry.anomalies()}
    assert (result.straggler, "straggler") in found
    assert (result.storm, "retry-storm") in found
    assert result.openmetrics.endswith("# EOF\n")
