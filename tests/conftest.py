"""Shared fixtures for the UpKit reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DeviceProfile,
    TrustAnchors,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.crypto import get_backend
from repro.memory import FlashMemory, MemoryLayout
from repro.workload import FirmwareGenerator

APP_ID = 0x55504B49
DEVICE_ID = 0x11223344
LINK_OFFSET = 0x8000


@pytest.fixture()
def identities():
    """(vendor_identity, server_identity, trust_anchors)."""
    return make_test_identities()


@pytest.fixture()
def anchors(identities) -> TrustAnchors:
    return identities[2]


@pytest.fixture()
def vendor(identities) -> VendorServer:
    return VendorServer(identities[0], app_id=APP_ID,
                        link_offset=LINK_OFFSET)


@pytest.fixture()
def server(identities) -> UpdateServer:
    return UpdateServer(identities[1])


@pytest.fixture()
def profile() -> DeviceProfile:
    return DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                         link_offset=LINK_OFFSET)


@pytest.fixture()
def backend():
    return get_backend("tinycrypt")


@pytest.fixture()
def flash() -> FlashMemory:
    return FlashMemory(256 * 1024, page_size=4096)


@pytest.fixture()
def ab_layout(flash) -> MemoryLayout:
    return MemoryLayout.configuration_a(flash, 128 * 1024)


@pytest.fixture()
def static_layout() -> MemoryLayout:
    internal = FlashMemory(320 * 1024, page_size=4096, name="internal")
    return MemoryLayout.configuration_b(internal, 128 * 1024)


@pytest.fixture()
def firmware_gen() -> FirmwareGenerator:
    return FirmwareGenerator(seed=b"test-suite")


@pytest.fixture()
def fw_v1(firmware_gen) -> bytes:
    return firmware_gen.firmware(24 * 1024, image_id=1)


@pytest.fixture()
def fw_v2(firmware_gen, fw_v1) -> bytes:
    return firmware_gen.os_version_change(fw_v1, revision=2)


@pytest.fixture()
def published(vendor, server, fw_v1):
    """Server with version 1 published; returns (vendor, server)."""
    server.publish(vendor.release(fw_v1, 1))
    return vendor, server


@pytest.fixture()
def provisioned(published, ab_layout):
    """(vendor, server, layout) with the factory image in slot A."""
    vendor_srv, update_srv = published
    provision_device(update_srv, ab_layout.get("a"), DEVICE_ID)
    return vendor_srv, update_srv, ab_layout


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
