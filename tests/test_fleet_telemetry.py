"""Campaign + telemetry plane integration: cycle identity, SLO-driven
rollout control, and telemetry-driven quarantine.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from repro.fleet import (
    Campaign,
    DeviceRecord,
    DeviceState,
    ParallelWaveExecutor,
    RetryPolicy,
    RolloutPolicy,
)
from repro.memory import MemoryLayout
from repro.net import Link, Outage, TransportRetryPolicy
from repro.net.link import COAP_6LOWPAN
from repro.obs.slo import SLO, Action, FleetTelemetry
from repro.platform import NRF52840, ZEPHYR
from repro.sim import SimulatedDevice
from repro.workload import FirmwareGenerator
from tests.conftest import APP_ID, LINK_OFFSET

IMAGE_SIZE = 8 * 1024


def build_fleet(count: int, links: "dict[int, Link]" = {}):
    """(server, fleet): v1 provisioned everywhere, v2 published."""
    gen = FirmwareGenerator(seed=b"fleet-telemetry")
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    fw_v2 = gen.app_functionality_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))
    fleet = _make_fleet(server, anchors, count, links)
    server.publish(vendor.release(fw_v2, 2))
    return server, fleet


def _make_fleet(server, anchors, count: int,
                links: "dict[int, Link]" = {}) -> List[DeviceRecord]:
    fleet = []
    for index in range(count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x5000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="dev-%02d" % index,
            device=device,
            transport="pull",
            link=links.get(index),
        ))
    return fleet


def dead_radio_link() -> Link:
    """An outage deep enough that even a resuming transport abandons."""
    return Link(COAP_6LOWPAN, outages=(Outage(at_byte=512,
                                              failures=50),))


# -- cycle identity -----------------------------------------------------------


def test_breach_free_telemetry_is_invisible_to_the_report():
    """The tentpole guarantee: attaching telemetry (scrapes, health
    analysis, SLO evaluation) changes nothing about a healthy rollout —
    the campaign reports are byte-identical."""
    server_a, fleet_a = build_fleet(8)
    server_b, fleet_b = build_fleet(8)
    plain = Campaign(server_a, fleet_a,
                     RolloutPolicy(canary_fraction=0.25)).run()
    telemetry = FleetTelemetry()
    observed = Campaign(server_b, fleet_b,
                        RolloutPolicy(canary_fraction=0.25),
                        telemetry=telemetry).run()
    assert plain.to_dict() == observed.to_dict()
    # ... and the plane did actually watch: every device was sampled.
    assert len(telemetry.samples) == 8
    assert telemetry.verdict() == "ok"
    assert telemetry.store.total_points() > 0


def test_serial_and_parallel_scrapes_build_identical_stores():
    server_a, fleet_a = build_fleet(6)
    server_b, fleet_b = build_fleet(6)
    serial_tel = FleetTelemetry()
    Campaign(server_a, fleet_a,
             RolloutPolicy(canary_fraction=0.2),
             telemetry=serial_tel).run()
    parallel_tel = FleetTelemetry()
    Campaign(server_b, fleet_b,
             RolloutPolicy(canary_fraction=0.2),
             executor=ParallelWaveExecutor(max_workers=4),
             telemetry=parallel_tel).run()
    assert serial_tel.store.to_dict() == parallel_tel.store.to_dict()
    assert serial_tel.to_dict() == parallel_tel.to_dict()


# -- SLO-driven rollout control ----------------------------------------------


def test_slo_breach_pauses_the_rollout():
    server, fleet = build_fleet(8)
    telemetry = FleetTelemetry(slos=(
        SLO("impossible-p95", "p95_update_seconds", 0.001,
            Action.PAUSE),))
    report = Campaign(server, fleet,
                      RolloutPolicy(canary_fraction=0.25),
                      telemetry=telemetry).run()
    # The canary breached: rollout paused, the rest left pending.
    assert report.paused and not report.aborted
    assert len(report.waves) == 1
    assert len(report.updated) == 2
    assert sorted(report.pending) == [r.name for r in fleet[2:]]
    assert all(r.state is DeviceState.PENDING for r in fleet[2:])
    assert report.slo_breaches[0]["name"] == "impossible-p95"
    assert telemetry.breached


def test_slo_breach_aborts_the_rollout():
    server, fleet = build_fleet(8)
    telemetry = FleetTelemetry(slos=(
        SLO("impossible-p95", "p95_update_seconds", 0.001,
            Action.ABORT),))
    report = Campaign(server, fleet,
                      RolloutPolicy(canary_fraction=0.25),
                      telemetry=telemetry).run()
    assert report.aborted and not report.paused
    assert sorted(report.skipped) == [r.name for r in fleet[2:]]
    assert all(r.state is DeviceState.SKIPPED for r in fleet[2:])


def test_slo_slow_halves_subsequent_waves():
    server, fleet = build_fleet(9)
    telemetry = FleetTelemetry(slos=(
        SLO("tiny-energy", "max_energy_mj", 0.001, Action.SLOW),))
    report = Campaign(server, fleet,
                      RolloutPolicy(canary_fraction=0.12),
                      telemetry=telemetry).run()
    # Without telemetry this is two waves ([1, 8]); the persistent SLOW
    # breach halves the remainder again and again instead of stopping.
    assert not report.aborted and not report.paused
    assert len(report.updated) == 9
    assert [len(wave) for wave in report.waves] == [1, 4, 2, 1, 1]
    assert telemetry.breached


def test_telemetry_quarantine_prevents_failure_rate_abort():
    """Satellite regression (end to end): failed devices flagged as
    retry storms are quarantined by the telemetry plane *before* the
    abort math — neither the policy's failure-rate abort nor a
    failure-rate SLO double-counts them."""
    links = {5: dead_radio_link(), 6: dead_radio_link()}
    retry = RetryPolicy(
        max_attempts=2,
        transport_retry=TransportRetryPolicy(max_attempts=3))

    # Control: same fleet, no telemetry -> the two dead radios trip the
    # wave failure-rate abort.
    server, fleet = build_fleet(8, links)
    control = Campaign(server, fleet,
                       RolloutPolicy(canary_fraction=0.13,
                                     abort_failure_rate=0.25),
                       retry=retry).run()
    assert control.aborted
    assert len(control.failed) == 2

    # With the telemetry plane: the dead radios pile up interruptions,
    # get flagged as retry storms, and are re-filed as quarantined.
    server, fleet = build_fleet(8, links)
    telemetry = FleetTelemetry(slos=(
        SLO("failure-rate", "failure_rate", 0.25, Action.ABORT),))
    report = Campaign(server, fleet,
                      RolloutPolicy(canary_fraction=0.13,
                                    abort_failure_rate=0.25),
                      retry=retry, telemetry=telemetry).run()
    assert not report.aborted
    assert sorted(report.quarantined) == ["dev-05", "dev-06"]
    assert report.failed == []
    assert len(report.updated) == 6
    assert report.slo_breaches == []
    assert fleet[5].state is DeviceState.QUARANTINED
    # The telemetry samples agree with the campaign's bookkeeping.
    states = {s.name: s.state for s in telemetry.samples}
    assert states["dev-05"] == states["dev-06"] == "quarantined"
    anomaly_kinds = {(a["device"], a["kind"])
                     for a in telemetry.anomalies()}
    assert ("dev-05", "retry-storm") in anomaly_kinds
