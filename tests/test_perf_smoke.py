"""Tier-1 smoke subset of the performance harness.

The full benchmarks (``benchmarks/``, ``perf`` marker) are excluded
from tier-1 because they chase wall-clock numbers.  This module runs
the same code paths at a bounded size and checks only *correctness*
invariants — byte-identical fast-path output, identical campaign
reports across executors — so a fast-path regression that breaks
equivalence fails CI immediately rather than at the next manual bench
run.  The ``perf_smoke`` marker selects just these tests
(``pytest -m perf_smoke``); unlike ``perf`` it is *not* excluded by
the tier-1 addopts.
"""

from __future__ import annotations

import pytest

from repro.tools import bench


pytestmark = pytest.mark.perf_smoke


def test_delta_fastpath_is_byte_identical_at_smoke_size():
    result = bench.bench_delta_fastpath(image_size=8 * 1024)
    assert result["byte_identical"] is True
    assert result["firmware_bytes"] == 8 * 1024
    assert result["patch_bytes"] > 0
    assert result["delta_bytes"] > 0
    for side in ("fast", "reference"):
        assert result[side]["total_seconds"] >= 0.0


def test_campaign_configurations_report_identically_at_smoke_size():
    result = bench.bench_campaign(device_count=4, image_size=4 * 1024,
                                  max_workers=2, include_reference=False,
                                  process_workers=2)
    assert result["reports_identical"] is True
    for label in ("fast_serial", "fast_parallel", "fast_process"):
        assert result["%s_seconds" % label] > 0.0


def test_run_delta_document_validates():
    from repro.tools.report import validate_data

    document = bench.run_delta(image_size=8 * 1024)
    document["report_kind"] = "delta"
    document["schema_version"] = 1
    assert validate_data("delta", 1, document) == []


def test_signature_cache_accounting_is_exact_under_pool_contention():
    """Four signer-pool workers hammer a shared SignatureCache over a
    small keyspace; the accounting must stay *exact* (mirroring the
    PR 5 verify-LRU audit): every logical sign is either a hit or a
    miss, misses equal producer executions (one per distinct digest —
    single-flight means contention never re-signs), and every worker
    observes byte-identical signatures."""
    import threading

    from repro.crypto import generate_keypair
    from repro.crypto.engine import SignatureCache, available_engines
    from repro.serve.signing import SignerPool

    engine = available_engines()["fast"]
    key = generate_keypair(b"perf-smoke-sign-cache")
    cache = SignatureCache()
    pool = SignerPool(workers=4, engine=engine, signature_cache=cache)
    producers = [0] * 8
    producer_lock = threading.Lock()
    digests = [engine.sha256(b"message %d" % i) for i in range(8)]

    def sign_via_cache(index: int) -> bytes:
        digest = digests[index % 8]

        def produce() -> bytes:
            with producer_lock:
                producers[index % 8] += 1
            return key.sign_digest(digest, engine).encode()

        return cache.get_or_sign((key.scalar, digest), produce)

    rounds = 64
    futures = [pool.submit(sign_via_cache, i)
               for i in range(rounds)]
    results = [future.result(timeout=60) for future in futures]
    pool.close()

    expected = {i: key.sign_digest(digests[i], engine).encode()
                for i in range(8)}
    for i, signature in enumerate(results):
        assert signature == expected[i % 8]
    stats = cache.stats_snapshot()
    assert stats.calls == rounds
    assert stats.hits + stats.misses == rounds
    assert stats.misses == sum(producers)     # misses == executions
    assert [count for count in producers] == [1] * 8
    assert stats.hits == rounds - 8
    assert stats.evictions == 0
    assert len(cache) == 8
