"""Time-series store: bounded series, downsampling, fleet scraping."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_MAX_POINTS,
    FleetScraper,
    Point,
    Series,
    TimeSeriesStore,
)


def test_series_appends_and_reads_back():
    series = Series("s")
    for t in range(10):
        series.append(float(t), float(t) * 2.0)
    assert len(series) == 10
    assert series.latest() == Point(9.0, 18.0)
    assert series.values()[:3] == [0.0, 2.0, 4.0]
    assert series.window(2.0, 5.0) == [Point(2.0, 4.0), Point(3.0, 6.0),
                                       Point(4.0, 8.0)]
    assert series.resolution == 1


def test_series_rejects_time_going_backwards():
    series = Series("s")
    series.append(5.0, 1.0)
    with pytest.raises(ValueError):
        series.append(4.9, 1.0)
    # Equal timestamps are fine (several metrics scraped at one instant).
    series.append(5.0, 2.0)


def test_series_bound_must_be_even_and_sane():
    with pytest.raises(ValueError):
        Series("s", max_points=7)
    with pytest.raises(ValueError):
        Series("s", max_points=4)


def test_series_downsamples_pairwise_at_the_bound():
    series = Series("s", max_points=8)
    for t in range(9):
        series.append(float(t), float(t))
    # 9 points overflowed an 8-point bound: pairwise merge to 5.
    assert len(series) == 5
    assert series.resolution == 2
    # Merged points carry the mean value and the later timestamp.
    assert series.points[0] == Point(1.0, 0.5)
    assert series.points[1] == Point(3.0, 2.5)
    # The odd tail is kept verbatim.
    assert series.points[-1] == Point(8.0, 8.0)


def test_series_stays_bounded_forever():
    series = Series("s", max_points=8)
    for t in range(1000):
        series.append(float(t), 1.0)
    assert len(series) <= 8
    assert series.resolution > 1
    # Full time extent survives at reduced resolution.
    assert series.points[-1].t == 999.0


def test_downsampling_is_deterministic():
    def build():
        series = Series("s", max_points=8)
        for t in range(100):
            series.append(float(t), float(t % 7))
        return series.to_dict()

    assert build() == build()


def test_store_get_or_create_and_totals():
    store = TimeSeriesStore()
    store.record("a", 0.0, 1.0)
    store.record("a", 1.0, 2.0)
    store.record("b", 0.0, 3.0)
    assert store.names() == ["a", "b"]
    assert len(store) == 2
    assert store.total_points() == 3
    assert store.get("a").values() == [1.0, 2.0]
    assert store.get("missing") is None
    assert set(store.to_dict()) == {"a", "b"}


def test_scraper_flattens_registry_snapshot():
    registry = MetricsRegistry()
    registry.counter("net.bytes").inc(128)
    registry.gauge("energy.total_mj").set(7.5)
    hist = registry.histogram("update.latency_seconds", (1.0, 5.0))
    hist.observe(0.5)
    hist.observe(3.0)
    scraper = FleetScraper()
    recorded = scraper.scrape("dev-00", registry, t=10.0)
    # counter + gauge + histogram count/sum
    assert recorded == 4
    assert scraper.scrapes == 1
    store = scraper.store
    assert store.get("dev-00.net.bytes").latest() == Point(10.0, 128.0)
    assert store.get("dev-00.energy.total_mj").latest() == Point(10.0, 7.5)
    assert store.get("dev-00.update.latency_seconds.count").latest() \
        == Point(10.0, 2.0)
    assert store.get("dev-00.update.latency_seconds.sum").latest() \
        == Point(10.0, 3.5)


def test_default_bound_is_even():
    assert DEFAULT_MAX_POINTS % 2 == 0 and DEFAULT_MAX_POINTS >= 8
