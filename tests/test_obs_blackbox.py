"""Black-box journal tests: persistence, ring discipline, post-mortems."""

import pytest

from repro.faults import FaultKind, FaultPoint
from repro.memory import FlashMemory
from repro.obs.blackbox import RECORD_SIZE, BlackBox
from repro.tools import chaos


def small_flash(pages=2, page_size=4 * RECORD_SIZE):
    return FlashMemory(pages * page_size, page_size=page_size,
                       name="bb-test")


def test_record_roundtrip():
    box = BlackBox(flash=small_flash())
    box.record("token_issued", phase="propagation", t=1.5)
    box.record("manifest_verified", phase="propagation", t=2.0)
    records = box.records()
    assert [r.label for r in records] == ["token_issued",
                                         "manifest_verified"]
    assert [r.seq for r in records] == [1, 2]
    assert records[0].phase == "propagation"
    assert records[0].t == 1.5


def test_long_labels_are_truncated_not_rejected():
    box = BlackBox(flash=small_flash())
    record = box.record("transfer_interrupted")  # 19 chars > 17
    assert record.label == "transfer_interrup"
    assert box.records()[0].label == "transfer_interrup"


def test_ring_wrap_reclaims_oldest_page():
    box = BlackBox(flash=small_flash())  # capacity: 8 records, 2 pages
    for index in range(11):
        box.record("event_%d" % index)
    records = box.records()
    assert len(records) <= 8
    seqs = [r.seq for r in records]
    assert seqs == sorted(seqs)
    assert records[-1].seq == 11          # newest always survives
    assert records[-1].label == "event_10"


def test_remount_resumes_sequence():
    flash = small_flash()
    first = BlackBox(flash=flash)
    first.record("boot_attempt", phase="loading")
    first.record("boot_selected", phase="running")
    # A power cycle loses the BlackBox object; a fresh mount on the same
    # flash must resume appending after the highest valid sequence.
    second = BlackBox(flash=flash)
    record = second.record("token_issued")
    assert record.seq == 3
    assert [r.seq for r in second.records()] == [1, 2, 3]


def test_torn_record_is_skipped_not_misread():
    flash = small_flash()
    box = BlackBox(flash=flash)
    box.record("good_one")
    box.record("torn_one")
    # Clear bits inside the second record's label: CRC now fails, the
    # way a write interrupted by power loss leaves a half-programmed
    # line.
    flash.write(RECORD_SIZE + 14, b"\x00\x00")
    records = BlackBox(flash=flash).records()
    assert [r.label for r in records] == ["good_one"]


def test_post_mortem_survives_fuzzed_flash():
    """Satellite (PR 7): post_mortem() must *skip* torn/CRC-corrupt
    ring records, never raise — fuzz random corruption and truncation
    over a populated journal."""
    import random

    rng = random.Random(0x7E57)
    for trial in range(40):
        flash = small_flash(pages=2)
        box = BlackBox(flash=flash)
        for index in range(rng.randrange(1, 12)):
            box.record("event_%d" % index,
                       phase=rng.choice(["propagation", "loading"]),
                       t=float(index))
        # Corrupt 1-4 random windows: zeroed bytes model a torn write,
        # random bytes model bit rot; occasionally clobber a whole
        # record-sized slice (the mid-record power-cut shape).
        for _ in range(rng.randrange(1, 5)):
            offset = rng.randrange(0, flash.size - 4)
            width = rng.choice([1, 2, 4, RECORD_SIZE])
            width = min(width, flash.size - offset)
            if rng.random() < 0.5:
                # A torn write clears bits it never meant to (legal
                # NOR write: 1 -> 0 only).
                flash.write(offset, b"\x00" * width)
            else:
                # Bit rot flips bits regardless of NOR discipline.
                flash.corrupt(offset, bytes(rng.randrange(256)
                                            for _ in range(width)))
        remounted = BlackBox(flash=flash)
        report = remounted.post_mortem()       # must never raise
        assert report["record_count"] == len(remounted.records())
        for record in remounted.records():     # survivors decode sanely
            assert record.seq >= 1
            assert record.t >= 0.0


def test_post_mortem_flags_unexpected_boot():
    box = BlackBox(flash=small_flash())
    box.record("token_issued", phase="propagation", t=1.0)
    box.record("manifest_verified", phase="propagation", t=2.0)
    box.record("boot_attempt", phase="loading", t=3.0)   # power loss!
    report = box.post_mortem()
    assert report["interrupted_phase"] == "propagation"
    assert report["interruptions"] == [
        {"t": 3.0, "phase": "propagation", "after": "manifest_verified"}]
    assert report["record_count"] == 3


def test_post_mortem_accepts_clean_reboot():
    box = BlackBox(flash=small_flash())
    box.record("firmware_verified", phase="verification", t=1.0)
    box.record("ready_to_reboot", phase="loading", t=2.0)
    box.record("boot_attempt", phase="loading", t=3.0)
    box.record("boot_selected", phase="running", t=4.0)
    report = box.post_mortem()
    assert report["interruptions"] == []
    assert report["interrupted_phase"] is None
    assert report["last_label"] == "boot_selected"


def test_device_updates_journal_to_blackbox():
    from repro.sim import Testbed

    bed = Testbed.create()
    bed.release(b"\xCD" * 2048, 2)
    assert bed.push_update().success
    labels = [r.label for r in bed.device.blackbox.records()]
    assert "token_issued" in labels
    assert "firmware_verified" in labels
    assert "boot_attempt" in labels
    assert labels[-1] == "boot_selected"
    assert bed.device.blackbox.post_mortem()["interruptions"] == []


def test_chaos_power_loss_leaves_readable_post_mortem():
    """Acceptance: an injected power loss yields a black-box
    post-mortem identifying the interrupted phase."""
    lab = chaos.ChaosLab(image_size=8192)
    result = chaos.run_point(
        lab, FaultPoint(FaultKind.POWER_LOSS_WRITE, 3))
    assert result.status == "updated"       # anti-bricking holds
    box = result.black_box
    assert box is not None
    assert result.power_cycles >= 1
    assert len(box["interruptions"]) >= 1
    assert box["interrupted_phase"] == "propagation"
    assert box["last_label"] == "boot_selected"
    assert box["record_count"] > 0


@pytest.mark.trace
def test_chaos_power_loss_during_swap_attributes_loading():
    """Heavier variant: a power cut late in the flash-op axis lands in
    the install/boot window and must be attributed to ``loading``."""
    lab = chaos.ChaosLab(image_size=8192)
    calibration = chaos.calibrate(lab)
    late = FaultPoint(FaultKind.POWER_LOSS_ANY,
                      calibration.ops_any - 1)
    result = chaos.run_point(lab, late)
    assert result.status != "bricked"
    box = result.black_box
    assert box is not None
    if box["interruptions"]:
        assert box["interrupted_phase"] in ("loading", "verification",
                                            "propagation")
