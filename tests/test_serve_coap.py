"""The simulated-CoAP face: named chunks, dedup, protocol parity.

The headline test here is parity: the same device session spoken over
HTTP/1.1 and over CoAP block-wise datagrams against one shared
:class:`FleetService` must surface identical payload bytes, versions
and outcomes — the two faces are codecs over one service, and this is
where that claim is checked rather than asserted.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.net.coap import Block, CoapCode, CoapMessage, CoapOption, \
    CoapType
from repro.serve import (
    CoapDatagramRelay,
    CoapDeviceClient,
    CoapFront,
    FleetService,
    HttpServer,
)
from repro.tools.swarm import SwarmHttpClient, run_http_session

DEVICE = 0x40CC0001


def coap_service():
    service = FleetService(chunk_size=1024)
    service.seed_channels(image_size=4096)
    return service, CoapFront(service)


def test_full_session_over_datagrams():
    service, front = coap_service()
    relay = CoapDatagramRelay(front)
    client = CoapDeviceClient(relay, DEVICE, block_size=256)
    outcome = asyncio.run(client.run_session())
    assert outcome["digest_ok"] is True
    assert outcome["version"] == 2
    assert outcome["report"]["acknowledged"] is True
    assert service.device_status(DEVICE)["current_version"] == 2


@pytest.mark.parametrize("drop_every", [2, 3, 5])
def test_lossy_relay_retransmissions_are_deduplicated(drop_every):
    """Every Nth response datagram is lost; CON retransmission plus
    RFC 7252 §4.2 dedup must finish the session without ever burning
    the single-use token on a replayed POST."""
    service, front = coap_service()
    relay = CoapDatagramRelay(front, drop_every=drop_every)
    client = CoapDeviceClient(relay, DEVICE, block_size=256)
    outcome = asyncio.run(client.run_session())
    assert outcome["digest_ok"] is True
    assert relay.dropped > 0
    assert service.metrics.counter("serve.token_replays") \
        .to_value() == 0
    assert service.device_status(DEVICE)["current_version"] == 2


def test_shared_front_keeps_client_sessions_distinct():
    """Two clients behind one front emit identical deterministic
    token/MID sequences; per-endpoint dedup scope (RFC 7252 §4.4)
    must keep their sessions fully separate — without it the second
    client would be served the first client's cached responses."""
    service, front = coap_service()
    relay = CoapDatagramRelay(front)

    async def main():
        first = CoapDeviceClient(relay, DEVICE, block_size=256)
        second = CoapDeviceClient(relay, DEVICE + 1, block_size=256)
        return await first.run_session(), await second.run_session()

    one, two = asyncio.run(main())
    assert one["register"]["device_id"] == DEVICE
    assert two["register"]["device_id"] == DEVICE + 1
    assert one["token"] != two["token"]
    assert one["digest_ok"] and two["digest_ok"]
    assert service.device_status(DEVICE)["current_version"] == 2
    assert service.device_status(DEVICE + 1)["current_version"] == 2


def test_http_and_coap_sessions_are_byte_identical():
    """Protocol parity: one service, two faces, same device-visible
    bytes (acceptance criterion)."""
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        front = CoapFront(service)
        relay = CoapDatagramRelay(front)
        async with HttpServer(service) as server:
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as http_client:
                http = await run_http_session(http_client, DEVICE,
                                              1024)
        coap = await CoapDeviceClient(relay, DEVICE + 1,
                                      block_size=256).run_session()
        return http, coap

    http, coap = asyncio.run(main())
    assert http["payload"] == coap["payload"]
    assert http["version"] == coap["version"] == 2
    assert http["digest_ok"] and coap["digest_ok"]
    for outcome in (http, coap):
        assert outcome["report"]["status"] == "updated"
        assert outcome["report"]["acknowledged"] is True
    # Envelopes bind per-token nonces, so they differ by design —
    # but both must be well-formed manifests of the same length.
    assert http["envelope"] != coap["envelope"]
    assert len(http["envelope"]) == len(coap["envelope"])


def test_errors_map_to_coap_codes_with_structured_bodies():
    service, front = coap_service()
    relay = CoapDatagramRelay(front)
    client = CoapDeviceClient(relay, DEVICE)

    async def main():
        outcome = await client.run_session()
        # Replay the burnt token: 4.03 with the same error body the
        # HTTP face serves.
        request = client._request(CoapCode.GET,
                                  "images/%s" % outcome["token"])
        request.add_option(CoapOption.BLOCK2,
                           Block(num=0, more=False, size=256).encode())
        response = CoapMessage.decode(front.handle(request.encode()))
        assert response.code == CoapCode.FORBIDDEN
        error = json.loads(response.payload)["error"]
        assert error["code"] == "token-replayed"
        assert error["status"] == 403
        # Unknown route: 4.04.
        request = client._request(CoapCode.GET, "bogus/route")
        response = CoapMessage.decode(front.handle(request.encode()))
        assert response.code == CoapCode.NOT_FOUND
        # Malformed datagram: 4.00, never silence.
        response = CoapMessage.decode(front.handle(b"\x00"))
        assert response.code == CoapCode.BAD_REQUEST

    asyncio.run(main())


def test_dedup_cache_replays_responses_not_requests():
    """The same CON datagram twice executes the request once."""
    service, front = coap_service()
    service.register_device({"device_id": DEVICE, "channel": "stable",
                             "current_version": 1})
    request = CoapMessage(mtype=CoapType.CON, code=CoapCode.POST,
                          message_id=7, token=b"\x01\x02")
    for segment in ("devices", str(DEVICE), "token"):
        request.add_option(CoapOption.URI_PATH,
                           segment.encode("utf-8"))
    datagram = request.encode()
    first = front.handle(datagram)
    second = front.handle(datagram)
    assert first == second                   # cached, not re-executed
    body = json.loads(CoapMessage.decode(first).payload)
    assert body["nonce"] == 1
    # A genuinely new message ID is a new request — and loses the
    # single-open-token race as it should.
    request.message_id = 8
    response = CoapMessage.decode(front.handle(request.encode()))
    assert response.code == CoapCode.CONFLICT
    error = json.loads(response.payload)["error"]
    assert error["code"] == "token-outstanding"
