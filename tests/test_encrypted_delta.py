"""Encrypted differential updates: all four pipeline stages at once.

The deepest pipeline the design allows — decryption → LZSS
decompression → bspatch → buffered flash writes — exercised end to end
with real bytes through the agent FSM.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Bootloader,
    DeviceProfile,
    ENVELOPE_SIZE,
    FeedStatus,
    PayloadKind,
    UpdateAgent,
    UpdateServer,
    VendorServer,
    make_test_identities,
)
from repro.crypto import StreamCipher, get_backend
from repro.memory import FlashMemory, MemoryLayout, OpenMode
from repro.workload import FirmwareGenerator
from tests.conftest import APP_ID, DEVICE_ID, LINK_OFFSET

KEY = b"fleet-shared-key"
NONCE = b"device-nonce-16b"


@pytest.fixture()
def env():
    gen = FirmwareGenerator(seed=b"encrypted-delta")
    fw_v1 = gen.firmware(16 * 1024, image_id=1)
    fw_v2 = gen.os_version_change(fw_v1, revision=2)

    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id,
                          cipher=StreamCipher(KEY, NONCE))
    server.publish(vendor.release(fw_v1, 1))
    # (v2 is published below, after the factory image is prepared.)

    flash = FlashMemory(256 * 1024, page_size=4096)
    layout = MemoryLayout.configuration_a(flash, 64 * 1024)
    profile = DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                            link_offset=LINK_OFFSET)

    # Factory-install v1 manually (the factory image is encrypted too).
    from repro.core import DeviceToken
    factory_token = DeviceToken(device_id=DEVICE_ID, nonce=0,
                                current_version=0)
    image = server.prepare_update(factory_token)
    plaintext = StreamCipher(KEY, NONCE).derive(
        factory_token.pack()).process(image.payload)
    handle = layout.get("a").open(OpenMode.WRITE_ALL)
    handle.write(image.envelope.pack())
    handle.write(plaintext)
    handle.close()

    server.publish(vendor.release(fw_v2, 2))
    agent = UpdateAgent(profile, layout, anchors,
                        get_backend("tinycrypt"),
                        cipher=StreamCipher(KEY, NONCE))
    return server, agent, layout, profile, anchors, fw_v2


def test_encrypted_delta_served_and_applied(env):
    server, agent, layout, profile, anchors, fw_v2 = env
    token = agent.request_token()
    assert token.current_version == 1
    image = server.prepare_update(token)

    assert image.manifest.payload_kind == PayloadKind.DELTA_ENCRYPTED
    assert image.manifest.is_delta and image.manifest.is_encrypted
    assert len(image.payload) < len(fw_v2) // 2
    assert fw_v2 not in image.payload  # confidentiality on the wire

    status = agent.feed(image.pack())
    assert status is FeedStatus.FIRMWARE_COMPLETE
    assert agent.staged_slot.read(ENVELOPE_SIZE, len(fw_v2)) == fw_v2
    # The pipeline ran all four stages.
    assert agent._pipeline.stage_names == [
        "decryption", "decompression", "patching", "buffer"]


def test_encrypted_delta_boots(env):
    server, agent, layout, profile, anchors, fw_v2 = env
    token = agent.request_token()
    agent.feed(server.prepare_update(token).pack())
    agent.acknowledge_reboot()
    bootloader = Bootloader(profile, layout, anchors,
                            get_backend("tinycrypt"))
    assert bootloader.boot().version == 2


def test_wrong_cipher_key_is_rejected(env):
    server, agent, layout, profile, anchors, fw_v2 = env
    agent.cipher = StreamCipher(b"wrong-key-here!!", NONCE)
    token = agent.request_token()
    image = server.prepare_update(token)
    with pytest.raises(Exception):
        # Garbage after decryption: the LZSS decoder or digest check
        # fails before any reboot.
        agent.feed(image.pack())
    from repro.core import AgentState
    assert agent.state is AgentState.WAITING


def test_encrypted_delta_chunked_delivery(env):
    server, agent, layout, profile, anchors, fw_v2 = env
    token = agent.request_token()
    blob = server.prepare_update(token).pack()
    status = None
    for offset in range(0, len(blob), 33):
        status = agent.feed(blob[offset:offset + 33])
    assert status is FeedStatus.FIRMWARE_COMPLETE
    assert agent.staged_slot.read(ENVELOPE_SIZE, len(fw_v2)) == fw_v2
