"""Recovery-slot tests: the factory image as last resort (Fig. 6)."""

from __future__ import annotations

import pytest

from repro.core import (
    Bootloader,
    ENVELOPE_SIZE,
    NoValidImage,
    install_factory_image,
    make_factory_image,
    provision_device,
)
from repro.memory import FlashMemory, MemoryLayout
from repro.platform import CC2650
from tests.conftest import DEVICE_ID


@pytest.fixture()
def recovery_env(published, profile, anchors, backend, fw_v1):
    """CC2650-style layout: internal bootable, external staging +
    recovery; factory image in both the bootable and recovery slots."""
    _, server = published
    internal = CC2650.make_internal_flash()       # 128 kB
    external = CC2650.make_external_flash()       # 1 MB
    layout = MemoryLayout.configuration_b(internal, 48 * 1024,
                                          external=external,
                                          recovery=True)
    factory = provision_device(server, layout.get("a"), DEVICE_ID)
    install_factory_image(layout.get("recovery"), factory)
    bootloader = Bootloader(profile, layout, anchors, backend)
    return server, layout, bootloader, factory


def test_layout_has_recovery_slot(recovery_env):
    _, layout, _, _ = recovery_env
    recovery = layout.get("recovery")
    assert not recovery.bootable
    assert "external" in recovery.flash.name
    # Recovery is never chosen as the staging target.
    assert layout.staging_slot.name == "b"


def test_normal_boot_ignores_recovery(recovery_env):
    _, _, bootloader, _ = recovery_env
    result = bootloader.boot()
    assert result.version == 1
    assert result.slot.name == "a"
    assert not result.rolled_back


def test_recovery_restores_bricked_device(recovery_env, fw_v1):
    """Bootable corrupt, nothing staged: the recovery image reinstalls."""
    _, layout, bootloader, _ = recovery_env
    layout.get("a").invalidate()          # corrupted bootable image
    result = bootloader.boot()
    assert result.version == 1
    assert result.slot.name == "a"
    assert result.rolled_back
    assert layout.get("a").read(ENVELOPE_SIZE, len(fw_v1)) == fw_v1


def test_staged_image_preferred_over_recovery(recovery_env, published,
                                              vendor, fw_v2):
    """A valid staged image beats the recovery path."""
    server, layout, bootloader, _ = recovery_env
    server.publish(vendor.release(fw_v2, 2))
    from repro.core import DeviceToken, UpdateImage
    image = server.prepare_update(
        DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0))
    install_factory_image(layout.get("b"), image)
    layout.get("a").invalidate()
    result = bootloader.boot()
    assert result.version == 2            # staged v2, not recovery v1


def test_all_slots_invalid_raises(recovery_env):
    _, layout, bootloader, _ = recovery_env
    layout.get("a").invalidate()
    layout.get("recovery").invalidate()
    with pytest.raises(NoValidImage):
        bootloader.boot()


def test_corrupt_recovery_detected(recovery_env):
    _, layout, bootloader, _ = recovery_env
    layout.get("a").invalidate()
    recovery = layout.get("recovery")
    recovery.flash.corrupt(recovery.offset + ENVELOPE_SIZE + 9, b"\x00")
    with pytest.raises(NoValidImage):
        bootloader.boot()


def test_without_recovery_slot_still_raises(published, profile, anchors,
                                            backend):
    _, server = published
    internal = FlashMemory(320 * 1024, page_size=4096)
    layout = MemoryLayout.configuration_b(internal, 128 * 1024)
    provision_device(server, layout.get("a"), DEVICE_ID)
    layout.get("a").invalidate()
    bootloader = Bootloader(profile, layout, anchors, backend)
    with pytest.raises(NoValidImage):
        bootloader.boot()
