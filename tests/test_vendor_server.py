"""Vendor-server and update-server tests (generation + propagation)."""

from __future__ import annotations

import pytest

from repro.compression import decompress
from repro.core import (
    DeviceToken,
    ManifestFormatError,
    PayloadKind,
    UpdateServer,
    VendorServer,
)
from repro.crypto import StreamCipher, sha256
from repro.delta import patch
from tests.conftest import APP_ID, DEVICE_ID, LINK_OFFSET


# -- vendor server ------------------------------------------------------------------


def test_release_builds_canonical_manifest(vendor, fw_v1):
    release = vendor.release(fw_v1, 3)
    manifest = release.manifest
    assert manifest.version == 3
    assert manifest.size == len(fw_v1)
    assert manifest.digest == sha256(fw_v1)
    assert manifest.device_id == 0 and manifest.nonce == 0
    assert manifest.payload_kind == PayloadKind.FULL


def test_release_signature_verifies(vendor, anchors, fw_v1):
    release = vendor.release(fw_v1, 1)
    from repro.crypto import Signature
    assert anchors.vendor.verify(
        Signature.decode(release.vendor_signature),
        release.manifest.canonical_bytes())


def test_release_rejects_empty_firmware(vendor):
    with pytest.raises(ManifestFormatError):
        vendor.release(b"", 1)


def test_release_rejects_duplicate_version(vendor, fw_v1):
    vendor.release(fw_v1, 1)
    with pytest.raises(ManifestFormatError):
        vendor.release(fw_v1, 1)


def test_release_rejects_version_regression(vendor, fw_v1):
    vendor.release(fw_v1, 5)
    with pytest.raises(ManifestFormatError):
        vendor.release(fw_v1, 4)


def test_get_release_and_versions(vendor, fw_v1, fw_v2):
    vendor.release(fw_v1, 1)
    vendor.release(fw_v2, 2)
    assert vendor.versions == [1, 2]
    assert vendor.get_release(2).firmware == fw_v2
    with pytest.raises(ManifestFormatError):
        vendor.get_release(9)


# -- update server ---------------------------------------------------------------------


def token(nonce=0x1234, current=0):
    return DeviceToken(device_id=DEVICE_ID, nonce=nonce,
                       current_version=current)


def test_server_requires_published_release(server):
    with pytest.raises(ManifestFormatError):
        server.prepare_update(token())


def test_server_rejects_duplicate_publish(published, fw_v1):
    vendor, server = published
    with pytest.raises(ManifestFormatError):
        server.publish(vendor.get_release(1))


def test_announce_latest_version(published, fw_v2):
    vendor, server = published
    assert server.announce() == {"latest_version": 1}
    server.publish(vendor.release(fw_v2, 2))
    assert server.announce() == {"latest_version": 2}


def test_prepare_full_update_binds_token(published):
    _, server = published
    image = server.prepare_update(token(nonce=0xCAFE))
    manifest = image.manifest
    assert manifest.device_id == DEVICE_ID
    assert manifest.nonce == 0xCAFE
    assert manifest.payload_kind == PayloadKind.FULL
    assert len(image.payload) == manifest.size


def test_images_differ_per_request(published):
    _, server = published
    image_a = server.prepare_update(token(nonce=1))
    image_b = server.prepare_update(token(nonce=2))
    assert image_a.envelope.pack() != image_b.envelope.pack()
    # but the vendor signature is identical (same release)
    assert (image_a.envelope.vendor_signature
            == image_b.envelope.vendor_signature)


def test_delta_served_when_token_advertises_version(published, fw_v1,
                                                    fw_v2):
    vendor, server = published
    server.publish(vendor.release(fw_v2, 2))
    image = server.prepare_update(token(current=1))
    manifest = image.manifest
    assert manifest.payload_kind == PayloadKind.DELTA_LZSS
    assert manifest.old_version == 1
    assert manifest.size == len(fw_v2)
    assert len(image.payload) < len(fw_v2)
    # The delta reconstructs the new firmware exactly.
    assert patch(fw_v1, decompress(image.payload)) == fw_v2


def test_full_served_when_device_opts_out(published, fw_v2):
    vendor, server = published
    server.publish(vendor.release(fw_v2, 2))
    image = server.prepare_update(token(current=0))
    assert image.manifest.payload_kind == PayloadKind.FULL


def test_full_served_when_old_version_unknown(published, fw_v2):
    vendor, server = published
    server.publish(vendor.release(fw_v2, 2))
    image = server.prepare_update(token(current=42))  # never released
    assert image.manifest.payload_kind == PayloadKind.FULL


def test_delta_fallback_when_not_smaller(identities):
    """Unrelated firmware: the delta would exceed the image; serve full."""
    import random
    rng = random.Random(1)
    vendor = VendorServer(identities[0], app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(identities[1])
    fw_a = bytes(rng.randrange(256) for _ in range(4096))
    fw_b = bytes(rng.randrange(256) for _ in range(4096))
    server.publish(vendor.release(fw_a, 1))
    server.publish(vendor.release(fw_b, 2))
    image = server.prepare_update(token(current=1))
    assert image.manifest.payload_kind == PayloadKind.FULL
    assert server.stats.delta_fallbacks == 1


def test_delta_cache(published, fw_v2):
    vendor, server = published
    server.publish(vendor.release(fw_v2, 2))
    server.prepare_update(token(nonce=1, current=1))
    server.prepare_update(token(nonce=2, current=1))
    assert server.stats.delta_cache_hits == 1
    assert server.stats.delta_updates == 2


def test_server_stats(published, fw_v2):
    vendor, server = published
    server.publish(vendor.release(fw_v2, 2))
    server.prepare_update(token(nonce=1))
    server.prepare_update(token(nonce=2, current=1))
    assert server.stats.requests == 2
    assert server.stats.full_updates == 1
    assert server.stats.delta_updates == 1
    assert server.stats.bytes_served > 0


def test_encrypted_payloads(identities, fw_v1):
    vendor = VendorServer(identities[0], app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(identities[1],
                          cipher=StreamCipher(b"k" * 16, b"n" * 16))
    server.publish(vendor.release(fw_v1, 1))
    request = token()
    image = server.prepare_update(request)
    assert image.manifest.payload_kind == PayloadKind.FULL_ENCRYPTED
    assert image.payload != fw_v1
    decrypted = StreamCipher(b"k" * 16, b"n" * 16).derive(
        request.pack()).process(image.payload)
    assert decrypted == fw_v1

    # Different requests never share keystream bytes (two-time pad
    # prevention): identical plaintext encrypts differently.
    other = server.prepare_update(token(nonce=0x9999))
    assert other.payload != image.payload


def test_server_signature_covers_vendor_signature(published, anchors):
    _, server = published
    image = server.prepare_update(token())
    from repro.crypto import Signature
    assert anchors.server.verify(
        Signature.decode(image.envelope.server_signature),
        image.envelope.server_signed_region())


def test_delta_cache_lru_bound(identities, firmware_gen):
    """The delta cache is bounded: old pairs are evicted, LRU first."""
    vendor = VendorServer(identities[0], app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(identities[1], delta_cache_size=2)
    fw = firmware_gen.firmware(8 * 1024, image_id=1)
    server.publish(vendor.release(fw, 1))
    for version in range(2, 7):
        fw = firmware_gen.os_version_change(fw, revision=version)
        server.publish(vendor.release(fw, version))

    # Five distinct (old, 6) pairs through a 2-entry cache.
    for current in (1, 2, 3, 4, 5):
        server.prepare_update(token(nonce=current, current=current))
    assert len(server._delta_cache) == 2
    assert server.stats.delta_cache_evictions == 3
    assert server.stats.delta_cache_hits == 0

    # The most recent pairs, (4, 6) and (5, 6), still hit...
    server.prepare_update(token(nonce=10, current=5))
    server.prepare_update(token(nonce=11, current=4))
    assert server.stats.delta_cache_hits == 2
    # ...while an evicted pair is recomputed and evicts the LRU entry.
    server.prepare_update(token(nonce=12, current=1))
    assert server.stats.delta_cache_hits == 2
    assert server.stats.delta_cache_evictions == 4
    assert len(server._delta_cache) == 2


def test_delta_cache_hit_refreshes_recency(identities, firmware_gen):
    """A cache hit makes that pair the most recently used."""
    vendor = VendorServer(identities[0], app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(identities[1], delta_cache_size=2)
    fw = firmware_gen.firmware(8 * 1024, image_id=1)
    server.publish(vendor.release(fw, 1))
    for version in range(2, 5):
        fw = firmware_gen.os_version_change(fw, revision=version)
        server.publish(vendor.release(fw, version))

    server.prepare_update(token(nonce=1, current=1))   # cache (1, 4)
    server.prepare_update(token(nonce=2, current=2))   # cache (2, 4)
    server.prepare_update(token(nonce=3, current=1))   # hit -> (1, 4) fresh
    server.prepare_update(token(nonce=4, current=3))   # evicts (2, 4)
    assert (1, 4) in server._delta_cache
    assert (2, 4) not in server._delta_cache


def test_delta_cache_size_must_be_positive(identities):
    with pytest.raises(ValueError):
        UpdateServer(identities[1], delta_cache_size=0)
