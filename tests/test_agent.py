"""Update-agent FSM tests (Fig. 4 behaviour)."""

from __future__ import annotations

import pytest

from repro.core import (
    AgentState,
    ENVELOPE_SIZE,
    FeedStatus,
    SignatureInvalid,
    SizeExceeded,
    StateError,
    TokenMismatch,
    UpdateAgent,
    UpdateError,
    inspect_slot,
)
from repro.memory import OpenMode
from tests.conftest import DEVICE_ID


@pytest.fixture()
def agent(provisioned, profile, anchors, backend):
    _, _, layout = provisioned
    return UpdateAgent(profile, layout, anchors, backend)


@pytest.fixture()
def new_release(provisioned, fw_v2):
    vendor, server, _ = provisioned
    server.publish(vendor.release(fw_v2, 2))
    return server


def run_update(agent, server, chunk=200):
    token = agent.request_token()
    image = server.prepare_update(token)
    blob = image.pack()
    status = None
    for offset in range(0, len(blob), chunk):
        status = agent.feed(blob[offset:offset + chunk])
    return status, image


# -- token issuance -------------------------------------------------------------


def test_initial_state_waiting(agent):
    assert agent.state is AgentState.WAITING


def test_request_token_populates_fields(agent):
    token = agent.request_token()
    assert token.device_id == DEVICE_ID
    assert token.nonce != 0
    assert token.current_version == 1  # factory version


def test_request_token_erases_staging_slot(agent, provisioned):
    _, _, layout = provisioned
    staging = agent.target_slot()
    staging.write(0, b"\x00" * 64)
    agent.request_token()
    # WRITE_ALL at start-update erased the slot (Fig. 4 "start update").
    assert staging.read(0, 64) == b"\xff" * 64


def test_request_token_twice_rejected(agent):
    agent.request_token()
    with pytest.raises(StateError):
        agent.request_token()


def test_nonces_unique_per_request(agent):
    token_a = agent.request_token()
    agent.cancel()
    token_b = agent.request_token()
    assert token_a.nonce != token_b.nonce


def test_token_reports_no_diff_when_unsupported(provisioned, anchors,
                                                backend):
    import dataclasses
    from tests.conftest import APP_ID, LINK_OFFSET
    from repro.core import DeviceProfile
    _, _, layout = provisioned
    profile = DeviceProfile(device_id=DEVICE_ID, app_id=APP_ID,
                            link_offset=LINK_OFFSET,
                            supports_differential=False)
    agent = UpdateAgent(profile, layout, anchors, backend)
    assert agent.request_token().current_version == 0


def test_installed_version_from_slot(agent):
    assert agent.installed_version() == 1


def test_target_slot_is_not_running_slot(agent):
    assert agent.target_slot() is not agent.running_slot()


# -- happy path --------------------------------------------------------------------


def test_full_update_flow(agent, new_release, fw_v2):
    status, image = run_update(agent, new_release)
    assert status is FeedStatus.FIRMWARE_COMPLETE
    assert agent.state is AgentState.READY_TO_REBOOT
    assert agent.ready_to_reboot
    staged = agent.staged_slot
    stored = inspect_slot(staged)
    assert stored is not None and stored.manifest.version == 2
    assert staged.read(ENVELOPE_SIZE, len(fw_v2)) == fw_v2
    assert agent.stats.updates_completed == 1


def test_differential_update_flow(agent, new_release, fw_v2):
    status, image = run_update(agent, new_release)
    assert image.manifest.is_delta  # token advertised version 1
    assert agent.staged_slot.read(ENVELOPE_SIZE, len(fw_v2)) == fw_v2


def test_manifest_verified_status_emitted(agent, new_release):
    token = agent.request_token()
    image = new_release.prepare_update(token)
    status = agent.feed(image.envelope.pack())
    assert status is FeedStatus.MANIFEST_VERIFIED
    assert agent.state is AgentState.RECEIVE_FIRMWARE


def test_single_byte_chunks(agent, new_release, fw_v2):
    status, _ = run_update(agent, new_release, chunk=1)
    assert status is FeedStatus.FIRMWARE_COMPLETE


def test_acknowledge_reboot_resets_fsm(agent, new_release):
    run_update(agent, new_release)
    agent.acknowledge_reboot()
    assert agent.state is AgentState.WAITING


def test_acknowledge_without_completion_rejected(agent):
    with pytest.raises(StateError):
        agent.acknowledge_reboot()


# -- early rejection ---------------------------------------------------------------


def test_tampered_manifest_rejected_before_payload(agent, new_release):
    token = agent.request_token()
    image = new_release.prepare_update(token)
    envelope = bytearray(image.envelope.pack())
    envelope[7] ^= 0xFF  # corrupt a manifest byte
    with pytest.raises(SignatureInvalid):
        agent.feed(bytes(envelope))
    # CLEANING ran: back to WAITING, no payload was ever accepted.
    assert agent.state is AgentState.WAITING
    assert agent.stats.payload_bytes == 0
    assert agent.stats.rejected_before_download == 1


def test_replayed_image_rejected(agent, new_release):
    """The freshness property: an image for an old token is refused."""
    first_token = agent.request_token()
    captured = new_release.prepare_update(first_token)
    agent.cancel()

    agent.request_token()  # new request, new nonce
    with pytest.raises(TokenMismatch):
        agent.feed(captured.envelope.pack())
    assert agent.state is AgentState.WAITING


def test_corrupt_payload_rejected_before_reboot(agent, new_release):
    """A corrupted payload is caught after download, before any reboot.

    (A single bit flip inside an LZSS back-reference can be a semantic
    no-op — e.g. a different distance into a zero run — so the test
    corrupts a 16-byte span, which cannot survive both the pipeline and
    the digest check.)
    """
    token = agent.request_token()
    image = new_release.prepare_update(token)
    agent.feed(image.envelope.pack())
    payload = bytearray(image.payload)
    middle = len(payload) // 2
    for offset in range(16):
        payload[middle + offset] ^= 0xA5
    with pytest.raises(UpdateError):
        agent.feed(bytes(payload))
    assert agent.state is AgentState.WAITING
    assert agent.stats.rejected_after_download == 1
    assert not agent.ready_to_reboot


def test_oversized_payload_rejected(agent, new_release):
    token = agent.request_token()
    image = new_release.prepare_update(token)
    agent.feed(image.envelope.pack())
    with pytest.raises(SizeExceeded):
        agent.feed(image.payload + b"\x00")
    assert agent.state is AgentState.WAITING


def test_cleaning_invalidates_slot(agent, new_release):
    token = agent.request_token()
    staging = agent.target_slot()
    image = new_release.prepare_update(token)
    envelope = bytearray(image.envelope.pack())
    envelope[0] ^= 0xFF
    with pytest.raises(Exception):
        agent.feed(bytes(envelope))
    assert inspect_slot(staging) is None


def test_feed_in_waiting_state_rejected(agent):
    with pytest.raises(StateError):
        agent.feed(b"unsolicited")


def test_cancel_mid_manifest(agent, new_release):
    token = agent.request_token()
    image = new_release.prepare_update(token)
    agent.feed(image.envelope.pack()[:50])
    agent.cancel()
    assert agent.state is AgentState.WAITING
    # A fresh update can start afterwards.
    assert agent.request_token().nonce != token.nonce


def test_cancel_in_waiting_is_noop(agent):
    agent.cancel()
    assert agent.state is AgentState.WAITING


def test_stats_counters(agent, new_release):
    run_update(agent, new_release)
    stats = agent.stats
    assert stats.tokens_issued == 1
    assert stats.manifest_bytes >= ENVELOPE_SIZE
    assert stats.payload_bytes > 0
    assert stats.updates_completed == 1
    assert stats.updates_rejected == 0


def test_manifest_and_payload_in_one_feed(agent, new_release):
    token = agent.request_token()
    image = new_release.prepare_update(token)
    status = agent.feed(image.pack())  # everything at once
    assert status is FeedStatus.FIRMWARE_COMPLETE


def test_second_update_after_reboot(agent, new_release, provisioned,
                                    firmware_gen, fw_v2):
    vendor, server, layout = provisioned
    run_update(agent, server)
    agent.acknowledge_reboot()
    # After "reboot", version 2 runs (newest valid slot).
    assert agent.installed_version() == 2
    fw_v3 = firmware_gen.app_functionality_change(fw_v2, revision=3)
    server.publish(vendor.release(fw_v3, 3))
    status, image = run_update(agent, server)
    assert status is FeedStatus.FIRMWARE_COMPLETE
    assert image.manifest.old_version == 2  # delta against v2 now
