"""Bootloader tests: A/B and static loading, rollback, power loss."""

from __future__ import annotations

import pytest

from repro.core import (
    BootError,
    Bootloader,
    BootMode,
    DeviceToken,
    ENVELOPE_SIZE,
    NoValidImage,
    UpdateAgent,
    install_factory_image,
    provision_device,
)
from repro.memory import FlashMemory, MemoryLayout, OpenMode
from tests.conftest import DEVICE_ID


@pytest.fixture()
def boot_ab(provisioned, profile, anchors, backend):
    _, _, layout = provisioned
    return Bootloader(profile, layout, anchors, backend)


def make_static_env(published, profile, anchors, backend):
    """Static layout provisioned with the factory image."""
    _, server = published
    internal = FlashMemory(320 * 1024, page_size=4096, name="int")
    layout = MemoryLayout.configuration_b(internal, 128 * 1024)
    provision_device(server, layout.get("a"), DEVICE_ID)
    agent = UpdateAgent(profile, layout, anchors, backend)
    bootloader = Bootloader(profile, layout, anchors, backend)
    return server, layout, agent, bootloader


def stage_update(agent, server):
    token = agent.request_token()
    image = server.prepare_update(token)
    agent.feed(image.pack())
    agent.acknowledge_reboot()
    return image


# -- A/B mode -------------------------------------------------------------------


def test_ab_mode_detected(boot_ab):
    assert boot_ab.mode is BootMode.AB


def test_ab_boots_factory_image(boot_ab):
    result = boot_ab.boot()
    assert result.version == 1
    assert result.slot.name == "a"
    assert not result.swapped


def test_ab_boots_newest_valid_slot(provisioned, profile, anchors, backend,
                                    fw_v2, boot_ab):
    vendor, server, layout = provisioned
    server.publish(vendor.release(fw_v2, 2))
    agent = UpdateAgent(profile, layout, anchors, backend)
    stage_update(agent, server)
    result = boot_ab.boot()
    assert result.version == 2
    assert result.slot.name == "b"
    assert not result.swapped  # A/B never copies


def test_ab_falls_back_when_new_slot_corrupted(provisioned, profile,
                                               anchors, backend, fw_v2,
                                               boot_ab):
    vendor, server, layout = provisioned
    server.publish(vendor.release(fw_v2, 2))
    agent = UpdateAgent(profile, layout, anchors, backend)
    stage_update(agent, server)
    # Corrupt one firmware byte in slot B after the agent's check
    # (e.g. flash fault): the bootloader's re-verification catches it.
    slot_b = layout.get("b")
    slot_b.flash.corrupt(slot_b.offset + ENVELOPE_SIZE + 100, b"\x00")
    result = boot_ab.boot()
    assert result.version == 1
    assert result.slot.name == "a"


def test_ab_no_valid_image_raises(profile, anchors, backend, flash):
    layout = MemoryLayout.configuration_a(flash, 128 * 1024)
    bootloader = Bootloader(profile, layout, anchors, backend)
    with pytest.raises(NoValidImage):
        bootloader.boot()


def test_power_loss_mid_download_keeps_old_firmware(provisioned, profile,
                                                    anchors, backend,
                                                    fw_v2, boot_ab):
    """Interrupted propagation: the half-written slot never boots."""
    vendor, server, layout = provisioned
    server.publish(vendor.release(fw_v2, 2))
    agent = UpdateAgent(profile, layout, anchors, backend)
    token = agent.request_token()
    image = server.prepare_update(token)
    blob = image.pack()
    agent.feed(blob[:len(blob) // 2])  # power lost here
    result = boot_ab.boot()
    assert result.version == 1


# -- static mode ----------------------------------------------------------------


def test_static_mode_detected(published, profile, anchors, backend):
    _, _, _, bootloader = make_static_env(published, profile, anchors,
                                          backend)
    assert bootloader.mode is BootMode.STATIC


def test_static_boot_without_staged_image(published, profile, anchors,
                                          backend):
    _, _, _, bootloader = make_static_env(published, profile, anchors,
                                          backend)
    result = bootloader.boot()
    assert result.version == 1
    assert not result.swapped


def test_static_install_swaps_into_bootable_slot(published, profile,
                                                 anchors, backend, vendor,
                                                 fw_v2):
    server, layout, agent, bootloader = make_static_env(
        published, profile, anchors, backend)
    server.publish(vendor.release(fw_v2, 2))
    stage_update(agent, server)
    result = bootloader.boot()
    assert result.version == 2
    assert result.slot.name == "a"
    assert result.swapped and not result.rolled_back
    assert layout.get("a").read(ENVELOPE_SIZE, len(fw_v2)) == fw_v2


def test_static_keeps_old_image_for_rollback(published, profile, anchors,
                                             backend, vendor, fw_v1,
                                             fw_v2):
    server, layout, agent, bootloader = make_static_env(
        published, profile, anchors, backend)
    server.publish(vendor.release(fw_v2, 2))
    stage_update(agent, server)
    bootloader.boot()
    # The swap preserved the previous image in the staging slot.
    assert layout.get("b").read(ENVELOPE_SIZE, len(fw_v1)) == fw_v1


def test_static_stale_staged_image_not_installed(published, profile,
                                                 anchors, backend):
    """A staged image with an older/equal version is ignored."""
    server, layout, agent, bootloader = make_static_env(
        published, profile, anchors, backend)
    # Stage a copy of version 1 (equal to what runs) directly.
    image = server.prepare_update(
        DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0))
    install_factory_image(layout.get("b"), image)
    result = bootloader.boot()
    assert result.version == 1
    assert not result.swapped


def test_static_bootable_corrupt_staging_valid(published, profile, anchors,
                                               backend, vendor, fw_v2):
    server, layout, agent, bootloader = make_static_env(
        published, profile, anchors, backend)
    server.publish(vendor.release(fw_v2, 2))
    stage_update(agent, server)
    # Corrupt the bootable slot: the staged (newer) image still installs.
    slot_a = layout.get("a")
    slot_a.flash.corrupt(slot_a.offset + ENVELOPE_SIZE + 5, b"\x00\x00")
    result = bootloader.boot()
    assert result.version == 2


def test_static_nothing_bootable_raises(published, profile, anchors,
                                        backend):
    server, layout, agent, bootloader = make_static_env(
        published, profile, anchors, backend)
    layout.get("a").erase()
    with pytest.raises(NoValidImage):
        bootloader.boot()


# -- misc -------------------------------------------------------------------------


def test_bootloader_self_update_refused(boot_ab):
    with pytest.raises(BootError):
        boot_ab.update_self()


def test_verify_slot_rejects_garbage(boot_ab, provisioned):
    _, _, layout = provisioned
    slot_b = layout.get("b")
    slot_b.open(OpenMode.WRITE_ALL).write(b"\x5A" * 4096)
    assert boot_ab.verify_slot(slot_b) is None


def test_verify_slot_accepts_factory_image(boot_ab, provisioned):
    _, _, layout = provisioned
    envelope = boot_ab.verify_slot(layout.get("a"))
    assert envelope is not None and envelope.manifest.version == 1
