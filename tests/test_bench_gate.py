"""The `cli bench --baseline` regression gate."""

from __future__ import annotations

import json

import pytest

from repro.tools import bench
from repro.tools.bench import (
    DEFAULT_TOLERANCE,
    DELTA_GATE_METRICS,
    GATE_METRICS,
    IO_GATE_METRICS,
    compare_to_baseline,
    find_inversions,
)
from repro.tools.cli import main


def synthetic(devices=50, image_bytes=24576, serial=14.0, fast=1.8,
              parallel=2.0):
    return {"campaign": {
        "devices": devices,
        "image_bytes": image_bytes,
        "reference_serial_seconds": serial,
        "fast_serial_seconds": fast,
        "fast_parallel_seconds": parallel,
    }}


def synthetic_full(io_serial=4.0, io_parallel=1.5, io_process=1.8,
                   delta_total=0.15, **kwargs):
    """A document with the optional campaign_io + delta sections."""
    doc = synthetic(**kwargs)
    doc["campaign_io"] = {
        "devices": doc["campaign"]["devices"],
        "image_bytes": doc["campaign"]["image_bytes"],
        "host_rtt_seconds": 0.05,
        "fast_serial_seconds": io_serial,
        "fast_parallel_seconds": io_parallel,
        "fast_process_seconds": io_process,
    }
    doc["delta_generation"] = {
        "firmware_bytes": 49152,
        "bsdiff_seconds": delta_total * 0.8,
        "lzss_seconds": delta_total * 0.2,
        "total_seconds": delta_total,
    }
    return doc


def test_identical_runs_pass_the_gate():
    assert compare_to_baseline(synthetic(), synthetic()) == []


def test_getting_faster_never_trips_the_gate():
    fresh = synthetic(serial=7.0, fast=0.9, parallel=1.0)
    assert compare_to_baseline(fresh, synthetic()) == []


def test_small_slowdowns_within_tolerance_pass():
    fresh = synthetic(serial=14.0 * 1.19)
    assert compare_to_baseline(fresh, synthetic()) == []


def test_regression_beyond_tolerance_is_named():
    fresh = synthetic(parallel=2.0 * 1.25)
    problems = compare_to_baseline(fresh, synthetic())
    assert len(problems) == 1
    assert "fast_parallel_seconds regressed" in problems[0]
    assert "+25%" in problems[0]
    # A looser tolerance lets the same run through.
    assert compare_to_baseline(fresh, synthetic(), tolerance=0.3) == []


def test_every_gated_metric_is_checked():
    for metric in GATE_METRICS:
        fresh = synthetic()
        fresh["campaign"][metric] *= 2.0
        problems = compare_to_baseline(fresh, synthetic())
        assert any(metric in problem for problem in problems)


def test_workload_mismatch_demands_a_fresh_baseline():
    problems = compare_to_baseline(synthetic(devices=10), synthetic())
    assert len(problems) == 1
    assert "regenerate the baseline" in problems[0]
    problems = compare_to_baseline(synthetic(image_bytes=8192),
                                   synthetic())
    assert "regenerate the baseline" in problems[0]


def test_unusable_baselines_are_reported_not_crashed():
    assert compare_to_baseline({}, synthetic()) \
        == ["baseline or current results carry no campaign section"]
    broken = synthetic()
    del broken["campaign"]["fast_serial_seconds"]
    problems = compare_to_baseline(synthetic(), broken)
    assert problems == ["baseline has no usable 'fast_serial_seconds'"]
    with pytest.raises(ValueError):
        compare_to_baseline(synthetic(), synthetic(), tolerance=-0.1)


def test_default_tolerance_is_twenty_percent():
    assert DEFAULT_TOLERANCE == pytest.approx(0.20)


# -- optional campaign_io / delta_generation gating ---------------------------


def test_optional_sections_are_skipped_when_absent():
    # Old baseline (campaign only) vs new run with the extra sections —
    # and the reverse — must both gate cleanly on the shared section.
    assert compare_to_baseline(synthetic_full(), synthetic()) == []
    assert compare_to_baseline(synthetic(), synthetic_full()) == []


def test_io_profile_regression_is_named():
    fresh = synthetic_full(io_process=1.8 * 1.5)
    problems = compare_to_baseline(fresh, synthetic_full())
    assert len(problems) == 1
    assert "campaign_io fast_process_seconds regressed" in problems[0]


def test_every_io_metric_is_checked():
    for metric in IO_GATE_METRICS:
        fresh = synthetic_full()
        fresh["campaign_io"][metric] *= 2.0
        problems = compare_to_baseline(fresh, synthetic_full())
        assert any("campaign_io " + metric in p for p in problems)


def test_io_rtt_mismatch_demands_a_fresh_baseline():
    fresh = synthetic_full()
    fresh["campaign_io"]["host_rtt_seconds"] = 0.1
    problems = compare_to_baseline(fresh, synthetic_full())
    assert len(problems) == 1
    assert "campaign_io baseline" in problems[0]
    assert "regenerate the baseline" in problems[0]


def test_delta_generation_regression_is_named():
    fresh = synthetic_full(delta_total=0.15 * 2)
    problems = compare_to_baseline(fresh, synthetic_full())
    assert len(problems) == len(DELTA_GATE_METRICS)
    assert all("delta_generation " in p for p in problems)


def test_delta_workload_mismatch_demands_a_fresh_baseline():
    fresh = synthetic_full()
    fresh["delta_generation"]["firmware_bytes"] = 8192
    problems = compare_to_baseline(fresh, synthetic_full())
    assert len(problems) == 1
    assert "delta_generation baseline ran firmware_bytes" in problems[0]


def test_process_metric_gated_only_when_baseline_has_it():
    base = synthetic()
    base["campaign"]["fast_process_seconds"] = 2.5
    fresh = synthetic()
    fresh["campaign"]["fast_process_seconds"] = 2.5 * 2
    assert any("fast_process_seconds regressed" in p
               for p in compare_to_baseline(fresh, base))
    # Baseline without the metric: not gated, not an error.
    assert compare_to_baseline(fresh, synthetic()) == []


def synthetic_scale(devices=10_000, image_bytes=24576,
                    devices_per_s=5000.0, peak_rss_kb=250_000, **kwargs):
    """A document carrying the columnar fleet_scale section."""
    doc = synthetic_full(**kwargs)
    doc["fleet_scale"] = {
        "devices": devices,
        "image_bytes": image_bytes,
        "devices_per_s": devices_per_s,
        "peak_rss_kb": peak_rss_kb,
        "columnar_bytes_per_row": 86,
        "pickle_bytes_per_record": 33538,
        "sampled_parity": True,
    }
    return doc


def test_fleet_scale_section_skipped_when_absent():
    assert compare_to_baseline(synthetic_scale(), synthetic_full()) == []
    assert compare_to_baseline(synthetic_full(), synthetic_scale()) == []


def test_fleet_scale_throughput_drop_is_named():
    """devices_per_s gates in the *inverted* direction: higher is
    better, so a >20% drop fails."""
    fresh = synthetic_scale(devices_per_s=5000.0 * 0.7)
    problems = compare_to_baseline(fresh, synthetic_scale())
    assert len(problems) == 1
    assert "fleet_scale devices_per_s regressed" in problems[0]
    assert "-30%" in problems[0]
    # Within tolerance (or faster) passes.
    assert compare_to_baseline(synthetic_scale(devices_per_s=5000 * 0.85),
                               synthetic_scale()) == []
    assert compare_to_baseline(synthetic_scale(devices_per_s=9999.0),
                               synthetic_scale()) == []


def test_fleet_scale_rss_growth_is_named():
    """peak_rss_kb gates lower-is-better like the wall-clock metrics."""
    fresh = synthetic_scale(peak_rss_kb=int(250_000 * 1.5))
    problems = compare_to_baseline(fresh, synthetic_scale())
    assert len(problems) == 1
    assert "fleet_scale peak_rss_kb regressed" in problems[0]
    assert compare_to_baseline(synthetic_scale(peak_rss_kb=100_000),
                               synthetic_scale()) == []


def test_fleet_scale_workload_mismatch_demands_a_fresh_baseline():
    problems = compare_to_baseline(synthetic_scale(devices=500),
                                   synthetic_scale())
    assert len(problems) == 1
    assert "fleet_scale baseline" in problems[0]
    assert "regenerate the baseline" in problems[0]


def test_fleet_scale_missing_metrics_are_reported():
    broken = synthetic_scale()
    del broken["fleet_scale"]["devices_per_s"]
    problems = compare_to_baseline(synthetic_scale(), broken)
    assert problems == ["baseline has no usable fleet_scale "
                        "'devices_per_s'"]


# -- the swarm-bench `server` section (bench schema v5) -----------------------


def synthetic_server(sessions=1000, req_per_s=900.0, p99=120.0,
                     rss=180_000):
    """A server-only artifact, as `cli swarm` writes it."""
    return {"server": {
        "sessions": sessions,
        "image_bytes": 8192,
        "chunk_bytes": 2048,
        "endpoint_mix": {"register": 1, "token": 1, "manifest": 1,
                         "chunk": 5, "report": 1},
        "req_per_s": req_per_s,
        "p99_session_ms": p99,
        "peak_rss_kb": rss,
    }}


def test_server_only_artifacts_gate_each_other():
    assert compare_to_baseline(synthetic_server(),
                               synthetic_server()) == []


def test_server_p99_and_rss_gate_lower_is_better():
    slow = synthetic_server(p99=120.0 * 1.5)
    problems = compare_to_baseline(slow, synthetic_server())
    assert len(problems) == 1
    assert "server p99_session_ms regressed" in problems[0]
    fat = synthetic_server(rss=int(180_000 * 1.5))
    problems = compare_to_baseline(fat, synthetic_server())
    assert "server peak_rss_kb regressed" in problems[0]
    # Leaner/faster passes.
    assert compare_to_baseline(synthetic_server(p99=60.0, rss=90_000),
                               synthetic_server()) == []


def test_server_throughput_gates_higher_is_better():
    slow = synthetic_server(req_per_s=900.0 * 0.7)
    problems = compare_to_baseline(slow, synthetic_server())
    assert len(problems) == 1
    assert "server req_per_s regressed" in problems[0]
    assert "-30%" in problems[0]
    assert compare_to_baseline(synthetic_server(req_per_s=2000.0),
                               synthetic_server()) == []


def test_server_workload_mismatch_demands_a_fresh_baseline():
    other = synthetic_server(sessions=500)
    problems = compare_to_baseline(other, synthetic_server())
    assert len(problems) == 1
    assert "server baseline ran sessions" in problems[0]
    assert "regenerate the baseline" in problems[0]
    mixed = synthetic_server()
    mixed["server"]["endpoint_mix"] = {"register": 1}
    problems = compare_to_baseline(mixed, synthetic_server())
    assert "endpoint_mix" in problems[0]


def test_server_section_gates_inside_full_documents():
    """A future combined artifact (campaign + server) gates both."""
    base = synthetic()
    base.update(synthetic_server())
    fresh = synthetic()
    fresh.update(synthetic_server(req_per_s=900.0 * 0.5))
    problems = compare_to_baseline(fresh, base)
    assert len(problems) == 1
    assert "server req_per_s regressed" in problems[0]
    # Server section on one side only: campaign still gates cleanly.
    assert compare_to_baseline(base, synthetic()) == []


def test_server_missing_metrics_are_reported():
    broken = synthetic_server()
    del broken["server"]["req_per_s"]
    problems = compare_to_baseline(synthetic_server(), broken)
    assert problems == ["baseline has no usable server 'req_per_s'"]


def test_mixed_kind_artifacts_keep_the_legacy_error():
    assert compare_to_baseline(synthetic_server(), synthetic()) \
        == ["baseline or current results carry no campaign section"]
    assert compare_to_baseline(synthetic(), synthetic_server()) \
        == ["baseline or current results carry no campaign section"]


# -- executor inversion detection ---------------------------------------------


def test_find_inversions_flags_pooled_slower_than_serial():
    doc = synthetic()  # parallel 2.0 > fast 1.8: an inversion
    inversions = find_inversions(doc)
    assert len(inversions) == 1
    assert "campaign: fast_parallel" in inversions[0]


def test_find_inversions_covers_both_profiles_and_pools():
    doc = synthetic_full(io_serial=1.0, io_parallel=1.5, io_process=2.0)
    doc["campaign"]["fast_process_seconds"] = 3.0
    inversions = find_inversions(doc)
    assert len(inversions) == 4  # 2 pools x 2 profiles
    assert any("campaign_io: fast_process" in i for i in inversions)


def test_find_inversions_tolerates_sparse_documents():
    assert find_inversions({}) == []
    assert find_inversions({"campaign": {"fast_serial_seconds": 0}}) == []
    fast = synthetic(fast=2.0, parallel=1.0)
    assert find_inversions(fast) == []


# -- the CLI wiring (satellite: exit status gates CI) -------------------------


@pytest.fixture()
def fake_bench_run(monkeypatch):
    """Stub the expensive harness; ``cli bench`` still writes/gates."""
    def run_all(device_count, image_size, max_workers, io_rtt_seconds=0.05,
                scale_devices=None):
        return synthetic(devices=device_count, image_bytes=image_size)

    def write_results(results, path):
        with open(path, "w") as fh:
            json.dump(results, fh)
        return path

    def run_delta(image_size):
        return {"delta_fastpath": {"firmware_bytes": image_size,
                                   "byte_identical": True}}

    monkeypatch.setattr(bench, "run_all", run_all)
    monkeypatch.setattr(bench, "write_results", write_results)
    monkeypatch.setattr(bench, "format_summary",
                        lambda results: "(stubbed bench)")
    monkeypatch.setattr(bench, "run_delta", run_delta)
    monkeypatch.setattr(bench, "write_delta_results", write_results)
    monkeypatch.setattr(bench, "format_delta_summary",
                        lambda results: "(stubbed delta)")


def write_baseline(path, results):
    from repro.tools.report import write_report
    write_report(dict(results), str(path), "bench")


def test_cli_bench_passes_against_matching_baseline(tmp_path,
                                                    fake_bench_run):
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, synthetic())
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(baseline)])
    assert rc == 0


def test_cli_bench_fails_on_regression(tmp_path, fake_bench_run,
                                       capsys):
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, synthetic(serial=14.0 / 2, fast=1.8 / 2,
                                       parallel=2.0 / 2))
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(baseline)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSION:" in out


def test_cli_bench_rejects_a_non_bench_baseline(tmp_path,
                                                fake_bench_run, capsys):
    baseline = tmp_path / "trace.json"
    baseline.write_text(json.dumps(
        {"report_kind": "trace", "schema_version": 1}))
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(baseline)])
    assert rc == 1
    assert "not bench" in capsys.readouterr().out


def test_cli_bench_rejects_a_missing_baseline(tmp_path, fake_bench_run,
                                              capsys):
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(tmp_path / "nope.json")])
    assert rc == 1
    assert "UNUSABLE" in capsys.readouterr().out


def test_cli_bench_warns_on_inversion_without_strict(tmp_path,
                                                     fake_bench_run,
                                                     capsys):
    # synthetic() has fast_parallel (2.0 s) slower than fast_serial
    # (1.8 s) — an inversion, but only a warning without --strict.
    rc = main(["bench", "--out", str(tmp_path / "fresh.json")])
    assert rc == 0
    assert "WARNING: executor inversion" in capsys.readouterr().out


def test_cli_bench_strict_fails_on_inversion(tmp_path, fake_bench_run,
                                             capsys):
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--strict"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "WARNING: executor inversion" in out
    assert "STRICT:" in out


def test_cli_bench_delta_out_writes_an_artifact(tmp_path, fake_bench_run,
                                                capsys):
    delta_path = tmp_path / "delta.json"
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--delta-out", str(delta_path)])
    assert rc == 0
    assert delta_path.exists()
    assert "(stubbed delta)" in capsys.readouterr().out
