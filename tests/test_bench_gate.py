"""The `cli bench --baseline` regression gate."""

from __future__ import annotations

import json

import pytest

from repro.tools import bench
from repro.tools.bench import (
    DEFAULT_TOLERANCE,
    GATE_METRICS,
    compare_to_baseline,
)
from repro.tools.cli import main


def synthetic(devices=50, image_bytes=24576, serial=14.0, fast=1.8,
              parallel=2.0):
    return {"campaign": {
        "devices": devices,
        "image_bytes": image_bytes,
        "reference_serial_seconds": serial,
        "fast_serial_seconds": fast,
        "fast_parallel_seconds": parallel,
    }}


def test_identical_runs_pass_the_gate():
    assert compare_to_baseline(synthetic(), synthetic()) == []


def test_getting_faster_never_trips_the_gate():
    fresh = synthetic(serial=7.0, fast=0.9, parallel=1.0)
    assert compare_to_baseline(fresh, synthetic()) == []


def test_small_slowdowns_within_tolerance_pass():
    fresh = synthetic(serial=14.0 * 1.19)
    assert compare_to_baseline(fresh, synthetic()) == []


def test_regression_beyond_tolerance_is_named():
    fresh = synthetic(parallel=2.0 * 1.25)
    problems = compare_to_baseline(fresh, synthetic())
    assert len(problems) == 1
    assert "fast_parallel_seconds regressed" in problems[0]
    assert "+25%" in problems[0]
    # A looser tolerance lets the same run through.
    assert compare_to_baseline(fresh, synthetic(), tolerance=0.3) == []


def test_every_gated_metric_is_checked():
    for metric in GATE_METRICS:
        fresh = synthetic()
        fresh["campaign"][metric] *= 2.0
        problems = compare_to_baseline(fresh, synthetic())
        assert any(metric in problem for problem in problems)


def test_workload_mismatch_demands_a_fresh_baseline():
    problems = compare_to_baseline(synthetic(devices=10), synthetic())
    assert len(problems) == 1
    assert "regenerate the baseline" in problems[0]
    problems = compare_to_baseline(synthetic(image_bytes=8192),
                                   synthetic())
    assert "regenerate the baseline" in problems[0]


def test_unusable_baselines_are_reported_not_crashed():
    assert compare_to_baseline({}, synthetic()) \
        == ["baseline or current results carry no campaign section"]
    broken = synthetic()
    del broken["campaign"]["fast_serial_seconds"]
    problems = compare_to_baseline(synthetic(), broken)
    assert problems == ["baseline has no usable 'fast_serial_seconds'"]
    with pytest.raises(ValueError):
        compare_to_baseline(synthetic(), synthetic(), tolerance=-0.1)


def test_default_tolerance_is_twenty_percent():
    assert DEFAULT_TOLERANCE == pytest.approx(0.20)


# -- the CLI wiring (satellite: exit status gates CI) -------------------------


@pytest.fixture()
def fake_bench_run(monkeypatch):
    """Stub the expensive harness; ``cli bench`` still writes/gates."""
    def run_all(device_count, image_size, max_workers):
        return synthetic(devices=device_count, image_bytes=image_size)

    def write_results(results, path):
        with open(path, "w") as fh:
            json.dump(results, fh)
        return path

    monkeypatch.setattr(bench, "run_all", run_all)
    monkeypatch.setattr(bench, "write_results", write_results)
    monkeypatch.setattr(bench, "format_summary",
                        lambda results: "(stubbed bench)")


def write_baseline(path, results):
    from repro.tools.report import write_report
    write_report(dict(results), str(path), "bench")


def test_cli_bench_passes_against_matching_baseline(tmp_path,
                                                    fake_bench_run):
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, synthetic())
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(baseline)])
    assert rc == 0


def test_cli_bench_fails_on_regression(tmp_path, fake_bench_run,
                                       capsys):
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, synthetic(serial=14.0 / 2, fast=1.8 / 2,
                                       parallel=2.0 / 2))
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(baseline)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSION:" in out


def test_cli_bench_rejects_a_non_bench_baseline(tmp_path,
                                                fake_bench_run, capsys):
    baseline = tmp_path / "trace.json"
    baseline.write_text(json.dumps(
        {"report_kind": "trace", "schema_version": 1}))
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(baseline)])
    assert rc == 1
    assert "not bench" in capsys.readouterr().out


def test_cli_bench_rejects_a_missing_baseline(tmp_path, fake_bench_run,
                                              capsys):
    rc = main(["bench", "--out", str(tmp_path / "fresh.json"),
               "--baseline", str(tmp_path / "nope.json")])
    assert rc == 1
    assert "UNUSABLE" in capsys.readouterr().out
