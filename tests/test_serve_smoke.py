"""Tier-1 smoke: one real TCP session, clean shutdown, no leaks.

The bounded always-on proof that the serve plane works end to end:
an ephemeral-port :class:`HttpServer`, one full device session over
the swarm's own HTTP client, then shutdown — after which the event
loop must hold no stray tasks (``asyncio.all_tasks()``), which is the
regression trap for forgotten connection handlers.
"""

from __future__ import annotations

import asyncio

from repro.serve import FleetService, HttpServer
from repro.tools.swarm import SwarmHttpClient, run_http_session

DEVICE = 0x40AA0001


def test_one_session_clean_shutdown_no_leaked_tasks():
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        async with HttpServer(service) as server:
            assert server.port != 0          # ephemeral port resolved
            async with SwarmHttpClient("127.0.0.1",
                                       server.port) as client:
                outcome = await run_http_session(client, DEVICE, 1024)
        assert outcome["digest_ok"] is True
        assert outcome["version"] == 2
        assert len(outcome["payload"]) > 0
        assert outcome["report"]["acknowledged"] is True
        assert service.device_status(DEVICE)["current_version"] == 2
        # The server context exited: every connection task it spawned
        # must be gone from the loop.
        leaked = [task for task in asyncio.all_tasks()
                  if task is not asyncio.current_task()]
        assert leaked == []

    asyncio.run(main())


def test_stop_is_idempotent_and_survives_live_connections():
    async def main():
        service = FleetService(chunk_size=1024)
        service.seed_channels(image_size=4096)
        server = HttpServer(service)
        await server.start()
        # A connection left open mid-conversation: stop() must cancel
        # its handler rather than hang on it.
        client = SwarmHttpClient("127.0.0.1", server.port)
        await client.connect()
        await client.request("GET", "/")
        await server.stop()
        await server.stop()                  # second stop: no-op
        await client.close()
        leaked = [task for task in asyncio.all_tasks()
                  if task is not asyncio.current_task()]
        assert leaked == []

    asyncio.run(main())
