"""Health scoring and anomaly detection over device samples."""

from __future__ import annotations

from repro.obs.health import (
    Anomaly,
    DeviceSample,
    HealthThresholds,
    analyze_wave,
    robust_zscores,
    score_device,
)


def sample(name, update_seconds=10.0, bytes_over_air=10 * 1024,
           energy_mj=100.0, interruptions=0, attempts=1,
           state="updated", phases=None):
    return DeviceSample(name=name, wave=0, state=state,
                        update_seconds=update_seconds,
                        bytes_over_air=bytes_over_air,
                        energy_mj=energy_mj,
                        interruptions=interruptions,
                        attempts=attempts,
                        interrupted_phases=phases or {})


# -- robust z-scores ----------------------------------------------------------


def test_zscores_need_a_baseline():
    assert robust_zscores([1.0, 100.0, 2.0]) == [0.0, 0.0, 0.0]
    assert robust_zscores([]) == []


def test_zscores_flag_the_outlier_not_the_fleet():
    values = [1.0, 1.1, 0.9, 1.0, 1.05, 10.0]
    scores = robust_zscores(values)
    assert scores[-1] > 3.5
    assert all(abs(score) < 3.5 for score in scores[:-1])


def test_zscores_survive_a_fleet_of_clones():
    # Median deviation is zero (all-identical but one): the mean-abs
    # fallback must still single out the outlier.
    values = [1.0] * 9 + [5.0]
    scores = robust_zscores(values)
    assert scores[-1] > 3.5
    assert scores[0] == 0.0
    # All-identical: no deviation at all, nothing to flag.
    assert robust_zscores([2.0] * 10) == [0.0] * 10


# -- detectors ----------------------------------------------------------------


def test_straggler_detected_by_latency_per_kb():
    fleet = [sample("d%02d" % i) for i in range(9)]
    fleet.append(sample("slow", update_seconds=60.0))
    report = analyze_wave(fleet)
    kinds = report.kinds_for("slow")
    assert "straggler" in kinds
    assert report.flagged == ["slow"]


def test_retry_storm_per_device_and_fleet_wide():
    fleet = [sample("d%02d" % i) for i in range(9)]
    fleet.append(sample("storm", interruptions=4, attempts=2))
    report = analyze_wave(fleet)
    assert "retry-storm" in report.kinds_for("storm")
    # Fleet mean is 0.4/device: no fleet-wide storm anomaly.
    assert all(a.device is not None for a in report.anomalies)

    stormy = [sample("d%02d" % i, interruptions=2) for i in range(10)]
    report = analyze_wave(stormy)
    fleet_wide = [a for a in report.anomalies if a.device is None]
    assert len(fleet_wide) == 1
    assert fleet_wide[0].kind == "retry-storm"


def test_energy_outliers_absolute_and_relative():
    fleet = [sample("d%02d" % i) for i in range(9)]
    fleet.append(sample("hog", energy_mj=900.0))
    report = analyze_wave(fleet)
    assert "energy-outlier" in report.kinds_for("hog")

    # Absolute budget flags even a uniform fleet.
    uniform = [sample("d%02d" % i, energy_mj=500.0) for i in range(5)]
    report = analyze_wave(uniform,
                          HealthThresholds(energy_budget_mj=400.0))
    assert all("energy-outlier" in report.kinds_for(s.name)
               for s in uniform)


def test_crash_loop_from_repeated_postmortem_phase():
    fleet = [sample("d%02d" % i) for i in range(4)]
    fleet.append(sample("looper", state="failed",
                        phases={"loading": 3, "propagation": 1}))
    report = analyze_wave(fleet)
    loops = [a for a in report.anomalies if a.kind == "crash-loop"]
    assert len(loops) == 1
    assert loops[0].device == "looper"
    assert "loading" in loops[0].detail


# -- scoring ------------------------------------------------------------------


def test_scores_sort_sick_devices_below_healthy_ones():
    healthy = score_device(sample("ok"), [])
    retried = score_device(sample("retried", attempts=3,
                                  interruptions=2), [])
    failed = score_device(sample("bad", state="failed"), [
        Anomaly(kind="crash-loop", device="bad", severity=3.0,
                detail="")])
    quarantined = score_device(sample("dead", state="quarantined"), [])
    assert healthy == 100.0
    assert healthy > retried > failed
    assert quarantined < retried
    assert failed >= 0.0


def test_analyze_wave_scores_every_sample():
    fleet = [sample("d%02d" % i) for i in range(5)]
    report = analyze_wave(fleet, wave=3)
    assert report.wave == 3
    assert sorted(report.scores) == sorted(s.name for s in fleet)
    payload = report.to_dict()
    assert payload["wave"] == 3
    assert payload["flagged"] == []


def test_empty_wave_is_a_clean_report():
    report = analyze_wave([])
    assert report.scores == {} and report.anomalies == []
