"""SimulatedDevice accounting tests: phase attribution and cost hiding."""

from __future__ import annotations

import pytest

from repro.core import SignatureInvalid
from repro.crypto import HSMBackend, get_backend
from repro.net import ManifestTamperer
from repro.platform import CC2650, CONTIKI
from repro.sim import PipelineCpuModel, Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 16 * 1024


@pytest.fixture()
def gen():
    return FirmwareGenerator(seed=b"device-tests")


def make_bed(gen, **kwargs):
    base = gen.firmware(IMAGE_SIZE, image_id=1)
    defaults = dict(initial_firmware=base, slot_size=64 * 1024)
    defaults.update(kwargs)
    bed = Testbed.create(**defaults)
    bed.release(gen.os_version_change(base, revision=2), 2)
    return bed


def test_phase_attribution_covers_total(gen):
    bed = make_bed(gen)
    outcome = bed.push_update()
    assert outcome.success
    assert sum(outcome.phases.values()) == pytest.approx(
        outcome.total_seconds)


def test_flash_overlap_hides_time_not_energy(gen):
    hidden = make_bed(gen)
    hidden.device.flash_overlaps_radio = True
    out_hidden = hidden.push_update()

    visible = make_bed(gen)
    visible.device.flash_overlaps_radio = False
    out_visible = visible.push_update()

    # Same flash energy either way; propagation time differs.
    assert out_hidden.energy_mj["flash"] == pytest.approx(
        out_visible.energy_mj["flash"])
    assert (out_visible.phases["propagation"]
            > out_hidden.phases["propagation"])
    # Loading (bootloader) is serial in both models.
    assert out_visible.phases["loading"] == pytest.approx(
        out_hidden.phases["loading"], rel=0.01)


def test_delta_updates_spend_pipeline_cpu(gen):
    delta_bed = make_bed(gen, supports_differential=True)
    delta_out = delta_bed.push_update()
    full_bed = make_bed(gen, supports_differential=False)
    full_out = full_bed.push_update()
    # Full images bypass decompression/patching entirely.
    assert delta_out.energy_mj.get("cpu", 0) \
        > full_out.energy_mj.get("cpu", 0)


def test_cpu_model_throughput_matters(gen):
    slow = make_bed(gen)
    slow.device.cpu = PipelineCpuModel(lzss_bytes_per_second=10_000.0,
                                       bspatch_bytes_per_second=10_000.0)
    slow_out = slow.push_update()
    fast = make_bed(gen)
    fast_out = fast.push_update()
    assert slow_out.phases["propagation"] > fast_out.phases["propagation"]


def test_hsm_device_end_to_end(gen):
    bed = make_bed(gen, board=CC2650, os_profile=CONTIKI,
                   crypto_library="cryptoauthlib",
                   slot_configuration="b", slot_size=48 * 1024)
    assert isinstance(bed.device.backend, HSMBackend)
    outcome = bed.pull_update()
    assert outcome.success
    # HSM verification is cheap: verification is a sliver of the total.
    assert outcome.phases["verification"] < 0.5


def test_failed_verification_still_costs_crypto(gen):
    bed = make_bed(gen)
    outcome = bed.push_update(interceptor=ManifestTamperer())
    assert isinstance(outcome.error, SignatureInvalid)
    assert outcome.energy_mj.get("crypto", 0) > 0


def test_reboot_counter(gen):
    bed = make_bed(gen)
    assert bed.device.reboots == 0
    bed.push_update()
    assert bed.device.reboots == 1
    bed.device.reboot()
    assert bed.device.reboots == 2


def test_pipeline_buffer_default_is_page_size(gen):
    bed = make_bed(gen)
    assert bed.device.agent.pipeline_buffer_size \
        == bed.device.board.internal_page_size


def test_custom_backend_injection(gen):
    base = gen.firmware(IMAGE_SIZE, image_id=1)
    backend = get_backend("tinydtls")
    bed = Testbed.create(initial_firmware=base, slot_size=64 * 1024,
                         crypto_library="tinydtls")
    assert bed.device.backend.profile.name == "tinydtls"
