"""Parity tests: the fast crypto engine must match the reference bit-for-bit.

The fast engine (hashlib SHA-256, fixed-window precomputed tables,
verification cache) exists purely to make fleet-scale simulation quick;
it must never change a single output byte.  These tests drive both
engines over the same inputs — digests, HMACs, signatures, verify
verdicts — and require identical results, including across engines
(sign under one, verify under the other).
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.crypto import (
    FixedWindowTable,
    P256,
    PrivateKey,
    Signature,
    generate_keypair,
    hmac_sha256,
    set_engine,
    sha256,
    use_engine,
)
from repro.crypto.engine import (
    FastEngine,
    ReferenceEngine,
    available_engines,
    get_engine,
)

ENGINES = ("reference", "fast")

# SHA-256 block boundaries: 55/56 straddle the length-field cutoff of
# the final block, 64 is one block, 119/120 the two-block cutoff.
BOUNDARY_LENGTHS = (0, 1, 54, 55, 56, 57, 63, 64, 65,
                    119, 120, 127, 128, 129, 1000)


@pytest.fixture(autouse=True)
def _reference_engine_after():
    """Every test leaves the process-wide engine as it found it."""
    previous = get_engine().name
    yield
    set_engine(previous)


# -- digest parity ----------------------------------------------------------


def test_sha256_known_vector_under_both_engines():
    expected = bytes.fromhex(
        "ba7816bf8f01cfea414140de5dae2223"
        "b00361a396177a9cb410ff61f20015ad")
    for name in ENGINES:
        with use_engine(name) as engine:
            assert engine.sha256(b"abc") == expected
            assert sha256(b"abc") == expected  # module fn stays reference


@pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
def test_sha256_parity_at_block_boundaries(length):
    rng = random.Random(length)
    data = bytes(rng.getrandbits(8) for _ in range(length))
    reference = available_engines()["reference"].sha256(data)
    fast = available_engines()["fast"].sha256(data)
    assert reference == fast == hashlib.sha256(data).digest()


def test_sha256_parity_randomized():
    rng = random.Random(0xD16E57)
    reference = available_engines()["reference"]
    fast = available_engines()["fast"]
    for _ in range(40):
        data = bytes(rng.getrandbits(8)
                     for _ in range(rng.randrange(0, 600)))
        assert reference.sha256(data) == fast.sha256(data)


def test_incremental_hash_parity():
    rng = random.Random(0x1C4)
    data = bytes(rng.getrandbits(8) for _ in range(777))
    splits = (0, 1, 55, 64, 65, 300, 777)
    for name in ENGINES:
        engine = available_engines()[name]
        hasher = engine.new_hash()
        previous = 0
        for split in splits:
            hasher.update(data[previous:split])
            previous = split
        hasher.update(data[previous:])
        assert hasher.digest() == hashlib.sha256(data).digest()


def test_hmac_parity():
    rng = random.Random(0xAAC)
    reference = available_engines()["reference"]
    fast = available_engines()["fast"]
    # Keys shorter, equal to, and longer than the 64-byte HMAC block.
    for key_len in (0, 1, 32, 63, 64, 65, 200):
        key = bytes(rng.getrandbits(8) for _ in range(key_len))
        message = bytes(rng.getrandbits(8)
                        for _ in range(rng.randrange(0, 300)))
        expected = reference.hmac_sha256(key, message)
        assert fast.hmac_sha256(key, message) == expected
        with use_engine("fast"):
            assert hmac_sha256(key, message) == expected


# -- curve parity -----------------------------------------------------------


def test_multiply_base_parity():
    rng = random.Random(0xECC)
    fast = available_engines()["fast"]
    scalars = [1, 2, 3, 15, 16, 17, P256.n - 1, P256.n + 1]
    scalars += [rng.randrange(1, P256.n) for _ in range(10)]
    for k in scalars:
        assert fast.multiply_base(k) == P256.multiply_base(k)


def test_fixed_window_table_matches_plain_multiply():
    key = generate_keypair(b"table-parity")
    point = key.public_key().point
    table = FixedWindowTable(point)
    rng = random.Random(0x7AB)
    for k in [1, 2, P256.n - 1] + [rng.randrange(1, P256.n)
                                   for _ in range(8)]:
        assert table.multiply(k) == P256.multiply(k, point)


def test_combined_multiply_matches_double_multiply():
    key = generate_keypair(b"combined-parity")
    point = key.public_key().point
    generator_table = FixedWindowTable(P256.generator)
    key_table = FixedWindowTable(point)
    rng = random.Random(0xC0B)
    for _ in range(8):
        u1 = rng.randrange(1, P256.n)
        u2 = rng.randrange(1, P256.n)
        assert (generator_table.combined_multiply(u1, key_table, u2)
                == P256.double_multiply(u1, u2, point))


def test_window_table_rejects_infinity():
    from repro.crypto.ecc import INFINITY, CurveError

    with pytest.raises(CurveError):
        FixedWindowTable(INFINITY)


# -- ECDSA parity -----------------------------------------------------------


def test_signatures_identical_across_engines():
    """RFC 6979 is deterministic, so both engines sign identically."""
    rng = random.Random(0x516)
    key = generate_keypair(b"sign-parity")
    for _ in range(6):
        message = bytes(rng.getrandbits(8)
                        for _ in range(rng.randrange(1, 200)))
        with use_engine("reference"):
            reference_sig = key.sign(message)
        with use_engine("fast"):
            fast_sig = key.sign(message)
        assert reference_sig == fast_sig


@pytest.mark.parametrize("signer", ENGINES)
@pytest.mark.parametrize("verifier", ENGINES)
def test_sign_verify_round_trip_across_engines(signer, verifier):
    key = generate_keypair(b"roundtrip-%s-%s" % (signer.encode(),
                                                 verifier.encode()))
    public = key.public_key()
    message = b"cross-engine round trip"
    with use_engine(signer):
        signature = key.sign(message)
    with use_engine(verifier):
        assert public.verify(signature, message)
        assert not public.verify(signature, message + b"!")


@pytest.mark.parametrize("name", ENGINES)
def test_corrupted_signatures_rejected(name):
    rng = random.Random(0xBAD)
    key = generate_keypair(b"corruption")
    public = key.public_key()
    message = b"corrupted signature rejection"
    signature = key.sign(message)
    with use_engine(name):
        assert public.verify(signature, message)
        for _ in range(8):
            bit = 1 << rng.randrange(0, 256)
            mangled = Signature(r=signature.r ^ bit, s=signature.s)
            assert not public.verify(mangled, message)
            mangled = Signature(r=signature.r, s=signature.s ^ bit)
            assert not public.verify(mangled, message)
        assert not public.verify(signature, message + b"\x00")


def test_randomized_verify_verdict_parity():
    """Both engines agree on valid *and* invalid signatures."""
    rng = random.Random(0xF00D)
    key = generate_keypair(b"verdict-parity")
    public = key.public_key()
    reference = available_engines()["reference"]
    fast = available_engines()["fast"]
    for index in range(10):
        message = b"verdict %d" % index
        signature = key.sign(message)
        r, s = signature.r, signature.s
        if index % 2:
            r = (r ^ (1 << rng.randrange(0, 256))) % P256.n or 1
        digest = hashlib.sha256(message).digest()
        expected = reference.ecdsa_verify(public.point, r, s, digest)
        assert fast.ecdsa_verify(public.point, r, s, digest) == expected


# -- fast-engine cache behaviour -------------------------------------------


def test_verification_cache_hits_on_repeat():
    engine = FastEngine()
    key = generate_keypair(b"cache-hit")
    public = key.public_key()
    signature = key.sign(b"cached")
    digest = hashlib.sha256(b"cached").digest()
    assert engine.ecdsa_verify(public.point, signature.r, signature.s,
                               digest)
    assert engine.stats.verify_cache_hits == 0
    assert engine.ecdsa_verify(public.point, signature.r, signature.s,
                               digest)
    assert engine.stats.verify_cache_hits == 1
    assert engine.stats.verify_calls == 2


def test_verification_cache_caches_negative_verdicts():
    engine = FastEngine()
    key = generate_keypair(b"cache-negative")
    public = key.public_key()
    signature = key.sign(b"message")
    digest = hashlib.sha256(b"other message").digest()
    assert not engine.ecdsa_verify(public.point, signature.r,
                                   signature.s, digest)
    assert not engine.ecdsa_verify(public.point, signature.r,
                                   signature.s, digest)
    assert engine.stats.verify_cache_hits == 1


def test_verification_cache_is_bounded():
    engine = FastEngine(verify_cache_size=4)
    key = generate_keypair(b"cache-bound")
    public = key.public_key()
    for index in range(10):
        message = b"bound %d" % index
        signature = key.sign(message)
        digest = hashlib.sha256(message).digest()
        engine.ecdsa_verify(public.point, signature.r, signature.s,
                            digest)
    assert len(engine._verify_cache) == 4


def test_key_tables_built_after_threshold_and_bounded():
    engine = FastEngine(key_table_cache_size=2, table_threshold=2)
    keys = [generate_keypair(b"table-%d" % i) for i in range(3)]
    for index, key in enumerate(keys):
        public = key.public_key()
        for round_ in range(3):
            message = b"msg %d %d" % (index, round_)
            signature = key.sign(message)
            digest = hashlib.sha256(message).digest()
            assert engine.ecdsa_verify(public.point, signature.r,
                                       signature.s, digest)
    assert engine.stats.key_tables_built == 3
    assert engine.stats.key_tables_evicted == 1
    assert len(engine._key_tables) == 2


def test_clear_caches_resets_state():
    engine = FastEngine()
    key = generate_keypair(b"clear")
    public = key.public_key()
    signature = key.sign(b"clear me")
    digest = hashlib.sha256(b"clear me").digest()
    for _ in range(3):
        engine.ecdsa_verify(public.point, signature.r, signature.s,
                            digest)
    engine.clear_caches()
    assert engine.stats.verify_calls == 0
    assert not engine._verify_cache
    assert not engine._key_tables
    assert engine._base_table is None


def test_fast_engine_validates_cache_sizes():
    with pytest.raises(ValueError):
        FastEngine(verify_cache_size=0)
    with pytest.raises(ValueError):
        FastEngine(key_table_cache_size=0)


# -- engine selection -------------------------------------------------------


def test_set_engine_and_use_engine():
    assert get_engine().name == "reference"
    engine = set_engine("fast")
    assert isinstance(engine, FastEngine)
    assert get_engine() is engine
    set_engine("reference")
    assert isinstance(get_engine(), ReferenceEngine)
    with use_engine("fast"):
        assert get_engine().name == "fast"
    assert get_engine().name == "reference"


def test_use_engine_restores_on_exception():
    with pytest.raises(RuntimeError):
        with use_engine("fast"):
            raise RuntimeError("boom")
    assert get_engine().name == "reference"


def test_unknown_engine_rejected():
    with pytest.raises(KeyError):
        set_engine("quantum")


def test_available_engines_names():
    engines = available_engines()
    assert set(engines) == {"reference", "fast"}
    assert engines["reference"].name == "reference"
    assert engines["fast"].name == "fast"


# -- verify-cache lock audit (satellite: contention-safe counters) -----------


def _hammer_verify(engine, public, jobs, threads):
    """Run ``jobs`` (message, signature) verifies across ``threads``."""
    import threading

    errors = []
    per_thread = [jobs[i::threads] for i in range(threads)]

    def worker(assigned):
        try:
            for message, signature in assigned:
                assert public.verify(signature, message)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(chunk,))
               for chunk in per_thread]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert errors == []


def test_verify_counters_exact_under_thread_contention():
    """verify_calls is exact and hits are bounded under contention.

    The hot path increments under the engine lock, so the call counter
    must equal the number of verifies issued no matter the interleaving.
    Two threads may race to first-verify the same signature (both miss,
    both compute — benign, results identical), so cache hits are
    bounded below by ``total - threads * distinct`` rather than exact.
    """
    threads, repeats = 4, 8
    key = generate_keypair(b"contention-audit")
    public = key.public_key()
    with use_engine("fast") as engine:
        engine.clear_caches()
        messages = [b"contended message %d" % i for i in range(3)]
        signed = [(m, key.sign(m)) for m in messages]
        signing_calls = engine.stats_snapshot().verify_calls
        jobs = signed * repeats
        _hammer_verify(engine, public, jobs, threads)
        stats = engine.stats_snapshot()
    total = len(jobs)
    distinct = len(signed)
    assert stats.verify_calls - signing_calls == total
    assert stats.verify_cache_hits <= stats.verify_calls
    assert stats.verify_cache_hits >= total - threads * distinct


def test_verify_cache_stays_bounded_under_thread_contention():
    """Eviction under the lock: the LRU never overshoots its bound."""
    threads = 4
    key = generate_keypair(b"contention-bound")
    public = key.public_key()
    with use_engine("fast"):
        engine = FastEngine(verify_cache_size=8)
        set_engine_obj = engine  # distinct instance; drive it directly
        messages = [b"bounded message %d" % i for i in range(64)]
        signatures = [key.sign(m) for m in messages]
    import threading

    errors = []

    def worker(offset):
        try:
            for i in range(offset, len(messages), threads):
                digest = hashlib.sha256(messages[i]).digest()
                sig = signatures[i]
                assert set_engine_obj.ecdsa_verify(
                    public.point, sig.r, sig.s, digest)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(i,))
               for i in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert errors == []
    assert len(set_engine_obj._verify_cache) <= 8
    stats = set_engine_obj.stats_snapshot()
    assert stats.verify_calls == len(messages)


def test_snapshots_never_tear_under_contention():
    """Concurrent stats_snapshot readers always see hits <= calls."""
    import threading

    key = generate_keypair(b"contention-snapshot")
    public = key.public_key()
    with use_engine("fast") as engine:
        engine.clear_caches()
        message = b"snapshot message"
        signature = key.sign(message)
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snap = engine.stats_snapshot()
                if snap.verify_cache_hits > snap.verify_calls:
                    torn.append(snap)  # pragma: no cover - failure path

        watcher = threading.Thread(target=reader)
        watcher.start()
        try:
            _hammer_verify(engine, public,
                           [(message, signature)] * 64, threads=4)
        finally:
            stop.set()
            watcher.join()
    assert torn == []


def _hammer_content_verify(cache, engine, jobs, threads):
    """Run ``jobs`` (point, r, s, digest, expected) through the content
    cache across ``threads`` — the same 4-thread harness shape as
    ``_hammer_verify``, aimed at the (key, digest) LRU."""
    import threading

    errors = []
    per_thread = [jobs[i::threads] for i in range(threads)]

    def worker(assigned):
        try:
            for point, r, s, digest, expected in assigned:
                assert cache.verify(engine, point, r, s,
                                    digest) == expected
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(chunk,))
               for chunk in per_thread]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert errors == []


def test_content_cache_verifies_identical_images_once():
    """The batched fleet hot path: one (key, digest) pair — the vendor
    signature over a release — verifies once, then hits."""
    from repro.crypto.engine import ContentVerifyCache

    engine = FastEngine()
    cache = ContentVerifyCache()
    key = generate_keypair(b"content-once")
    message = b"release canonical bytes"
    signature = key.sign(message)
    digest = hashlib.sha256(message).digest()
    point = key.public_key().point
    for _ in range(5):
        assert cache.verify(engine, point, signature.r, signature.s,
                            digest)
    stats = cache.stats_snapshot()
    assert stats.misses == 1
    assert stats.hits == 4
    assert stats.calls == 5
    assert len(cache) == 1


def test_content_cache_verdict_matches_plain_engine_verify():
    """Cache answers are bit-for-bit the per-device ecdsa_verify path,
    for valid and tampered signatures alike."""
    from repro.crypto.ecdsa import P256 as _curve
    from repro.crypto.engine import ContentVerifyCache

    engine = FastEngine()
    cache = ContentVerifyCache()
    key = generate_keypair(b"content-parity")
    point = key.public_key().point
    rng = random.Random(0xCACE)
    for index in range(8):
        message = b"content %d" % index
        signature = key.sign(message)
        digest = hashlib.sha256(message).digest()
        r = signature.r
        if index % 2:
            r = (r ^ (1 << rng.randrange(0, 256))) % _curve.n or 1
        expected = FastEngine().ecdsa_verify(point, r, signature.s,
                                             digest)
        assert cache.verify(engine, point, r, signature.s, digest) \
            == expected


def test_content_cache_never_caches_failures():
    """A tampered signature is recomputed every call — failure must
    not be memoised (nor let a later honest verify be poisoned)."""
    from repro.crypto.engine import ContentVerifyCache

    engine = FastEngine()
    cache = ContentVerifyCache()
    key = generate_keypair(b"content-negative")
    message = b"tampered content"
    signature = key.sign(message)
    digest = hashlib.sha256(message).digest()
    point = key.public_key().point
    for _ in range(3):
        assert not cache.verify(engine, point, signature.r ^ 1,
                                signature.s, digest)
    stats = cache.stats_snapshot()
    assert stats.misses == 3 and stats.hits == 0
    assert len(cache) == 0
    # The honest signature still verifies (and only now populates).
    assert cache.verify(engine, point, signature.r, signature.s, digest)
    assert len(cache) == 1


def test_content_cache_is_bounded_lru():
    from repro.crypto.engine import ContentVerifyCache

    engine = FastEngine()
    cache = ContentVerifyCache(max_entries=4)
    key = generate_keypair(b"content-bound")
    point = key.public_key().point
    for index in range(10):
        message = b"content bound %d" % index
        signature = key.sign(message)
        digest = hashlib.sha256(message).digest()
        assert cache.verify(engine, point, signature.r, signature.s,
                            digest)
    assert len(cache) == 4
    with pytest.raises(ValueError):
        ContentVerifyCache(max_entries=0)


def test_content_cache_counters_exact_under_thread_contention():
    """The 4-thread harness on the content LRU: calls are exact, and
    hits are bounded below by total - threads * distinct (racing
    first-verifiers both miss — benign, identical verdicts)."""
    threads, repeats = 4, 8
    key = generate_keypair(b"content-contention")
    point = key.public_key().point
    engine = FastEngine()
    cache = engine.content_cache
    messages = [b"contended content %d" % i for i in range(3)]
    jobs = []
    for message in messages:
        signature = key.sign(message)
        digest = hashlib.sha256(message).digest()
        jobs.append((point, signature.r, signature.s, digest, True))
    jobs = jobs * repeats
    _hammer_content_verify(cache, engine, jobs, threads)
    stats = cache.stats_snapshot()
    assert stats.calls == len(jobs)
    assert stats.hits + stats.misses == len(jobs)
    assert stats.hits >= len(jobs) - threads * len(messages)
    assert len(cache) == len(messages)


def test_fast_engine_clear_caches_resets_content_cache():
    key = generate_keypair(b"content-clear")
    message = b"clear content"
    signature = key.sign(message)
    digest = hashlib.sha256(message).digest()
    engine = FastEngine()
    assert engine.verify_content(key.public_key().point, signature.r,
                                 signature.s, digest)
    assert len(engine.content_cache) == 1
    engine.clear_caches()
    assert len(engine.content_cache) == 0
    assert engine.content_cache.stats_snapshot().calls == 0


def test_engine_counters_merge_exactly_across_executors():
    """Thread- and process-pool campaigns account every verify.

    The serial run is ground truth.  The thread pool shares one engine
    (lock-guarded increments); the process pool runs forked engine
    copies whose deltas fold back through ``merge_stats``.  Both must
    land on exactly the serial ``verify_calls`` total — a lost update
    in either path shows up as a shortfall here.
    """
    from repro.fleet import (
        ParallelWaveExecutor,
        ProcessWaveExecutor,
        SerialWaveExecutor,
    )
    from repro.tools.bench import _build_campaign

    totals = {}
    executors = {
        "serial": SerialWaveExecutor,
        "threads": lambda: ParallelWaveExecutor(max_workers=4),
        "processes": lambda: ProcessWaveExecutor(max_workers=2,
                                                 min_fork_wave=2),
    }
    for label, make in executors.items():
        executor = make()
        campaign = _build_campaign(6, 4 * 1024, executor)
        with use_engine("fast") as engine:
            engine.clear_caches()
            report = campaign.run()
            stats = engine.stats_snapshot()
        if hasattr(executor, "close"):
            executor.close()
        assert not report.aborted and len(report.updated) == 6
        totals[label] = stats.verify_calls
        assert stats.verify_cache_hits <= stats.verify_calls
    assert totals["threads"] == totals["serial"]
    assert totals["processes"] == totals["serial"]
