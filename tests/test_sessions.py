"""Protocol-level session tests: updates over real CoAP / ATT messages."""

from __future__ import annotations

import pytest

from repro.core import ENVELOPE_SIZE
from repro.net import (
    AttOpcode,
    AttPacket,
    BleGattPushSession,
    CoapPullSession,
    Command,
    ControlCommand,
    GattPeripheral,
    Handle,
    Status,
    StatusNotification,
)
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 8 * 1024


@pytest.fixture()
def gen():
    return FirmwareGenerator(seed=b"session-tests")


@pytest.fixture()
def testbed(gen):
    fw_v1 = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    return bed


# -- CoAP pull session --------------------------------------------------------------


def test_coap_pull_session_updates(testbed):
    outcome = CoapPullSession(testbed.device, testbed.server).run()
    assert outcome.success
    assert outcome.booted_version == 2
    assert outcome.messages > 10       # blockwise round-trips happened
    assert outcome.bytes_on_wire > 1000
    assert outcome.error is None


def test_coap_pull_session_noop_when_current(gen):
    fw = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=fw, slot_size=64 * 1024)
    outcome = CoapPullSession(bed.device, bed.server).run()
    assert not outcome.success
    assert outcome.error == "nothing-newer"
    assert outcome.messages == 2       # a single version poll


def test_coap_pull_session_block_sizes(gen):
    for block_size in (32, 128, 512):
        fw = gen.firmware(IMAGE_SIZE, image_id=1)
        bed = Testbed.create(initial_firmware=fw, slot_size=64 * 1024)
        bed.release(gen.os_version_change(fw, revision=2), 2)
        outcome = CoapPullSession(bed.device, bed.server,
                                  block_size=block_size).run()
        assert outcome.success, block_size


def test_coap_image_bound_per_token(testbed):
    """Two sessions for the same device produce distinct signed images
    (the resource is parameterised by the token)."""
    session = CoapPullSession(testbed.device, testbed.server)
    outcome = session.run()
    assert outcome.success
    assert len(session._image_cache) == 1
    assert testbed.server.stats.requests >= 2  # factory + this session


# -- BLE GATT push session --------------------------------------------------------------


def test_ble_push_session_updates(testbed):
    outcome = BleGattPushSession(testbed.device, testbed.server).run()
    assert outcome.success
    assert outcome.booted_version == 2
    # ATT values are capped at MTU-3 bytes.
    assert outcome.messages > ENVELOPE_SIZE // 20


def test_ble_push_session_larger_mtu_fewer_packets(gen):
    fw = gen.firmware(IMAGE_SIZE, image_id=1)
    results = {}
    for mtu in (23, 247):
        bed = Testbed.create(initial_firmware=fw, slot_size=64 * 1024)
        bed.release(gen.os_version_change(fw, revision=2), 2)
        outcome = BleGattPushSession(bed.device, bed.server,
                                     att_mtu=mtu).run()
        assert outcome.success
        results[mtu] = outcome.messages
    assert results[247] < results[23] / 5


def test_gatt_peripheral_token_flow(testbed):
    peripheral = GattPeripheral(testbed.device)
    request = AttPacket(AttOpcode.WRITE_REQUEST, Handle.CONTROL_POINT,
                        ControlCommand(Command.REQUEST_TOKEN).encode())
    replies = [AttPacket.decode(raw)
               for raw in peripheral.handle(request.encode())]
    opcodes = [reply.opcode for reply in replies]
    assert AttOpcode.WRITE_RESPONSE in opcodes
    notes = [StatusNotification.decode(reply.value) for reply in replies
             if reply.opcode == AttOpcode.HANDLE_VALUE_NOTIFICATION]
    assert notes and notes[0].status == Status.TOKEN
    assert len(notes[0].payload) == 10  # a packed DeviceToken


def test_gatt_peripheral_reports_errors(testbed):
    peripheral = GattPeripheral(testbed.device)
    token_req = AttPacket(AttOpcode.WRITE_REQUEST, Handle.CONTROL_POINT,
                          ControlCommand(Command.REQUEST_TOKEN).encode())
    peripheral.handle(token_req.encode())
    # Garbage manifest bytes: after ENVELOPE_SIZE of them the agent
    # rejects and the peripheral notifies ERROR.
    error_seen = False
    for _ in range(ENVELOPE_SIZE // 20 + 1):
        data = AttPacket(AttOpcode.WRITE_COMMAND, Handle.DATA, b"\x00" * 20)
        for raw in peripheral.handle(data.encode()):
            reply = AttPacket.decode(raw)
            if reply.opcode == AttOpcode.HANDLE_VALUE_NOTIFICATION:
                note = StatusNotification.decode(reply.value)
                if note.status == Status.ERROR:
                    error_seen = True
    assert error_seen
    # The FSM cleaned up: a new token request works.
    assert testbed.device.agent.request_token() is not None


def test_gatt_abort_command(testbed):
    peripheral = GattPeripheral(testbed.device)
    token_req = AttPacket(AttOpcode.WRITE_REQUEST, Handle.CONTROL_POINT,
                          ControlCommand(Command.REQUEST_TOKEN).encode())
    peripheral.handle(token_req.encode())
    abort = AttPacket(AttOpcode.WRITE_REQUEST, Handle.CONTROL_POINT,
                      ControlCommand(Command.ABORT).encode())
    peripheral.handle(abort.encode())
    from repro.core import AgentState
    assert testbed.device.agent.state is AgentState.WAITING


def test_sessions_account_radio_time(testbed):
    before = testbed.device.clock.now
    CoapPullSession(testbed.device, testbed.server).run()
    assert testbed.device.clock.now > before
    phases = testbed.device.phase_breakdown()
    assert phases.get("propagation", 0) > 0
    assert phases.get("loading", 0) > 0


# -- CoAP Observe (RFC 7641) -----------------------------------------------------


def test_observe_registration_and_notification(testbed):
    session = CoapPullSession(testbed.device, testbed.server)
    session.subscribe()
    assert session.resources.observers("version") == [b"\x07"]

    notifications = session.resources.notify("version")
    assert len(notifications) == 1
    from repro.net import CoapMessage, CoapOption
    note = CoapMessage.decode(notifications[0])
    assert note.option(CoapOption.OBSERVE) is not None
    assert int.from_bytes(note.payload, "big") == 2  # latest version


def test_notification_triggers_update(testbed):
    session = CoapPullSession(testbed.device, testbed.server)
    session.subscribe()
    notification = session.resources.notify("version")[0]
    assert session.handle_notification(notification)
    assert testbed.device.installed_version() == 2


def test_stale_notification_is_ignored(gen):
    fw = gen.firmware(IMAGE_SIZE, image_id=1)
    bed = Testbed.create(initial_firmware=fw, slot_size=64 * 1024)
    session = CoapPullSession(bed.device, bed.server)
    session.subscribe()
    notification = session.resources.notify("version")[0]
    # The device already runs version 1: nothing happens.
    assert not session.handle_notification(notification)
    assert bed.device.installed_version() == 1


def test_observe_deregistration(testbed):
    from repro.net import CoapCode, CoapMessage, CoapOption, CoapType

    session = CoapPullSession(testbed.device, testbed.server)
    session.subscribe()
    cancel = CoapMessage(mtype=CoapType.CON, code=CoapCode.GET,
                         message_id=100, token=b"\x07")
    cancel.add_option(CoapOption.OBSERVE, b"\x01")  # Observe=1
    cancel.add_option(CoapOption.URI_PATH, b"version")
    session.resources.handle(cancel.encode())
    assert session.resources.observers("version") == []
    assert session.resources.notify("version") == []
