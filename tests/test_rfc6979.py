"""HMAC-SHA256 and deterministic-nonce tests."""

from __future__ import annotations

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import P256, hmac_sha256
from repro.crypto.rfc6979 import deterministic_nonce
from repro.crypto.sha256 import sha256

# RFC 4231 test case 1.
RFC4231_KEY = b"\x0b" * 20
RFC4231_DATA = b"Hi There"
RFC4231_MAC = bytes.fromhex(
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")

# RFC 6979 A.2.5: k for P-256 / SHA-256 / "sample".
RFC6979_KEY = int(
    "C9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721", 16)
RFC6979_K = int(
    "A6E3C57DD01ABE90086538398355DD4C3B17AA873382B0F24D6129493D8AAD60", 16)


def test_rfc4231_vector():
    assert hmac_sha256(RFC4231_KEY, RFC4231_DATA) == RFC4231_MAC


def test_rfc4231_long_key():
    # Test case 6: 131-byte key must be hashed down first.
    key = b"\xaa" * 131
    data = b"Test Using Larger Than Block-Size Key - Hash Key First"
    expected = bytes.fromhex(
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
    assert hmac_sha256(key, data) == expected


def test_rfc6979_nonce_vector():
    digest = sha256(b"sample")
    assert deterministic_nonce(RFC6979_KEY, digest, P256.n) == RFC6979_K


def test_nonce_in_range():
    digest = sha256(b"anything")
    k = deterministic_nonce(12345, digest, P256.n)
    assert 1 <= k < P256.n


def test_nonce_differs_per_message():
    k1 = deterministic_nonce(12345, sha256(b"m1"), P256.n)
    k2 = deterministic_nonce(12345, sha256(b"m2"), P256.n)
    assert k1 != k2


def test_nonce_differs_per_key():
    digest = sha256(b"m")
    assert (deterministic_nonce(111, digest, P256.n)
            != deterministic_nonce(222, digest, P256.n))


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=200), st.binary(max_size=200))
def test_hmac_matches_stdlib(key, data):
    expected = stdlib_hmac.new(key, data, hashlib.sha256).digest()
    assert hmac_sha256(key, data) == expected
