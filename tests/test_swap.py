"""Resumable (power-loss-safe) swap tests.

The core property, verified exhaustively: **no matter when power is
lost during an install, the device always ends up with both images
intact after the journal is replayed.**
"""

from __future__ import annotations

import pytest

from repro.memory import (
    FlashMemory,
    MemoryLayout,
    OpenMode,
    PowerLossError,
    ResumableSwap,
    SlotError,
)
from repro.memory.swap import SwapStatus


PAGE = 4096


@pytest.fixture()
def layout():
    internal = FlashMemory(96 * 1024, page_size=PAGE, name="int")
    return MemoryLayout.configuration_b(internal, 32 * 1024)


@pytest.fixture()
def slots(layout):
    a = layout.get("a")
    b = layout.get("b")
    status = layout.status_slot
    assert status is not None
    return a, b, status


def fill(slot, pattern: int, length: int) -> bytes:
    data = bytes([pattern]) * length
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.write(data)
    handle.close()
    return data


def test_status_slot_reserved_by_configuration_b(layout):
    status = layout.status_slot
    assert status is not None
    assert status.size == 2 * PAGE
    assert not status.bootable
    # The status region is never mistaken for the staging slot.
    assert layout.staging_slot.name == "b"


def test_plain_swap_roundtrip(slots):
    a, b, status = slots
    data_a = fill(a, 0xAA, 3 * PAGE)
    data_b = fill(b, 0xBB, 3 * PAGE)
    ResumableSwap(a, b, status).swap(3 * PAGE)
    assert a.read(0, 3 * PAGE) == data_b
    assert b.read(0, 3 * PAGE) == data_a
    # The journal is clean afterwards.
    assert ResumableSwap.pending(status) is None


def test_swap_rounds_extent_to_pages(slots):
    a, b, status = slots
    fill(a, 0x11, 2 * PAGE)
    fill(b, 0x22, 2 * PAGE)
    ResumableSwap(a, b, status).swap(PAGE + 1)  # 1.0001 pages → 2 pages
    assert a.read(0, 2 * PAGE) == b"\x22" * 2 * PAGE
    assert a.read(2 * PAGE, PAGE) != b"\x22" * PAGE  # untouched beyond


def test_swap_zero_extent_noop(slots):
    a, b, status = slots
    data = fill(a, 0x33, PAGE)
    ResumableSwap(a, b, status).swap(0)
    assert a.read(0, PAGE) == data


def test_pending_none_on_clean_journal(slots):
    _, _, status = slots
    assert ResumableSwap.pending(status) is None


def test_unequal_slot_sizes_rejected(layout):
    internal = FlashMemory(64 * 1024, page_size=PAGE)
    from repro.memory import Slot
    small = Slot("x", internal, 0, PAGE, bootable=True)
    big = Slot("y", internal, PAGE, 2 * PAGE, bootable=False)
    status = layout.status_slot
    with pytest.raises(SlotError):
        ResumableSwap(small, big, status)


def test_journal_capacity_enforced():
    """Tiny pages shrink the journal; an over-long swap must refuse."""
    small_page = 256
    internal = FlashMemory(256 * 1024, page_size=small_page, name="int")
    layout = MemoryLayout.configuration_b(internal, 100 * 1024)
    a, b = layout.get("a"), layout.get("b")
    status = layout.status_slot
    swap = ResumableSwap(a, b, status)
    max_pairs = (small_page - 16) // 3  # 80 pairs
    assert a.size // small_page > max_pairs
    with pytest.raises(SlotError):
        swap.swap(a.size)


def interrupted_swap(op_index: int):
    """Run a 3-page swap with power loss at flash operation op_index.

    Returns (layout, a_before, b_before, completed)."""
    internal = FlashMemory(96 * 1024, page_size=PAGE, name="int")
    layout = MemoryLayout.configuration_b(internal, 32 * 1024)
    a, b = layout.get("a"), layout.get("b")
    status = layout.status_slot
    data_a = fill(a, 0xAA, 3 * PAGE)
    data_b = fill(b, 0xBB, 3 * PAGE)

    internal.inject_power_loss(op_index)
    completed = True
    try:
        ResumableSwap(a, b, status).swap(3 * PAGE)
    except PowerLossError:
        completed = False
    internal.clear_fault()
    return layout, data_a, data_b, completed


def count_swap_operations() -> int:
    """Total erase+write ops a clean 3-page swap performs."""
    internal = FlashMemory(96 * 1024, page_size=PAGE, name="int")
    layout = MemoryLayout.configuration_b(internal, 32 * 1024)
    a, b = layout.get("a"), layout.get("b")
    fill(a, 0xAA, 3 * PAGE)
    fill(b, 0xBB, 3 * PAGE)
    before = internal.stats.pages_erased + internal.stats.write_calls
    ResumableSwap(a, b, layout.status_slot).swap(3 * PAGE)
    return (internal.stats.pages_erased + internal.stats.write_calls
            - before)


def test_power_loss_at_every_operation_is_recoverable():
    """Exhaustive: interrupt the swap at each op; resume must finish."""
    total_ops = count_swap_operations()
    assert total_ops > 10
    for op_index in range(total_ops):
        layout, data_a, data_b, completed = interrupted_swap(op_index)
        a, b = layout.get("a"), layout.get("b")
        status = layout.status_slot
        if not completed:
            pending = ResumableSwap.pending(status)
            if pending is not None:
                ResumableSwap(a, b, status).resume(pending)
            else:
                # Power lost before the journal header was durable: the
                # swap never started; both slots must be untouched...
                # except possibly an erased scratch area.
                assert a.read(0, 3 * PAGE) == data_a
                assert b.read(0, 3 * PAGE) == data_b
                continue
        # After resume (or unharmed completion) the swap is complete.
        assert a.read(0, 3 * PAGE) == data_b, "op %d" % op_index
        assert b.read(0, 3 * PAGE) == data_a, "op %d" % op_index
        assert ResumableSwap.pending(status) is None


def test_double_power_loss_is_recoverable():
    """Lose power during the swap AND during the first resume."""
    layout, data_a, data_b, completed = interrupted_swap(7)
    assert not completed
    a, b = layout.get("a"), layout.get("b")
    status = layout.status_slot
    internal = a.flash

    pending = ResumableSwap.pending(status)
    assert pending is not None
    internal.inject_power_loss(3)
    with pytest.raises(PowerLossError):
        ResumableSwap(a, b, status).resume(pending)
    internal.clear_fault()

    pending = ResumableSwap.pending(status)
    assert pending is not None
    ResumableSwap(a, b, status).resume(pending)
    assert a.read(0, 3 * PAGE) == data_b
    assert b.read(0, 3 * PAGE) == data_a


def test_resume_of_complete_journal_just_clears(slots):
    a, b, status = slots
    status_page = status.flash.page_of(status.offset)
    status.flash.erase_page(status_page)
    import struct
    header = struct.pack(">4sIII", b"SWJ1", PAGE, PAGE, 1)
    status.write(0, header)
    status.write(16, b"\x00\x00\x00")  # all three steps done
    pending = ResumableSwap.pending(status)
    assert pending is not None and pending.complete
    ResumableSwap(a, b, status).resume(pending)
    assert ResumableSwap.pending(status) is None


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=25, deadline=None)
@given(
    pages=st.integers(min_value=1, max_value=4),
    fault_at=st.integers(min_value=0, max_value=80),
    pattern_a=st.integers(min_value=0, max_value=254),
)
def test_interrupted_swap_property(pages, fault_at, pattern_a):
    """Any extent, any fault point: resume always completes the swap."""
    internal = FlashMemory(96 * 1024, page_size=PAGE, name="int")
    layout = MemoryLayout.configuration_b(internal, 32 * 1024)
    a, b = layout.get("a"), layout.get("b")
    status = layout.status_slot
    data_a = fill(a, pattern_a, pages * PAGE)
    data_b = fill(b, pattern_a ^ 0xFF, pages * PAGE)

    internal.inject_power_loss(fault_at)
    completed = True
    try:
        ResumableSwap(a, b, status).swap(pages * PAGE)
    except PowerLossError:
        completed = False
    internal.clear_fault()

    if not completed:
        pending = ResumableSwap.pending(status)
        if pending is None:
            # Journal never became durable: slots must be untouched.
            assert a.read(0, pages * PAGE) == data_a
            assert b.read(0, pages * PAGE) == data_b
            return
        ResumableSwap(a, b, status).resume(pending)
    assert a.read(0, pages * PAGE) == data_b
    assert b.read(0, pages * PAGE) == data_a


def test_swap_status_first_pending():
    status = SwapStatus(extent=2 * PAGE, page=PAGE, pair_count=2,
                        progress=[True, True, True, True, False, False])
    assert status.first_pending() == (1, 1)
    complete = SwapStatus(extent=PAGE, page=PAGE, pair_count=1,
                          progress=[True, True, True])
    with pytest.raises(ValueError):
        complete.first_pending()


def test_swap_across_internal_and_external_flash():
    """Configuration B on a CC2650: bootable internal, staging external.

    The journaled swap must work when the two slots live on different
    flash devices (different timing, same page granularity), with the
    journal and scratch on the internal device.
    """
    from repro.platform import CC2650

    internal = CC2650.make_internal_flash()
    external = CC2650.make_external_flash()
    layout = MemoryLayout.configuration_b(internal, 48 * 1024,
                                          external=external)
    a, b = layout.get("a"), layout.get("b")
    status = layout.status_slot
    data_a = fill(a, 0xA5, 2 * PAGE)
    data_b = fill(b, 0x5A, 2 * PAGE)

    swap = ResumableSwap(a, b, status)
    # Interrupt on the *external* device mid-swap.
    external.inject_power_loss(2)
    try:
        swap.swap(2 * PAGE)
        interrupted = False
    except PowerLossError:
        interrupted = True
    external.clear_fault()
    if interrupted:
        pending = ResumableSwap.pending(status)
        assert pending is not None
        ResumableSwap(a, b, status).resume(pending)
    assert a.read(0, 2 * PAGE) == data_b
    assert b.read(0, 2 * PAGE) == data_a
