"""Workload-generator tests."""

from __future__ import annotations

import pytest

from repro.compression import compress
from repro.delta import diff
from repro.workload import FirmwareGenerator


@pytest.fixture()
def gen():
    return FirmwareGenerator(seed=b"workload-tests")


def delta_size(old: bytes, new: bytes) -> int:
    return len(compress(diff(old, new)))


def test_firmware_exact_size(gen):
    for size in (1, 100, 4096, 10_000):
        assert len(gen.firmware(size)) == size


def test_firmware_deterministic(gen):
    again = FirmwareGenerator(seed=b"workload-tests")
    assert gen.firmware(4096, image_id=7) == again.firmware(4096, image_id=7)


def test_firmware_differs_by_image_id(gen):
    assert gen.firmware(4096, image_id=1) != gen.firmware(4096, image_id=2)


def test_firmware_differs_by_seed():
    a = FirmwareGenerator(seed=b"a").firmware(4096)
    b = FirmwareGenerator(seed=b"b").firmware(4096)
    assert a != b


def test_firmware_rejects_bad_size(gen):
    with pytest.raises(ValueError):
        gen.firmware(0)


def test_seed_required():
    with pytest.raises(ValueError):
        FirmwareGenerator(seed=b"")


def test_evolve_changes_requested_fraction(gen):
    base = gen.firmware(32 * 1024)
    evolved = gen.evolve(base, change_fraction=0.3, appended=0)
    assert len(evolved) == len(base)
    same = sum(1 for a, b in zip(base, evolved) if a == b)
    changed_fraction = 1 - same / len(base)
    assert 0.05 < changed_fraction < 0.40


def test_evolve_zero_fraction_is_identity(gen):
    base = gen.firmware(8 * 1024)
    assert gen.evolve(base, change_fraction=0.0, appended=0) == base


def test_evolve_appends(gen):
    base = gen.firmware(8 * 1024)
    evolved = gen.evolve(base, change_fraction=0.1, appended=500)
    assert len(evolved) == len(base) + 500


def test_evolve_validates_fraction(gen):
    with pytest.raises(ValueError):
        gen.evolve(b"x" * 1024, change_fraction=1.5)


def test_os_change_bigger_delta_than_app_change(gen):
    """The Fig. 8b premise: OS-version deltas exceed app-change deltas."""
    base = gen.firmware(64 * 1024)
    os_change = gen.os_version_change(base)
    app_change = gen.app_functionality_change(base, changed_bytes=1000)

    os_delta = delta_size(base, os_change)
    app_delta = delta_size(base, app_change)
    full = len(compress(os_change))

    assert app_delta < os_delta < full
    # The app change stays a small fraction of the full image.
    assert app_delta < len(base) // 10


def test_app_change_touches_exactly_region(gen):
    base = gen.firmware(16 * 1024)
    changed = gen.app_functionality_change(base, changed_bytes=1000)
    assert len(changed) == len(base)
    differing = sum(1 for a, b in zip(base, changed) if a != b)
    assert differing <= 1000


def test_app_change_validates_size(gen):
    with pytest.raises(ValueError):
        gen.app_functionality_change(b"x" * 1024, changed_bytes=0)


def test_versions_chain_deterministically(gen):
    base = gen.firmware(8 * 1024)
    v2_a = gen.os_version_change(base, revision=2)
    v2_b = gen.os_version_change(base, revision=2)
    v3 = gen.os_version_change(base, revision=3)
    assert v2_a == v2_b
    assert v2_a != v3
