"""Protocol sessions under interrupted transfers (net/sessions.py).

The protocol-level sessions have no resume logic of their own —
:class:`~repro.net.link.LinkDownError` deliberately escapes
``session.run()`` (which catches only ``UpdateError``), leaving the
caller to cancel and retry.  These tests pin that contract down and
prove the recovery path: cancel the half-fed agent, open a fresh
session over the *same* link (the outage is attempt-counted and now
spent), and the update converges.
"""

import pytest

from repro.core.agent import AgentState
from repro.net import BLE_GATT, COAP_6LOWPAN, Link
from repro.net.link import LinkDownError, Outage
from repro.net.sessions import BleGattPushSession, CoapPullSession
from repro.sim import Testbed


@pytest.fixture()
def bed():
    # Full-image transfers keep the byte axis predictable: a delta of
    # these two constant images would be a couple hundred bytes and
    # never reach the outage thresholds below.
    bed = Testbed.create(initial_firmware=b"\x11" * 2048,
                         supports_differential=False)
    bed.release(b"\x22" * 2048, 2)
    return bed


def test_coap_outage_escapes_run(bed):
    link = Link(COAP_6LOWPAN, outages=[Outage(at_byte=600)])
    session = CoapPullSession(bed.device, bed.server, link=link)
    with pytest.raises(LinkDownError):
        session.run()
    # The agent was left mid-update; the device never booted v2.
    assert bed.device.agent.state is AgentState.RECEIVE_FIRMWARE
    assert bed.device.agent.stats.updates_completed == 0
    assert link.down_events == 1


def test_coap_recovers_with_fresh_session_on_same_link(bed):
    link = Link(COAP_6LOWPAN, outages=[Outage(at_byte=600)])
    first = CoapPullSession(bed.device, bed.server, link=link)
    with pytest.raises(LinkDownError):
        first.run()

    # Recovery: clean the FSM, retry over the same (recovered) link.
    bed.device.agent.cancel()
    assert bed.device.agent.stats.updates_rejected == 1
    second = CoapPullSession(bed.device, bed.server, link=link)
    outcome = second.run()
    assert outcome.success
    assert outcome.booted_version == 2
    assert bed.device.installed_version() == 2


def test_ble_outage_escapes_run(bed):
    link = Link(BLE_GATT, outages=[Outage(at_byte=400)])
    session = BleGattPushSession(bed.device, bed.server, link=link)
    with pytest.raises(LinkDownError):
        session.run()
    assert bed.device.agent.state is AgentState.RECEIVE_FIRMWARE
    assert bed.device.agent.stats.updates_completed == 0


def test_ble_recovers_with_fresh_session_on_same_link(bed):
    link = Link(BLE_GATT, outages=[Outage(at_byte=400)])
    first = BleGattPushSession(bed.device, bed.server, link=link)
    with pytest.raises(LinkDownError):
        first.run()

    bed.device.agent.cancel()
    outcome = BleGattPushSession(bed.device, bed.server, link=link).run()
    assert outcome.success
    assert outcome.booted_version == 2


def test_multi_failure_outage_needs_as_many_retries(bed):
    link = Link(COAP_6LOWPAN, outages=[Outage(at_byte=600, failures=2)])
    for _ in range(2):
        session = CoapPullSession(bed.device, bed.server, link=link)
        with pytest.raises(LinkDownError):
            session.run()
        bed.device.agent.cancel()
    outcome = CoapPullSession(bed.device, bed.server, link=link).run()
    assert outcome.success and outcome.booted_version == 2
    assert link.down_events == 2


def test_interrupted_session_journals_to_blackbox(bed):
    link = Link(COAP_6LOWPAN, outages=[Outage(at_byte=600)])
    with pytest.raises(LinkDownError):
        CoapPullSession(bed.device, bed.server, link=link).run()
    bed.device.agent.cancel()
    labels = [r.label for r in bed.device.blackbox.records()]
    # The journal shows an update that started and was cleaned, with no
    # interleaving boot: exactly what a post-mortem should read.
    assert "token_issued" in labels
    assert "slot_cleaned" in labels
    assert bed.device.blackbox.post_mortem()["interruptions"] == []
