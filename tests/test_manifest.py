"""Manifest wire-format and signing-region tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DeviceToken,
    MANIFEST_SIZE,
    Manifest,
    ManifestFormatError,
    PayloadKind,
)


def make_manifest(**overrides):
    fields = dict(
        version=2,
        size=1000,
        digest=b"\xAB" * 32,
        link_offset=0x8000,
        app_id=0xAABBCCDD,
        device_id=0x11223344,
        nonce=0xDEADBEEF,
        old_version=1,
        payload_kind=PayloadKind.DELTA_LZSS,
        payload_size=300,
    )
    fields.update(overrides)
    return Manifest(**fields)


def test_pack_unpack_roundtrip():
    manifest = make_manifest()
    assert Manifest.unpack(manifest.pack()) == manifest


def test_pack_size_constant():
    assert len(make_manifest().pack()) == MANIFEST_SIZE


def test_unpack_rejects_wrong_length():
    with pytest.raises(ManifestFormatError):
        Manifest.unpack(b"\x00" * (MANIFEST_SIZE - 1))


def test_unpack_rejects_bad_magic():
    blob = bytearray(make_manifest().pack())
    blob[0] = ord("X")
    with pytest.raises(ManifestFormatError):
        Manifest.unpack(bytes(blob))


def test_unpack_rejects_bad_header_version():
    blob = bytearray(make_manifest().pack())
    blob[4] = 99
    with pytest.raises(ManifestFormatError):
        Manifest.unpack(bytes(blob))


@pytest.mark.parametrize("field,value", [
    ("version", 0),
    ("version", 2 ** 16),
    ("old_version", -1),
    ("size", 0),
    ("digest", b"\x00" * 31),
    ("link_offset", 2 ** 32),
    ("app_id", -1),
    ("device_id", 2 ** 32),
    ("nonce", -1),
    ("payload_kind", 42),
    ("payload_size", -1),
])
def test_field_validation(field, value):
    with pytest.raises((ManifestFormatError, Exception)):
        make_manifest(**{field: value})


def test_canonical_zeroes_token_fields():
    canonical = make_manifest().canonical()
    assert canonical.device_id == 0
    assert canonical.nonce == 0
    assert canonical.old_version == 0
    assert canonical.payload_kind == PayloadKind.FULL
    assert canonical.payload_size == canonical.size
    # The vendor-authenticated fields survive.
    assert canonical.version == 2
    assert canonical.digest == b"\xAB" * 32


def test_canonical_bytes_stable_across_token_bindings():
    base = make_manifest()
    token_a = DeviceToken(1, 100, 1)
    token_b = DeviceToken(2, 200, 0)
    bound_a = base.bind_token(token_a, PayloadKind.FULL, 1000)
    bound_b = base.bind_token(token_b, PayloadKind.DELTA_LZSS, 50,
                              old_version=1)
    assert bound_a.canonical_bytes() == bound_b.canonical_bytes()


def test_bind_token_copies_fields():
    token = DeviceToken(device_id=7, nonce=8, current_version=1)
    bound = make_manifest().bind_token(token, PayloadKind.DELTA_LZSS, 55,
                                       old_version=1)
    assert bound.device_id == 7
    assert bound.nonce == 8
    assert bound.old_version == 1
    assert bound.payload_size == 55


def test_payload_kind_predicates():
    assert PayloadKind.is_delta(PayloadKind.DELTA_LZSS)
    assert PayloadKind.is_delta(PayloadKind.DELTA_ENCRYPTED)
    assert not PayloadKind.is_delta(PayloadKind.FULL)
    assert PayloadKind.is_encrypted(PayloadKind.FULL_ENCRYPTED)
    assert not PayloadKind.is_encrypted(PayloadKind.DELTA_LZSS)


def test_is_delta_property():
    assert make_manifest().is_delta
    assert not make_manifest(payload_kind=PayloadKind.FULL).is_delta
    assert make_manifest(
        payload_kind=PayloadKind.FULL_ENCRYPTED).is_encrypted


@settings(max_examples=40, deadline=None)
@given(
    version=st.integers(min_value=1, max_value=2 ** 16 - 1),
    size=st.integers(min_value=1, max_value=2 ** 32 - 1),
    device_id=st.integers(min_value=0, max_value=2 ** 32 - 1),
    nonce=st.integers(min_value=0, max_value=2 ** 32 - 1),
    payload_kind=st.sampled_from(PayloadKind.ALL),
)
def test_roundtrip_property(version, size, device_id, nonce, payload_kind):
    manifest = make_manifest(version=version, size=size,
                             device_id=device_id, nonce=nonce,
                             payload_kind=payload_kind)
    assert Manifest.unpack(manifest.pack()) == manifest
