"""bsdiff / streaming bspatch tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import compress, decompress
from repro.delta import (
    MAGIC,
    PatchFormatError,
    StreamingPatcher,
    diff,
    parse_patch,
    patch,
)


def mutate(data: bytes, count: int, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(count):
        out[rng.randrange(len(out))] = rng.randrange(256)
    return bytes(out)


@pytest.fixture()
def old_firmware(rng):
    return bytes(rng.randrange(256) for _ in range(8000))


def test_roundtrip_small_change(old_firmware):
    new = mutate(old_firmware, 20)
    assert patch(old_firmware, diff(old_firmware, new)) == new


def test_roundtrip_identical(old_firmware):
    assert patch(old_firmware, diff(old_firmware, old_firmware)) \
        == old_firmware


def test_roundtrip_append(old_firmware):
    new = old_firmware + b"new feature code" * 32
    assert patch(old_firmware, diff(old_firmware, new)) == new


def test_roundtrip_prepend(old_firmware):
    new = b"bootstrap" * 10 + old_firmware
    assert patch(old_firmware, diff(old_firmware, new)) == new


def test_roundtrip_truncation(old_firmware):
    new = old_firmware[:3000]
    assert patch(old_firmware, diff(old_firmware, new)) == new


def test_roundtrip_disjoint_content(old_firmware):
    new = bytes((b ^ 0xFF) for b in old_firmware[:4000])
    assert patch(old_firmware, diff(old_firmware, new)) == new


def test_roundtrip_empty_old():
    new = b"built from nothing" * 10
    assert patch(b"", diff(b"", new)) == new


def test_roundtrip_empty_new(old_firmware):
    assert patch(old_firmware, diff(old_firmware, b"")) == b""


def test_patch_smaller_than_full_image_for_similar_files(old_firmware):
    new = mutate(old_firmware, 10)
    compressed_patch = compress(diff(old_firmware, new))
    assert len(compressed_patch) < len(new) // 4


def test_patch_header_magic(old_firmware):
    stream = diff(old_firmware, old_firmware)
    assert stream[:4] == MAGIC


def test_parse_patch_structure(old_firmware):
    new = mutate(old_firmware, 5)
    new_size, records = parse_patch(diff(old_firmware, new))
    assert new_size == len(new)
    total = sum(c.add_len + c.copy_len for c, _, _ in records)
    assert total == len(new)


def test_parse_patch_rejects_bad_magic():
    with pytest.raises(PatchFormatError):
        parse_patch(b"XXXX" + b"\x00" * 16)


def test_parse_patch_rejects_truncated_header():
    with pytest.raises(PatchFormatError):
        parse_patch(b"UP")


def test_streaming_patcher_chunked(old_firmware):
    new = mutate(old_firmware, 30)
    stream = diff(old_firmware, new)
    for chunk_size in (1, 7, 64, 999):
        patcher = StreamingPatcher(old_firmware)
        out = b"".join(patcher.feed(stream[i:i + chunk_size])
                       for i in range(0, len(stream), chunk_size))
        patcher.finish()
        assert out == new
        assert patcher.emitted == len(new)


def test_streaming_patcher_with_reader_callable(old_firmware):
    new = mutate(old_firmware, 10)
    stream = diff(old_firmware, new)
    reads = []

    def reader(offset: int, length: int) -> bytes:
        reads.append((offset, length))
        return old_firmware[offset:offset + length]

    patcher = StreamingPatcher(reader, old_size=len(old_firmware))
    out = patcher.feed(stream)
    patcher.finish()
    assert out == new
    assert reads  # the reader was actually exercised


def test_streaming_patcher_reader_requires_size():
    with pytest.raises(ValueError):
        StreamingPatcher(lambda off, ln: b"", old_size=None)


def test_streaming_patcher_rejects_bad_magic(old_firmware):
    patcher = StreamingPatcher(old_firmware)
    with pytest.raises(PatchFormatError):
        patcher.feed(b"BAD!" + b"\x00" * 32)


def test_streaming_patcher_rejects_trailing_garbage(old_firmware):
    stream = diff(old_firmware, old_firmware) + b"\x01"
    patcher = StreamingPatcher(old_firmware)
    with pytest.raises(PatchFormatError):
        patcher.feed(stream)
        patcher.finish()


def test_streaming_patcher_rejects_truncated_stream(old_firmware):
    new = mutate(old_firmware, 5)
    stream = diff(old_firmware, new)
    patcher = StreamingPatcher(old_firmware)
    patcher.feed(stream[:len(stream) // 2])
    with pytest.raises(PatchFormatError):
        patcher.finish()


def test_streaming_patcher_rejects_oob_diff_region():
    # Control record claiming 100 add bytes against a 10-byte old file.
    import struct
    header = struct.pack(">4sI", MAGIC, 100)
    control = struct.pack(">IIq", 100, 0, 0)
    patcher = StreamingPatcher(b"0123456789")
    with pytest.raises(PatchFormatError):
        patcher.feed(header + control + b"\x00" * 100)


def test_composes_with_lzss(old_firmware):
    new = mutate(old_firmware, 40, seed=5)
    wire = compress(diff(old_firmware, new))
    assert patch(old_firmware, decompress(wire)) == new


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=600), st.binary(max_size=600))
def test_roundtrip_property(old, new):
    assert patch(old, diff(old, new)) == new


@settings(max_examples=15, deadline=None)
@given(st.binary(min_size=50, max_size=400), st.data())
def test_mutation_roundtrip_property(old, data):
    positions = data.draw(st.lists(
        st.integers(min_value=0, max_value=len(old) - 1), max_size=10))
    new = bytearray(old)
    for pos in positions:
        new[pos] ^= 0x55
    assert patch(old, diff(old, bytes(new))) == bytes(new)
