"""Property-based NOR-flash invariants.

The memory substrate underpins every power-loss argument, so its
semantics get their own hypothesis battery: arbitrary interleavings of
erases and writes must preserve the NOR model (a byte is the AND of
everything written since its last erase; erased bytes read 0xFF).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import FlashError, FlashMemory

PAGES = 4
PAGE = 256
SIZE = PAGES * PAGE


operations = st.lists(
    st.one_of(
        st.tuples(st.just("erase"),
                  st.integers(min_value=0, max_value=PAGES - 1)),
        st.tuples(st.just("write"),
                  st.tuples(st.integers(min_value=0, max_value=SIZE - 8),
                            st.binary(min_size=1, max_size=8))),
    ),
    max_size=30,
)


def reference_apply(ops):
    """A trivially-correct NOR model to compare against."""
    data = bytearray(b"\xFF" * SIZE)
    results = []
    for op, arg in ops:
        if op == "erase":
            start = arg * PAGE
            data[start:start + PAGE] = b"\xFF" * PAGE
            results.append(True)
        else:
            offset, payload = arg
            legal = all(
                (payload[i] & ~data[offset + i] & 0xFF) == 0
                for i in range(len(payload))
            )
            results.append(legal)
            if legal:
                for i, byte in enumerate(payload):
                    data[offset + i] &= byte
    return bytes(data), results


@settings(max_examples=60, deadline=None)
@given(operations)
def test_nor_semantics_match_reference(ops):
    flash = FlashMemory(SIZE, page_size=PAGE)
    expected_data, expected_legal = reference_apply(ops)
    for (op, arg), legal in zip(ops, expected_legal):
        if op == "erase":
            flash.erase_page(arg)
        else:
            offset, payload = arg
            if legal:
                flash.write(offset, payload)
            else:
                try:
                    flash.write(offset, payload)
                    raise AssertionError("illegal write accepted")
                except FlashError:
                    pass
    assert flash.snapshot() == expected_data


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=PAGES - 1),
       st.binary(min_size=1, max_size=PAGE))
def test_erase_write_read_roundtrip(page, payload):
    flash = FlashMemory(SIZE, page_size=PAGE)
    offset = page * PAGE
    flash.write(offset, b"\x00" * len(payload))  # dirty it
    flash.erase_page(page)
    flash.write(offset, payload)
    assert flash.read(offset, len(payload)) == payload


@settings(max_examples=40, deadline=None)
@given(operations)
def test_stats_are_consistent(ops):
    flash = FlashMemory(SIZE, page_size=PAGE)
    erases = 0
    writes = 0
    for op, arg in ops:
        if op == "erase":
            flash.erase_page(arg)
            erases += 1
        else:
            offset, payload = arg
            try:
                flash.write(offset, payload)
                writes += 1
            except FlashError:
                pass
    assert flash.stats.pages_erased == erases
    assert flash.stats.write_calls == writes
    assert sum(flash.stats.erase_counts) == erases
    assert flash.stats.busy_seconds > 0 or (erases == 0 and writes == 0)
