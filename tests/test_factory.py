"""Factory-provisioning tests."""

from __future__ import annotations

import pytest

from repro.core import (
    Bootloader,
    ENVELOPE_SIZE,
    FACTORY_NONCE,
    UpdateAgent,
    inspect_slot,
    install_factory_image,
    make_factory_image,
    provision_device,
)
from tests.conftest import DEVICE_ID


def test_factory_image_uses_reserved_nonce(published):
    _, server = published
    image = make_factory_image(server, DEVICE_ID)
    assert image.manifest.nonce == FACTORY_NONCE
    assert image.manifest.device_id == DEVICE_ID
    assert not image.manifest.is_delta


def test_install_writes_envelope_and_firmware(published, ab_layout, fw_v1):
    _, server = published
    image = make_factory_image(server, DEVICE_ID)
    install_factory_image(ab_layout.get("a"), image)
    slot = ab_layout.get("a")
    stored = inspect_slot(slot)
    assert stored is not None and stored.manifest.version == 1
    assert slot.read(ENVELOPE_SIZE, len(fw_v1)) == fw_v1


def test_provision_device_boots(published, ab_layout, profile, anchors,
                                backend):
    _, server = published
    provision_device(server, ab_layout.get("a"), DEVICE_ID)
    bootloader = Bootloader(profile, ab_layout, anchors, backend)
    assert bootloader.boot().version == 1


def test_factory_nonce_never_issued_by_agent(provisioned, profile, anchors,
                                             backend):
    _, _, layout = provisioned
    agent = UpdateAgent(profile, layout, anchors, backend)
    for _ in range(50):
        token = agent.request_token()
        assert token.nonce != FACTORY_NONCE
        agent.cancel()


def test_factory_image_cannot_answer_live_request(provisioned, profile,
                                                  anchors, backend):
    """Replaying the factory image against a live token must fail."""
    from repro.core import TokenMismatch, make_factory_image as make

    _, server, layout = provisioned
    agent = UpdateAgent(profile, layout, anchors, backend)
    agent.request_token()
    factory = make(server, DEVICE_ID)
    with pytest.raises(Exception):  # TokenMismatch or StaleVersion
        agent.feed(factory.envelope.pack())
