"""Multi-hop forwarding-chain tests."""

from __future__ import annotations

import pytest

from repro.core import SignatureInvalid
from repro.net import ManifestTamperer, PayloadBitFlipper
from repro.net.mesh import ForwardingChain, GatewayDrop, Hop
from repro.sim import Testbed
from repro.workload import FirmwareGenerator


@pytest.fixture()
def testbed():
    gen = FirmwareGenerator(seed=b"mesh")
    fw_v1 = gen.firmware(12 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    return bed


def chain(*hops: Hop) -> ForwardingChain:
    return ForwardingChain(list(hops))


def test_honest_multi_hop_chain_passes(testbed):
    relay = chain(Hop("cloud-relay"), Hop("border-router"),
                  Hop("smartphone"))
    outcome = testbed.pull_update(interceptor=relay)
    assert outcome.success and outcome.booted_version == 2
    assert relay.honest()
    assert all(hop.forwarded == 1 for hop in relay.hops)
    assert relay.accumulated_delay > 0


def test_tampering_middle_hop_detected(testbed):
    relay = chain(Hop("cloud-relay"),
                  Hop("evil-gateway", interceptor=ManifestTamperer()),
                  Hop("smartphone"))
    outcome = testbed.pull_update(interceptor=relay)
    assert not outcome.success
    assert isinstance(outcome.error, SignatureInvalid)
    assert not relay.honest()
    # The downstream hop still forwarded the (tampered) bytes.
    assert relay.hops[2].forwarded == 1


def test_two_compromised_hops_detected(testbed):
    relay = chain(Hop("g1", interceptor=PayloadBitFlipper(flips=16)),
                  Hop("g2", interceptor=PayloadBitFlipper(flips=16,
                                                          seed=9)))
    outcome = testbed.pull_update(interceptor=relay)
    assert not outcome.success
    assert testbed.device.installed_version() == 1


def test_dropping_hop_is_denial_of_service_only(testbed):
    relay = chain(Hop("router"), Hop("dos-gateway", drop=True))
    outcome = testbed.pull_update(interceptor=relay)
    assert not outcome.success
    assert isinstance(outcome.error, GatewayDrop)
    # DoS delays the update but never corrupts the device.
    assert testbed.device.installed_version() == 1
    assert testbed.device.bootloader.boot().version == 1
    # Once the hop recovers, the update goes through.
    relay.hops[1].drop = False
    retry = testbed.pull_update(interceptor=relay)
    assert retry.success and retry.booted_version == 2


def test_chain_validation():
    with pytest.raises(ValueError):
        ForwardingChain([])
    with pytest.raises(ValueError):
        Hop("x", latency_seconds=-1.0)


def test_chain_path(testbed):
    relay = chain(Hop("a"), Hop("b"))
    assert relay.path == ["a", "b"]
