"""SLIP framing and serial upload-session tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.serial import (
    SERIAL_UART,
    SerialUploadSession,
    SlipDecoder,
    SlipError,
    slip_encode,
)
from repro.sim import Testbed
from repro.workload import FirmwareGenerator


# -- SLIP codec --------------------------------------------------------------------


def roundtrip(payload: bytes) -> bytes:
    frames = SlipDecoder().feed(slip_encode(payload))
    assert len(frames) == 1
    return frames[0]


@pytest.mark.parametrize("payload", [
    b"plain",
    b"\xC0",                    # END byte escaped
    b"\xDB",                    # ESC byte escaped
    b"\xC0\xDB\xC0\xDB",
    bytes(range(256)),
], ids=["plain", "end", "esc", "mixed", "all-bytes"])
def test_slip_roundtrip(payload):
    assert roundtrip(payload) == payload


def test_slip_frame_boundaries():
    wire = slip_encode(b"one") + slip_encode(b"two")
    assert SlipDecoder().feed(wire) == [b"one", b"two"]


def test_slip_incremental_feed():
    wire = slip_encode(b"chunked frame payload")
    decoder = SlipDecoder()
    frames = []
    for index in range(len(wire)):
        frames.extend(decoder.feed(wire[index:index + 1]))
    assert frames == [b"chunked frame payload"]
    assert not decoder.partial


def test_slip_discards_line_noise_before_first_frame():
    wire = b"\x01\x02garbage" + slip_encode(b"real")
    assert SlipDecoder().feed(wire) == [b"real"]


def test_slip_invalid_escape_rejected():
    with pytest.raises(SlipError):
        SlipDecoder().feed(bytes([END_BYTE := 0xC0, 0xDB, 0x99]))


def test_slip_partial_flag():
    decoder = SlipDecoder()
    decoder.feed(slip_encode(b"abc")[:-1])  # missing closing END
    assert decoder.partial


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=300))
def test_slip_roundtrip_property(payload):
    if payload:
        assert roundtrip(payload) == payload


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=60), min_size=1,
                max_size=6))
def test_slip_multiframe_property(payloads):
    wire = b"".join(slip_encode(p) for p in payloads)
    assert SlipDecoder().feed(wire) == payloads


# -- serial upload session -------------------------------------------------------------


@pytest.fixture()
def testbed():
    gen = FirmwareGenerator(seed=b"serial")
    fw_v1 = gen.firmware(12 * 1024, image_id=1)
    bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    return bed


def test_serial_upload_to_upkit_agent(testbed):
    session = SerialUploadSession(testbed.device, testbed.server)
    assert session.run()
    assert testbed.device.reboot().version == 2
    assert session.frames_sent > 10
    # SLIP overhead: wire bytes exceed the payload bytes.
    assert session.bytes_on_wire > session.frames_sent * 2


def test_serial_upload_to_mcumgr_baseline(testbed):
    """The baseline's native deployment: mcumgr over a serial shell."""
    from repro.baselines import McubootBootloader, McumgrAgent

    device = testbed.device
    device.agent = McumgrAgent(device.profile, device.layout)
    device.bootloader = McubootBootloader(
        device.profile, device.layout, testbed.anchors, device.backend)
    session = SerialUploadSession(device, testbed.server)
    assert session.run()
    assert device.reboot().version == 2


def test_serial_slower_than_ble_for_same_image(testbed):
    """UART at 115200 with per-frame turnaround vs. BLE GATT."""
    serial_bed = testbed
    session = SerialUploadSession(serial_bed.device, serial_bed.server)
    session.run()
    serial_time = serial_bed.device.clock.now

    gen = FirmwareGenerator(seed=b"serial")
    fw_v1 = gen.firmware(12 * 1024, image_id=1)
    ble_bed = Testbed.create(initial_firmware=fw_v1, slot_size=64 * 1024)
    ble_bed.release(gen.os_version_change(fw_v1, revision=2), 2)
    outcome = ble_bed.push_update(reboot_on_success=False)
    assert outcome.success
    # Both transports work; their relative speed is config-dependent,
    # but neither should be an order of magnitude off the other for a
    # 12 kB delta.
    assert serial_time < outcome.phases["propagation"] * 10
    assert serial_time > 0


def test_serial_profile_shape():
    assert SERIAL_UART.mtu == 128
    assert SERIAL_UART.raw_throughput == pytest.approx(11_520.0)
